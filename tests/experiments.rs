//! End-to-end reproduction checks: every experiment report from DESIGN.md
//! must pass at integration-test scale.
//!
//! (The heavier per-experiment assertions also run as unit tests inside
//! `fair-bench`; these tests exercise the public `run_experiment` entry
//! point the way the `reproduce` binary does.)

use fair_bench::run_experiment;

const TRIALS: usize = 150;

fn assert_experiment(id: &str, seed: u64) {
    let reports = run_experiment(id, TRIALS, seed).expect("known experiment id");
    for r in reports {
        assert!(r.pass(), "{} failed:\n{}", r.id, r.render());
    }
}

#[test]
fn e1_contract_signing() {
    assert_experiment("e1", 0xe1);
}

#[test]
fn e2_opt2_upper_bound() {
    assert_experiment("e2", 0xe2);
}

#[test]
fn e3_opt2_lower_bound() {
    assert_experiment("e3", 0xe3);
}

#[test]
fn e4_reconstruction_rounds() {
    assert_experiment("e4", 0xe4);
}

#[test]
fn e6_multiparty_lower_bound() {
    assert_experiment("e6", 0xe6);
}

#[test]
fn e7_utility_balance() {
    assert_experiment("e7", 0xe7);
}

#[test]
fn e9_artificial_protocol() {
    assert_experiment("e9", 0xe9);
}

#[test]
fn e10_corruption_costs() {
    assert_experiment("e10", 0xe10);
}

#[test]
fn e12_partial_fairness_separation() {
    assert_experiment("e12", 0xe12);
}

#[test]
fn e13_composability() {
    assert_experiment("e13", 0xe13);
}

#[test]
fn unknown_experiment_is_rejected() {
    assert!(run_experiment("e99", 10, 0).is_none());
}
