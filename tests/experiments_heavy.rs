//! The heavier experiments (many coalition sizes / long protocols), run at
//! reduced trial counts.

use fair_bench::run_experiment;

#[test]
fn e5_lemma_11_profile() {
    // Restrict to n ∈ {3, 4} at this scale (the binary covers n = 5 too).
    let r = fair_bench::experiments::e5(150, 0xe5, &[3, 4]);
    assert!(r.pass(), "{}", r.render());
}

#[test]
fn e8_gmw_half_cliff() {
    let r = fair_bench::experiments::e8(150, 0xe8, &[4, 5]);
    assert!(r.pass(), "{}", r.render());
}

#[test]
fn e11_gordon_katz_bounds() {
    let reports = run_experiment("e11", 250, 0xe11).expect("known id");
    for r in reports {
        assert!(r.pass(), "{}", r.render());
    }
}
