//! Cross-crate integration: the GMW substrate agrees with plain circuit
//! evaluation, protocol values survive the crypto encodings, and failure
//! injection aborts cleanly everywhere.

use fair_circuits::{bits_to_u64, functions, u64_to_bits, Builder};
use fair_runtime::{execute, PartyId, Passive, Value};
use fair_sfe::gmw::{gmw_instance, GmwConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_gmw(cfg: &std::sync::Arc<GmwConfig>, inputs: &[u64], seed: u64) -> Option<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let inst = gmw_instance(cfg, inputs, &mut rng);
    let res = execute(inst, &mut Passive, &mut rng, cfg.rounds() + 4).expect("execution succeeds");
    res.outputs.get(&PartyId(0)).and_then(|v| v.as_scalar())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gmw_matches_plain_eval_millionaires(a in 0u64..256, b in 0u64..256, seed: u64) {
        let cfg = GmwConfig::new(functions::millionaires(8), vec![8, 8]);
        let mut bits = u64_to_bits(a, 8);
        bits.extend(u64_to_bits(b, 8));
        let expect = bits_to_u64(&cfg.circuit().eval(&bits));
        prop_assert_eq!(run_gmw(&cfg, &[a, b], seed), Some(expect));
    }

    #[test]
    fn gmw_matches_plain_eval_three_party_sum(a in 0u64..16, b in 0u64..16, c in 0u64..16, seed: u64) {
        let cfg = GmwConfig::new(functions::sum_mod(3, 4), vec![4, 4, 4]);
        let expect = (a + b + c) % 16;
        prop_assert_eq!(run_gmw(&cfg, &[a, b, c], seed), Some(expect));
    }

    #[test]
    fn gmw_matches_arbitrary_built_circuit(x in 0u64..64, y in 0u64..64, seed: u64) {
        // (x > y) XOR (x == y) over 6-bit inputs, built ad hoc.
        let mut bld = Builder::new();
        let xa = bld.inputs(6);
        let ya = bld.inputs(6);
        let gt = bld.gt(&xa, &ya);
        let eq = bld.eq(&xa, &ya);
        let o = bld.xor(gt, eq);
        let circuit = bld.finish(vec![o]);
        let cfg = GmwConfig::new(circuit, vec![6, 6]);
        let expect = ((x > y) ^ (x == y)) as u64;
        prop_assert_eq!(run_gmw(&cfg, &[x, y], seed), Some(expect));
    }
}

#[test]
fn values_survive_pack_share_reconstruct_roundtrip() {
    // The exact pipeline Π^Opt_2SFE puts its outputs through.
    use fair_crypto::{authshare, mac};
    let mut rng = StdRng::seed_from_u64(9);
    let y = Value::pair(
        Value::Tuple(vec![Value::Scalar(7), Value::Bytes(vec![1, 2, 3])]),
        Value::Bot,
    );
    let packed = mac::pack_bytes(&y.encode());
    let (h1, h2) = authshare::deal(&packed, &mut rng);
    let rec = authshare::reconstruct(1, &h1, &h2.share).expect("valid share");
    let bytes = mac::unpack_bytes(&rec).expect("canonical packing");
    assert_eq!(Value::decode(&bytes), Some(y));
}

#[test]
fn byzantine_message_injection_never_yields_wrong_outputs() {
    // Fuzz the Π^Opt_2SFE exchange with random garbage shares: honest
    // parties must end with y, the default evaluation, or ⊥ — never an
    // arbitrary attacker-chosen value.
    use fair_crypto::authshare::AuthShare;
    use fair_crypto::mac::MacTag;
    use fair_field::Fp;
    use fair_protocols::opt2::{opt2_instance, swap_fn, Opt2Msg};
    use fair_runtime::{AdvControl, Adversary, OutMsg, RoundView};

    struct Fuzzer;
    impl Adversary<Opt2Msg> for Fuzzer {
        fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
            vec![PartyId(0)]
        }
        fn on_round(
            &mut self,
            view: &RoundView<'_, Opt2Msg>,
            ctrl: &mut AdvControl<'_, Opt2Msg>,
            rng: &mut StdRng,
        ) {
            use rand::RngExt;
            if view.round == 0 {
                ctrl.run_honestly(PartyId(0));
                return;
            }
            let share = AuthShare {
                summand: (0..rng.random_range(1..6usize))
                    .map(|_| Fp::new(rng.random::<u64>() % fair_field::MODULUS))
                    .collect(),
                summand_tag: MacTag(Fp::new(rng.random::<u64>() % fair_field::MODULUS)),
            };
            ctrl.send_as(
                PartyId(0),
                OutMsg::to_party(PartyId(1), Opt2Msg::Share(share)),
            );
        }
    }

    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = opt2_instance(
            "swap",
            swap_fn(),
            [Value::Scalar(11), Value::Scalar(22)],
            [Value::Scalar(0), Value::Scalar(0)],
        );
        let res = execute(inst, &mut Fuzzer, &mut rng, 40).expect("execution succeeds");
        let y = Value::pair(Value::Scalar(22), Value::Scalar(11));
        let default = Value::pair(Value::Scalar(22), Value::Scalar(0));
        let out = &res.outputs[&PartyId(1)];
        assert!(
            *out == y || *out == default || *out == Value::Bot,
            "seed {seed}: unexpected honest output {out}"
        );
    }
}

#[test]
fn umbrella_crate_reexports_everything() {
    // The fair-suite facade exposes each sub-crate.
    let _ = fair_suite::field::Fp::new(1);
    let _ = fair_suite::crypto::sha256::sha256(b"x");
    let _ = fair_suite::runtime::Value::Scalar(1);
    let _ = fair_suite::circuits::functions::and1();
    let _ = fair_suite::core::Payoff::standard();
    let _ = fair_suite::sfe::spec::and_spec();
    let _ = fair_suite::protocols::opt2::swap_fn();
    let _ = fair_suite::bench::default_trials();
}
