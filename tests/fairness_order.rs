//! The relative-fairness partial order across the whole protocol zoo —
//! the paper's headline capability: "which of the two protocols is
//! fairer?" answered empirically.

use fair_core::fairness::{at_least_as_fair, compare, is_optimal_among, Assessment, FairnessOrder};
use fair_core::{best_of, Payoff};
use fair_protocols::scenarios::{contract_sweep, one_round_sweep, opt2_sweep};

const TRIALS: usize = 250;
const TOL: f64 = 0.06;

fn assess_pi1() -> Assessment {
    let (ests, _) = best_of(&contract_sweep(false), &Payoff::standard(), TRIALS, 1);
    Assessment::from_estimates("Pi1", ests)
}

fn assess_pi2() -> Assessment {
    let (ests, _) = best_of(&contract_sweep(true), &Payoff::standard(), TRIALS, 2);
    Assessment::from_estimates("Pi2", ests)
}

fn assess_opt2() -> Assessment {
    let (ests, _) = best_of(&opt2_sweep(), &Payoff::standard(), TRIALS, 3);
    Assessment::from_estimates("Opt2", ests)
}

fn assess_strawman() -> Assessment {
    let (ests, _) = best_of(&one_round_sweep(), &Payoff::standard(), TRIALS, 4);
    Assessment::from_estimates("OneRound", ests)
}

#[test]
fn pi2_strictly_fairer_than_pi1() {
    assert_eq!(
        compare(&assess_pi2(), &assess_pi1(), TOL),
        FairnessOrder::StrictlyFairer
    );
}

#[test]
fn opt2_and_pi2_are_equally_fair() {
    // Both reach exactly (γ10+γ11)/2 — the partial order cannot separate
    // them, and each is at least as fair as the other.
    let opt2 = assess_opt2();
    let pi2 = assess_pi2();
    assert_eq!(compare(&opt2, &pi2, TOL), FairnessOrder::Equivalent);
    assert!(at_least_as_fair(&opt2, &pi2, TOL));
    assert!(at_least_as_fair(&pi2, &opt2, TOL));
}

#[test]
fn strawman_and_pi1_sit_at_the_bottom() {
    let strawman = assess_strawman();
    let pi1 = assess_pi1();
    // Both fully unfair (γ10); and both strictly less fair than Π^Opt_2SFE.
    assert_eq!(compare(&strawman, &pi1, TOL), FairnessOrder::Equivalent);
    assert_eq!(
        compare(&strawman, &assess_opt2(), TOL),
        FairnessOrder::StrictlyLessFair
    );
}

#[test]
fn opt2_is_optimal_among_the_zoo() {
    let opt2 = assess_opt2();
    let others = vec![assess_pi1(), assess_pi2(), assess_strawman()];
    assert!(is_optimal_among(&opt2, &others, TOL));
    // …and the strawman is not.
    assert!(!is_optimal_among(&assess_strawman(), &[opt2], TOL));
}

#[test]
fn fairness_relation_is_reflexive_and_transitive_on_the_zoo() {
    let chain = [assess_opt2(), assess_pi2(), assess_pi1()];
    for a in &chain {
        assert!(
            at_least_as_fair(a, a, TOL),
            "reflexivity for {}",
            a.protocol
        );
    }
    // opt2 ⪰ pi2 and pi2 ⪰ pi1 imply opt2 ⪰ pi1.
    assert!(at_least_as_fair(&chain[0], &chain[1], TOL));
    assert!(at_least_as_fair(&chain[1], &chain[2], TOL));
    assert!(at_least_as_fair(&chain[0], &chain[2], TOL));
}
