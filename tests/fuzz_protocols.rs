//! Structured protocol fuzzing: corrupted parties inject random well-typed
//! garbage every round. Honest parties must always land on the real output
//! or an abort — never on an attacker-chosen value. (The signature and MAC
//! layers are what make this hold; these tests are the end-to-end check
//! that nothing in the message plumbing routes around them.)

use fair_protocols::gmw_half::{gmw_half_instance, HalfMsg};
use fair_protocols::optn::{concat_fn, optn_instance, OptnMsg};
use fair_runtime::{execute, AdvControl, Adversary, OutMsg, PartyId, RoundView, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Sends a burst of random garbage messages from the corrupted party each
/// round (while also participating honestly, so the execution progresses).
struct OptnFuzzer;

impl Adversary<OptnMsg> for OptnFuzzer {
    fn initial_corruptions(&mut self, _n: usize, _rng: &mut StdRng) -> Vec<PartyId> {
        vec![PartyId(0)]
    }

    fn on_round(
        &mut self,
        _view: &RoundView<'_, OptnMsg>,
        ctrl: &mut AdvControl<'_, OptnMsg>,
        rng: &mut StdRng,
    ) {
        ctrl.run_honestly(PartyId(0));
        for _ in 0..rng.random_range(1..4usize) {
            let v = match rng.random_range(0..4u8) {
                0 => Value::Bot,
                1 => Value::Scalar(rng.random()),
                2 => Value::pair(Value::Scalar(rng.random()), Value::Bytes(vec![0u8; 32])),
                _ => Value::pair(
                    Value::Scalar(rng.random()),
                    Value::Bytes(
                        (0..rng.random_range(0..64usize))
                            .map(|_| rng.random())
                            .collect(),
                    ),
                ),
            };
            ctrl.send_as(PartyId(0), OutMsg::broadcast(OptnMsg::Announce(v)));
        }
    }
}

#[test]
fn optn_fuzzing_never_forges_an_output() {
    let n = 4;
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<Value> = (0..n).map(|i| Value::Scalar(7 + i as u64)).collect();
        let truth = Value::Tuple(inputs.clone());
        let inst = optn_instance("concat", concat_fn(), inputs);
        let res = execute(inst, &mut OptnFuzzer, &mut rng, 40).expect("execution succeeds");
        for (p, v) in &res.outputs {
            assert!(
                *v == truth || v.is_bot(),
                "seed {seed}: party {p} adopted a forged value {v}"
            );
        }
    }
}

/// Injects random key shares (random index/value/signature bytes) into the
/// Π^{1/2}_GMW reconstruction.
struct HalfFuzzer;

impl Adversary<HalfMsg> for HalfFuzzer {
    fn initial_corruptions(&mut self, _n: usize, _rng: &mut StdRng) -> Vec<PartyId> {
        vec![PartyId(0)]
    }

    fn on_round(
        &mut self,
        _view: &RoundView<'_, HalfMsg>,
        ctrl: &mut AdvControl<'_, HalfMsg>,
        rng: &mut StdRng,
    ) {
        ctrl.run_honestly(PartyId(0));
        for _ in 0..rng.random_range(1..3usize) {
            let sig_len = if rng.random_bool(0.5) {
                256 * 32
            } else {
                rng.random_range(0..64)
            };
            let sig: Vec<u8> = (0..sig_len).map(|_| rng.random()).collect();
            ctrl.send_as(
                PartyId(0),
                OutMsg::broadcast(HalfMsg::KeyShare(rng.random_range(0..8), rng.random(), sig)),
            );
        }
    }
}

#[test]
fn gmw_half_fuzzing_never_corrupts_reconstruction() {
    let n = 5;
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let inputs: Vec<Value> = (0..n).map(|i| Value::Scalar(3 + i as u64)).collect();
        let truth = Value::Tuple(inputs.clone());
        let inst = gmw_half_instance("concat", concat_fn(), inputs);
        let res = execute(inst, &mut HalfFuzzer, &mut rng, 40).expect("execution succeeds");
        for (p, v) in &res.outputs {
            assert!(
                *v == truth || v.is_bot(),
                "seed {seed}: party {p} reconstructed a corrupted value {v}"
            );
        }
    }
}

/// An adaptive adversary that waits for the phase-2 broadcasts, spots the
/// designated party's announcement in flight, and only *then* corrupts it.
/// Too late: broadcast consistency means every honest party still receives
/// the signed output — the paper's protocols are adaptively secure.
struct LateIStarCorruptor {
    corrupted_i_star: bool,
}

impl Adversary<OptnMsg> for LateIStarCorruptor {
    fn initial_corruptions(&mut self, _n: usize, _rng: &mut StdRng) -> Vec<PartyId> {
        vec![]
    }

    fn on_round(
        &mut self,
        view: &RoundView<'_, OptnMsg>,
        ctrl: &mut AdvControl<'_, OptnMsg>,
        _rng: &mut StdRng,
    ) {
        if self.corrupted_i_star {
            return;
        }
        for e in view.rushing {
            if let OptnMsg::Announce(Value::Pair(_, _)) = &e.msg {
                if let Some(pid) = e.from_party() {
                    // Found i* by watching the wire; corrupt it now and
                    // withhold everything it still has.
                    let _ = ctrl.corrupt(pid);
                    self.corrupted_i_star = true;
                    return;
                }
            }
        }
    }
}

#[test]
fn adaptive_corruption_of_i_star_after_broadcast_is_too_late() {
    let n = 4;
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let inputs: Vec<Value> = (0..n).map(|i| Value::Scalar(50 + i as u64)).collect();
        let truth = Value::Tuple(inputs.clone());
        let inst = optn_instance("concat", concat_fn(), inputs);
        let mut adv = LateIStarCorruptor {
            corrupted_i_star: false,
        };
        let res = execute(inst, &mut adv, &mut rng, 40).expect("execution succeeds");
        assert!(adv.corrupted_i_star, "seed {seed}: the adversary found i*");
        // The announcement was already in flight on a consistent broadcast
        // channel: all remaining honest parties still output y.
        for (p, v) in &res.outputs {
            assert_eq!(v, &truth, "seed {seed}: party {p}");
        }
    }
}
