//! Closed-form cross-checks of the paper's claims, independent of any
//! protocol execution: the relationships between the bounds must hold for
//! *every* admissible payoff vector, not just the canonical one the
//! Monte-Carlo experiments use.

use fair_core::{analytic, Payoff};

/// A grid of Γ⁺_fair vectors (γ01 = 0, 0 ≤ γ00 ≤ γ11 < γ10 = 1).
fn gamma_plus_grid() -> Vec<Payoff> {
    let mut out = Vec::new();
    for g00_i in 0..4 {
        for g11_i in 0..4 {
            let g00 = g00_i as f64 * 0.2;
            let g11 = g11_i as f64 * 0.25;
            if let Ok(p) = Payoff::gamma_fair_plus(g00.min(g11), 1.0, g11) {
                out.push(p);
            }
        }
    }
    assert!(out.len() >= 6, "grid populated");
    out
}

#[test]
fn theorem_3_optimum_interpolates_between_g11_and_g10() {
    for p in gamma_plus_grid() {
        let opt = analytic::opt2(&p);
        assert!(p.g11 <= opt && opt <= p.g10, "{p:?}");
        // Exactly the midpoint.
        assert!((opt - (p.g10 + p.g11) / 2.0).abs() < 1e-12);
    }
}

#[test]
fn lemma_11_profile_is_monotone_and_bracketed() {
    for p in gamma_plus_grid() {
        for n in 2..8 {
            for t in 1..n {
                let u = analytic::optn_t(&p, n, t);
                assert!(p.g11 <= u + 1e-12 && u <= p.g10 + 1e-12, "n={n} t={t}");
                if t + 1 < n {
                    assert!(u <= analytic::optn_t(&p, n, t + 1) + 1e-12, "monotone in t");
                }
            }
            // n−1 corruptions approach γ10 as n grows.
            assert!(analytic::optn_best(&p, n) <= p.g10);
        }
    }
}

#[test]
fn two_party_case_of_lemma_11_is_theorem_3() {
    for p in gamma_plus_grid() {
        assert!((analytic::optn_t(&p, 2, 1) - analytic::opt2(&p)).abs() < 1e-12);
    }
}

#[test]
fn balance_bound_equals_the_sum_of_the_lemma_11_profile() {
    for p in gamma_plus_grid() {
        for n in 2..9 {
            let sum: f64 = (1..n).map(|t| analytic::optn_t(&p, n, t)).sum();
            assert!((sum - analytic::balance_sum(&p, n)).abs() < 1e-9, "n = {n}");
        }
    }
}

#[test]
fn lemma_17_excess_is_positive_exactly_for_even_n() {
    for p in gamma_plus_grid() {
        // Strictness of γ10 > γ11 makes the excess strictly positive.
        for n in 3..10 {
            let excess = analytic::gmw_half_sum(&p, n) - analytic::balance_sum(&p, n);
            if n % 2 == 0 {
                assert!(excess > 0.0, "n = {n}, {p:?}");
                assert!((excess - (p.g10 - p.g11) / 2.0).abs() < 1e-9);
            } else {
                assert!(excess.abs() < 1e-9, "n = {n}");
            }
        }
    }
}

#[test]
fn lemma_18_gap_grows_towards_its_limit() {
    // The t = 1 advantage of the artificial protocol over Π^Opt_nSFE is
    // (n−1)/n · (γ10−γ11)/2: strictly positive, increasing in n, with
    // limit (γ10−γ11)/2.
    for p in gamma_plus_grid() {
        let mut prev_gap = 0.0;
        for n in 3..10 {
            let gap = analytic::artificial_t1(&p, n) - analytic::optn_t(&p, n, 1);
            let closed_form = (n as f64 - 1.0) / n as f64 * (p.g10 - p.g11) / 2.0;
            assert!((gap - closed_form).abs() < 1e-12, "n = {n}");
            assert!(gap > 0.0, "optimal ≠ balanced for every n ({n})");
            assert!(gap >= prev_gap - 1e-12, "gap monotone in n");
            assert!(gap <= (p.g10 - p.g11) / 2.0 + 1e-12, "bounded by the limit");
            prev_gap = gap;
        }
    }
}

#[test]
fn theorem_6_costs_are_nonnegative_and_undominated_by_zero() {
    use fair_core::cost::{cost_from_phi, is_ideally_fair, CostFn};
    for p in gamma_plus_grid() {
        let n = 5;
        let phi: Vec<f64> = (1..n).map(|t| analytic::optn_t(&p, n, t)).collect();
        let cost = cost_from_phi(&phi, &p, n);
        for t in 1..n {
            assert!(cost.cost(t) >= -1e-12, "costs are nonnegative");
        }
        assert!(is_ideally_fair(&phi, &cost, &p, n, 1e-9));
        // The free cost function only works if the protocol was ideally
        // fair to begin with (i.e. φ(t) = s(t) for all t) — which holds
        // exactly when γ10's edge never materializes; on this grid γ10 = 1
        // is strictly dominant, so free pricing must fail.
        assert!(!is_ideally_fair(&phi, &CostFn::free(n), &p, n, 1e-9));
    }
}

#[test]
fn gk_remark_beats_the_generic_optimum_for_p_at_least_3() {
    // (γ10 + (p−1)γ11)/p < (γ10 + γ11)/2 ⇔ p > 2 (equal at p = 2).
    for g in gamma_plus_grid() {
        let generic = analytic::opt2(&g);
        let at2 = (g.g10 + g.g11) / 2.0;
        assert!((at2 - generic).abs() < 1e-12);
        for p in 3..10u64 {
            let remark = (g.g10 + (p as f64 - 1.0) * g.g11) / p as f64;
            assert!(
                remark < generic + 1e-12,
                "p = {p}: {remark} vs {generic} ({g:?})"
            );
        }
    }
}

#[test]
fn minimax_of_the_biased_design_game_is_at_one_half() {
    use fair_core::game::Game;
    for p in gamma_plus_grid() {
        if p.g10 <= p.g11 {
            continue; // degenerate (excluded by Γfair anyway)
        }
        let qs: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let matrix: Vec<Vec<f64>> = qs
            .iter()
            .map(|&q| vec![q * p.g10 + (1.0 - q) * p.g11, (1.0 - q) * p.g10 + q * p.g11])
            .collect();
        let game = Game::new(
            qs.iter().map(|q| format!("q={q}")).collect(),
            vec!["p1".into(), "p2".into()],
            matrix,
        );
        let (d, v) = game.minimax();
        assert_eq!(game.designer_moves()[d], "q=0.5", "{p:?}");
        assert!((v - analytic::opt2(&p)).abs() < 1e-12);
    }
}
