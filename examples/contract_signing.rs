//! The paper's opening example: two ways to sign a contract.
//!
//! Runs the naive fixed-order exchange Π1 and the coin-tossed exchange Π2
//! against the same attack library and shows that Π2 is "twice as fair":
//! its best attacker gains (γ₁₀+γ₁₁)/2 instead of γ₁₀.
//!
//! Run with: `cargo run --release --example contract_signing`

use fair_core::fairness::{compare, Assessment, FairnessOrder};
use fair_core::{analytic, best_of, Payoff};
use fair_protocols::scenarios::contract_sweep;

fn main() {
    let payoff = Payoff::standard();
    let trials = 1500;

    let (e1, b1) = best_of(&contract_sweep(false), &payoff, trials, 7);
    let (e2, b2) = best_of(&contract_sweep(true), &payoff, trials, 8);

    println!("Π1 (fixed opening order):");
    println!("  best attack: {}", e1[b1]);
    println!(
        "  paper:       {:.4} (the attacker always wins: γ10)",
        analytic::pi1(&payoff)
    );
    println!();
    println!("Π2 (coin-tossed opening order):");
    println!("  best attack: {}", e2[b2]);
    println!("  paper:       {:.4} ((γ10+γ11)/2)", analytic::pi2(&payoff));
    println!();

    let a1 = Assessment::from_estimates("Pi1", e1);
    let a2 = Assessment::from_estimates("Pi2", e2);
    match compare(&a2, &a1, 0.02) {
        FairnessOrder::StrictlyFairer => {
            println!("Verdict: Π2 ≻ Π1 — the coin toss halves the attacker's edge, the")
        }
        other => println!("Verdict: unexpected order ({other})! the"),
    }
    println!("quantitative statement the classical all-or-nothing definitions cannot make.");
}
