//! Corruption costs and the Theorem 6 duality: when corrupting parties
//! costs the adversary something, utility-balanced protocols are exactly
//! the ones that are ideally fair under the cheapest admissible price
//! list.
//!
//! Run with: `cargo run --release --example corruption_costs`

use fair_core::cost::{cost_from_phi, is_ideally_fair, CostFn};
use fair_core::{analytic, best_of, Payoff};
use fair_protocols::scenarios::optn_sweep;

fn main() {
    let payoff = Payoff::standard();
    let trials = 800;
    let n = 4;

    // Measure φ(t): the best t-adversary utility against Π^Opt_nSFE.
    let phi: Vec<f64> = (1..n)
        .map(|t| {
            let (ests, b) = best_of(&optn_sweep(n, t), &payoff, trials, t as u64);
            println!(
                "φ({t}) = {:.3}  (paper {:.3})",
                ests[b].mean,
                analytic::optn_t(&payoff, n, t)
            );
            ests[b].mean
        })
        .collect();
    println!();

    // Lemma 22: the unique cost function making the protocol ideally fair.
    let cost = cost_from_phi(&phi, &payoff, n);
    for t in 1..n {
        println!(
            "c({t}) = φ({t}) − s({t}) = {:.3}   (s({t}) = γ11 = {:.3})",
            cost.cost(t),
            analytic::ideal_fair_t(&payoff, n, t)
        );
    }
    println!();

    assert!(is_ideally_fair(&phi, &cost, &payoff, n, 0.05));
    println!("With price list C the protocol is ideally γ^C-fair: the attacker gains");
    println!("no more than it would against the incorruptible trusted party.");

    // Theorem 6(2): any strictly cheaper price list fails.
    let cheaper = CostFn::new(
        (0..n)
            .map(|t| if t == 0 { 0.0 } else { cost.cost(t) - 0.1 })
            .collect(),
    );
    assert!(!is_ideally_fair(&phi, &cheaper, &payoff, n, 0.02));
    println!("Dropping every price by 0.1 breaks ideal fairness: C is undominated (Theorem 6).");
}
