//! Fair random selection — the "future direction" flagged at the end of
//! Section 4.1: primitives like random selection, used inside larger
//! constructions, deserve optimally fair protocols of their own.
//!
//! Here the two parties jointly select a random 16-bit value by running
//! Π^Opt_2SFE on f(x₁, x₂) = x₁ ⊕ x₂ with uniformly random inputs: if both
//! parties follow the protocol the output is uniform, a corrupted party
//! cannot bias it (its input is fixed before the sharing is revealed), and
//! the *fairness* guarantee is the optimal (γ₁₀+γ₁₁)/2 of Theorem 3.
//!
//! Run with: `cargo run --release --example fair_random_selection`

use std::collections::BTreeMap;
use std::sync::Arc;

use fair_protocols::opt2::{opt2_instance, TwoPartyFn};
use fair_runtime::{execute, PartyId, Passive, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn xor_fn() -> TwoPartyFn {
    Arc::new(|a: &Value, b: &Value| {
        Value::Scalar(a.as_scalar().unwrap_or(0) ^ b.as_scalar().unwrap_or(0))
    })
}

fn main() {
    let trials = 2000;
    let mut buckets: BTreeMap<u64, usize> = BTreeMap::new();
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let x1 = rng.random_range(0u64..1 << 16);
        let x2 = rng.random_range(0u64..1 << 16);
        let inst = opt2_instance(
            "xor",
            xor_fn(),
            [Value::Scalar(x1), Value::Scalar(x2)],
            [Value::Scalar(0), Value::Scalar(0)],
        );
        let res = execute(inst, &mut Passive, &mut rng, 40).expect("execution succeeds");
        let out = res.outputs[&PartyId(0)]
            .as_scalar()
            .expect("selection value");
        assert_eq!(
            res.outputs[&PartyId(1)].as_scalar(),
            Some(out),
            "parties agree"
        );
        assert_eq!(out, x1 ^ x2);
        *buckets.entry(out >> 12).or_default() += 1; // 16 coarse buckets
    }
    println!("jointly selected {trials} random 16-bit values via Π^Opt_2SFE(xor):");
    for (bucket, count) in &buckets {
        println!("  bucket 0x{bucket:x}xxx: {count}");
    }
    let expect = trials as f64 / 16.0;
    let worst = buckets
        .values()
        .map(|&c| (c as f64 - expect).abs() / expect)
        .fold(0.0f64, f64::max);
    println!();
    println!(
        "worst bucket deviation {:.1}% — uniform as designed; and by Theorem 3 an \
         aborting party can steal the selection with probability at most 1/2, the \
         optimum for any two-party protocol.",
        worst * 100.0
    );
}
