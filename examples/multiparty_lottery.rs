//! A multi-party workload: n parties jointly evaluate a function and care
//! about fairness — modeled on a lottery where everyone contributes a
//! ticket and the concatenated inputs decide the pot.
//!
//! Shows the Lemma 11 utility profile of Π^Opt_nSFE (a coalition of t
//! parties gains (t·γ₁₀+(n−t)·γ₁₁)/n), the utility-balanced sum of
//! Lemma 14, and the honest-majority cliff of Π^{1/2}_GMW (Lemma 17).
//!
//! Run with: `cargo run --release --example multiparty_lottery`

use fair_core::{analytic, best_of, Payoff};
use fair_protocols::scenarios::{gmw_half_sweep, optn_sweep};

fn main() {
    let payoff = Payoff::standard();
    let trials = 800;
    let n = 4;

    println!("Π^Opt_nSFE, n = {n} (optimally fair, utility-balanced):");
    let mut sum = 0.0;
    for t in 1..n {
        let (ests, b) = best_of(&optn_sweep(n, t), &payoff, trials, t as u64);
        sum += ests[b].mean;
        println!(
            "  t={t}: measured {:.3} ± {:.3}   paper {:.3}",
            ests[b].mean,
            ests[b].ci,
            analytic::optn_t(&payoff, n, t)
        );
    }
    println!(
        "  Σ_t = {:.3}   balance bound (n−1)(γ10+γ11)/2 = {:.3}   (Lemma 14: equal)",
        sum,
        analytic::balance_sum(&payoff, n)
    );
    println!();

    println!("Π^1/2_GMW, n = {n} (honest-majority fair, cliff at n/2):");
    let mut sum_half = 0.0;
    for t in 1..n {
        let (ests, b) = best_of(&gmw_half_sweep(n, t), &payoff, trials, 100 + t as u64);
        sum_half += ests[b].mean;
        println!(
            "  t={t}: measured {:.3} ± {:.3}   paper {:.3}",
            ests[b].mean,
            ests[b].ci,
            analytic::gmw_half_t(&payoff, n, t)
        );
    }
    println!(
        "  Σ_t = {:.3} exceeds the balance bound {:.3} by ≈ (γ10−γ11)/2 = {:.3}",
        sum_half,
        analytic::balance_sum(&payoff, n),
        (payoff.g10 - payoff.g11) / 2.0
    );
    println!();
    println!(
        "Lemma 17's moral: with an even number of lottery players, classic GMW \
         concentrates all the unfairness in the half-corruption coalition — \
         Π^Opt_nSFE spreads it optimally across coalition sizes."
    );
}
