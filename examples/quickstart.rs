//! Quickstart: measure how fair a protocol is.
//!
//! Builds the paper's optimally fair two-party protocol Π^Opt_2SFE for the
//! swap function, attacks it with the strategy library, and prints the
//! attacker utilities next to the paper's (γ₁₀+γ₁₁)/2 bound.
//!
//! Run with: `cargo run --release --example quickstart`

use fair_core::{analytic, best_of, Payoff};
use fair_protocols::scenarios::opt2_sweep;

fn main() {
    // An attacker's preferences: γ = (γ00, γ01, γ10, γ11) ∈ Γ⁺_fair.
    let payoff = Payoff::standard();
    println!(
        "payoff vector: γ00={}, γ01={}, γ10={}, γ11={}",
        payoff.g00, payoff.g01, payoff.g10, payoff.g11
    );
    println!();

    // Sweep the attack-strategy library over Π^Opt_2SFE (swap function).
    let trials = 1500;
    let (estimates, best) = best_of(&opt2_sweep(), &payoff, trials, 42);
    for e in &estimates {
        println!("{e}");
    }
    println!();
    println!("best attack:     {}", estimates[best]);
    println!(
        "paper's optimum: {:.4}  (Theorem 3: (γ10+γ11)/2)",
        analytic::opt2(&payoff)
    );
    println!();
    println!(
        "The best attacker gains {:.3}, matching the paper's optimal-fairness bound: \
         no protocol for generic functions can push it lower (Theorem 4).",
        estimates[best].mean
    );
}
