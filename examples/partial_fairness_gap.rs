//! The Section 5 separation, live: the "leaky" protocol Π̃ passes the
//! Gordon–Katz 1/2-security and privacy definitions yet leaks an honest
//! input with probability 1/4 — and no F^{∧,$} simulator can hide it.
//!
//! Run with: `cargo run --release --example partial_fairness_gap`

use fair_bench::partial_exp::{ideal_acceptances, real_acceptances, simulator_grid};
use fair_protocols::leaky::probe_real;

fn main() {
    let trials = 400;

    // Step 1: watch the leak happen.
    let mut leaks = 0;
    for seed in 0..trials {
        let obs = probe_real(1, 0, seed);
        if matches!(obs.reply, Some(Some(_))) {
            leaks += 1;
        }
    }
    println!(
        "A corrupted p2 opening with a deviant 1-bit extracts p1's input in {leaks}/{trials} runs \
         (the biased coin fires with probability 1/4)."
    );
    println!();

    // Step 2: the distinguishers of Lemma 26.
    let (rz1, rz2) = real_acceptances(trials as usize, 99);
    println!(
        "real world:  Pr[Z1] = {:.3}   Pr[Z2] = {:.3}",
        rz1.rate, rz2.rate
    );

    let mut best_gap = f64::INFINITY;
    for sim in simulator_grid() {
        let (iz1, iz2) = ideal_acceptances(&sim, 20_000, 7);
        let gap = (rz1.rate - iz1.rate).abs().max((rz2.rate - iz2.rate).abs());
        if gap < best_gap {
            best_gap = gap;
            println!(
                "  simulator {sim:?}: Pr[Z1] = {:.3}, Pr[Z2] = {:.3}  → worst gap {gap:.3}",
                iz1.rate, iz2.rate
            );
        }
    }
    println!();
    println!(
        "Even the best simulator in the grid is caught with advantage ≥ {best_gap:.3}: \
         Π̃ does not realize F^(∧,$) (Lemma 26), although it is 1/2-secure and fully \
         private in the Gordon–Katz sense (Lemma 27). Utility-based fairness closes \
         exactly this gap."
    );
}
