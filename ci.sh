#!/usr/bin/env bash
# The repo's gate: static checks, tier-1 build + tests, and a smoke run of
# the reproduction suite through the fair-simlab scheduler.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace -- -D warnings

echo "== fairlint (strict)"
cargo run -q -p fairlint -- --strict

echo "== cargo build --release (workspace: libs + reproduce/exp_*/fair-trace bins)"
cargo build --release --workspace

echo "== cargo test"
cargo test -q

echo "== fair-trace selfcheck (record + replay + diff)"
./target/release/fair-trace record exp_coin_toss --trials 80 --sample 3 > /tmp/fair_trace_recorded.txt
./target/release/fair-trace replay exp_coin_toss --jobs 2
./target/release/fair-trace diff "$(head -1 /tmp/fair_trace_recorded.txt)" "$(head -1 /tmp/fair_trace_recorded.txt)"
./target/release/fair-trace top exp_coin_toss --trials 80 --sample 5 --by msgs

echo "== reproduce smoke run (parallel, JSON records)"
FAIR_TRIALS=100 ./target/release/reproduce --jobs 2 --trace --json BENCH_reproduce.json e1 e4 e13

echo "== fair-serve smoke (ephemeral boot, fair-load --check, graceful shutdown)"
SERVE_OUT="$(mktemp)"
./target/release/fair-serve --addr 127.0.0.1:0 --workers 2 \
  --metrics-out target/simlab/serve_metrics.json > "$SERVE_OUT" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 100); do
  ADDR="$(sed -n 's/^ADDR=//p' "$SERVE_OUT")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "fair-serve never reported its address"; kill "$SERVE_PID"; exit 1; }
# --check fails on any request error or a cold cache (warm hit rate must be > 0).
./target/release/fair-load --addr "$ADDR" --exp e2 --trials 200 \
  --clients 2 --points 4 --repeat 4 --out target/simlab/serve_load_smoke.json \
  --bench-out target/simlab/serve_bench_smoke.json --check
# Graceful shutdown: the server drains, flushes metrics, and exits cleanly.
./target/release/fair-load shutdown --addr "$ADDR"
wait "$SERVE_PID"
rm -f "$SERVE_OUT"
test -s target/simlab/serve_metrics.json

echo "== ci.sh: all green"
