#!/usr/bin/env bash
# The repo's gate: static checks, tier-1 build + tests, and a smoke run of
# the reproduction suite through the fair-simlab scheduler.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace -- -D warnings

echo "== fairlint (strict)"
cargo run -q -p fairlint -- --strict

echo "== cargo build --release (workspace: libs + reproduce/exp_*/fair-trace bins)"
cargo build --release --workspace

echo "== cargo test"
cargo test -q

echo "== fair-trace selfcheck (record + replay + diff)"
./target/release/fair-trace record exp_coin_toss --trials 80 --sample 3 > /tmp/fair_trace_recorded.txt
./target/release/fair-trace replay exp_coin_toss --jobs 2
./target/release/fair-trace diff "$(head -1 /tmp/fair_trace_recorded.txt)" "$(head -1 /tmp/fair_trace_recorded.txt)"
./target/release/fair-trace top exp_coin_toss --trials 80 --sample 5 --by msgs

echo "== reproduce smoke run (parallel, JSON records)"
FAIR_TRIALS=100 ./target/release/reproduce --jobs 2 --trace --json BENCH_reproduce.json e1 e4 e13

echo "== ci.sh: all green"
