#!/usr/bin/env bash
# The repo's gate: static checks, tier-1 build + tests, and a smoke run of
# the reproduction suite through the fair-simlab scheduler.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace -- -D warnings

echo "== fairlint (strict)"
cargo run -q -p fairlint -- --strict

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q

echo "== reproduce smoke run (parallel, JSON records)"
FAIR_TRIALS=100 ./target/release/reproduce --jobs 2 --json BENCH_reproduce.json e1 e4 e13

echo "== ci.sh: all green"
