#!/usr/bin/env bash
# The repo's gate: static checks, tier-1 build + tests, and a smoke run of
# the reproduction suite through the fair-simlab scheduler.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace -- -D warnings

echo "== fairlint (strict + graph)"
mkdir -p target/fairlint
# Gate: zero non-baselined diagnostics, machine-readable report on disk.
cargo run -q -p fairlint -- --strict --baseline check --json \
  > target/fairlint/report.json
grep -q '"violations":\[\]' target/fairlint/report.json
# The exported call graph must cover the workspace and be deterministic:
# two consecutive runs are byte-identical, and the payload parses enough
# to name every member crate.
cargo run -q -p fairlint -- --graph json > target/fairlint/graph.json
cargo run -q -p fairlint -- --graph json > target/fairlint/graph.2.json
cmp target/fairlint/graph.json target/fairlint/graph.2.json
rm -f target/fairlint/graph.2.json
grep -q '"crates"' target/fairlint/graph.json
grep -q '"edges"' target/fairlint/graph.json
cargo run -q -p fairlint -- --graph dot > target/fairlint/graph.dot
grep -q '^digraph fairlint' target/fairlint/graph.dot

echo "== cargo build --release (workspace: libs + reproduce/exp_*/fair-trace bins)"
cargo build --release --workspace

echo "== cargo test"
cargo test -q

echo "== fair-trace selfcheck (record + replay + diff)"
./target/release/fair-trace record exp_coin_toss --trials 80 --sample 3 > /tmp/fair_trace_recorded.txt
./target/release/fair-trace replay exp_coin_toss --jobs 2
./target/release/fair-trace diff "$(head -1 /tmp/fair_trace_recorded.txt)" "$(head -1 /tmp/fair_trace_recorded.txt)"
./target/release/fair-trace top exp_coin_toss --trials 80 --sample 5 --by msgs

echo "== fair-scenario check (declarative scenario layer)"
# Every checked-in scenario file must compile; the listing must expose
# all three shipped families through the registry.
./target/release/fair-scenario check scenarios
./target/release/fair-scenario list scenarios | grep -q '^s_deposit_coin '
./target/release/fair-scenario expand scenarios | grep -q 'deposit=0.25'
# Malformed input is rejected with a span-carrying error and nonzero exit.
BAD_DIR="$(mktemp -d)"
printf '[scenario]\nid = "s_broken"\n' > "$BAD_DIR/broken.toml"
if ./target/release/fair-scenario check "$BAD_DIR" 2> "$BAD_DIR/err.txt"; then
  echo "fair-scenario accepted a malformed scenario"; exit 1
fi
grep -q 'broken.toml:1: error:' "$BAD_DIR/err.txt"
rm -rf "$BAD_DIR"

echo "== reproduce smoke run (parallel, JSON records)"
FAIR_TRIALS=100 ./target/release/reproduce --jobs 2 --trace --json BENCH_reproduce.json e1 e4 e13 s_deposit_coin

echo "== fair-serve smoke (ephemeral boot, fair-load --check, graceful shutdown)"
# Perf gate pinned to --loops 1: the 5k rps floor below measures the
# single-loop event loop, so sharding changes can't mask a regression.
SERVE_OUT="$(mktemp)"
./target/release/fair-serve --addr 127.0.0.1:0 --workers 2 --loops 1 \
  --metrics-out target/simlab/serve_metrics.json > "$SERVE_OUT" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 100); do
  ADDR="$(sed -n 's/^ADDR=//p' "$SERVE_OUT")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "fair-serve never reported its address"; kill "$SERVE_PID"; exit 1; }
# --check fails on any request error or a cold cache (warm hit rate must be > 0).
./target/release/fair-load --addr "$ADDR" --exp e2 --trials 200 \
  --clients 2 --points 4 --repeat 4 --out target/simlab/serve_load_smoke.json \
  --bench-out target/simlab/serve_bench_smoke.json --check
# Keep-alive path: the same gate over persistent pipelined connections,
# plus a conservative warm-throughput floor (release build on one core
# sustains tens of thousands of rps; 5k catches an event-loop regression
# without being flaky on slow CI hosts).
./target/release/fair-load --addr "$ADDR" --exp e2 --trials 200 \
  --connections 4 --pipeline 8 --points 4 --repeat 50 \
  --out target/simlab/serve_load_keepalive_smoke.json \
  --bench-out target/simlab/serve_bench_keepalive_smoke.json --check
python3 - <<'EOF'
import json
with open("target/simlab/serve_load_keepalive_smoke.json") as fh:
    doc = json.load(fh)
assert doc["mode"] == "persistent", doc["mode"]
rps = doc["achieved_rps"]
assert rps >= 5000, f"keep-alive warm path too slow: {rps} rps < 5000 floor"
print(f"keep-alive warm path: {rps} rps (floor 5000)")
EOF
# Graceful shutdown: the server drains, flushes metrics, and exits cleanly.
./target/release/fair-load shutdown --addr "$ADDR"
wait "$SERVE_PID"
rm -f "$SERVE_OUT"
test -s target/simlab/serve_metrics.json

echo "== fair-serve sharded smoke (--loops 2, correctness-only gate)"
# Correctness only — no throughput floor: both gates (0 errors, warm
# cache hits) must hold when accepts are sharded across two event loops,
# and the group must still drain cleanly on shutdown.
SHARD_OUT="$(mktemp)"
SHARD_METRICS="$(mktemp)"
./target/release/fair-serve --addr 127.0.0.1:0 --workers 2 --loops 2 \
  --metrics-out "$SHARD_METRICS" > "$SHARD_OUT" &
SHARD_PID=$!
SADDR=""
for _ in $(seq 100); do
  SADDR="$(sed -n 's/^ADDR=//p' "$SHARD_OUT")"
  [ -n "$SADDR" ] && break
  sleep 0.1
done
[ -n "$SADDR" ] || { echo "fair-serve (sharded) never reported its address"; kill "$SHARD_PID"; exit 1; }
./target/release/fair-load --addr "$SADDR" --exp e2 --trials 200 \
  --connections 4 --pipeline 4 --points 4 --repeat 8 --server-loops 2 \
  --out target/simlab/serve_load_sharded_smoke.json \
  --bench-out target/simlab/serve_bench_sharded_smoke.json --check
./target/release/fair-load shutdown --addr "$SADDR"
wait "$SHARD_PID"
# The aggregated snapshot reports both loops.
grep -q '"loops": 2' "$SHARD_METRICS"
rm -f "$SHARD_OUT" "$SHARD_METRICS"

echo "== tile-store restart smoke (warm-from-disk byte identity + /stream)"
TILES_DIR="$(mktemp -d)"
BODY_COLD="$(mktemp)"
BODY_WARM="$(mktemp)"
TSERVE_OUT="$(mktemp)"
TMETRICS="$(mktemp)"
boot_tiles_server() {
  : > "$TSERVE_OUT"
  ./target/release/fair-serve --addr 127.0.0.1:0 --workers 2 \
    --tiles-dir "$TILES_DIR" > "$TSERVE_OUT" &
  TSERVE_PID=$!
  TADDR=""
  for _ in $(seq 100); do
    TADDR="$(sed -n 's/^ADDR=//p' "$TSERVE_OUT")"
    [ -n "$TADDR" ] && break
    sleep 0.1
  done
  [ -n "$TADDR" ] || { echo "fair-serve (tiles) never reported its address"; kill "$TSERVE_PID"; exit 1; }
}
# Cold boot: compute one point, and stream the same experiment with a
# loose epsilon — the adaptive stopper must converge ("done":true).
boot_tiles_server
GET_OUT="$(./target/release/fair-load get --addr "$TADDR" \
  --target '/estimate?exp=e2&trials=320&seed=9' --out "$BODY_COLD")"
echo "$GET_OUT" | grep -q 'X-CACHE=miss'
STREAM_OUT="$(./target/release/fair-load get --addr "$TADDR" \
  --target '/stream?exp=e2&trials=5000&seed=9&epsilon=0.2')"
echo "$STREAM_OUT" | grep -q '"done":true'
./target/release/fair-load shutdown --addr "$TADDR"
wait "$TSERVE_PID"
# Reboot on the same directory: the point comes back warm from disk —
# tiles loaded, lookups hit, and the body byte-identical to the cold one.
boot_tiles_server
./target/release/fair-load get --addr "$TADDR" \
  --target '/estimate?exp=e2&trials=320&seed=9' --out "$BODY_WARM" > /dev/null
cmp "$BODY_COLD" "$BODY_WARM"
./target/release/fair-load get --addr "$TADDR" --target '/metrics' --out "$TMETRICS" > /dev/null
grep -q '"loaded_records": [1-9]' "$TMETRICS"
grep -q '"hits": [1-9]' "$TMETRICS"
./target/release/fair-load shutdown --addr "$TADDR"
wait "$TSERVE_PID"
rm -rf "$TILES_DIR"
rm -f "$BODY_COLD" "$BODY_WARM" "$TSERVE_OUT" "$TMETRICS"

echo "== ci.sh: all green"
