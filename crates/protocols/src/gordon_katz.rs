//! The Gordon–Katz partially fair ("1/p-secure") two-party protocols
//! [GK, Eurocrypt 2010], analyzed in Section 5 of the paper.
//!
//! The idea: a ShareGen functionality prepares m rounds of candidate
//! outputs. Before a secret switch round i* the candidates are *fake* —
//! drawn from the distribution induced by a random counterparty input
//! (the poly-size-domain variant, Theorem 23) or uniform over the output
//! range (the poly-size-range variant, Theorem 24) — and from i* on they
//! equal the real output f(x₁, x₂). Each round the parties exchange
//! authenticated shares: p₂ releases p₁'s candidate first, then p₁
//! releases p₂'s. Whoever aborts leaves the other party outputting its
//! most recent candidate.
//!
//! The switch round is geometric with parameter α (α = 1/(p·|Y|) resp.
//! 1/(p²·|Z|)), truncated at m = ⌈8/α⌉ rounds (truncation mass e⁻⁸, far
//! below the experiments' statistical resolution). An aborting adversary
//! provokes the paper's E₁₀ only by stopping *exactly at* i*, which no
//! strategy achieves with probability better than ≈ 1/p — the bound the
//! E11 experiment measures with the payoff vector γ = (0, 0, 1, 0).

use std::sync::Arc;

use fair_crypto::authshare::{self, AuthShare, AuthShareHolding};
use fair_runtime::{
    Adapted, AdvControl, Adversary, Envelope, FuncId, Instance, OutMsg, Party, PartyId, RoundCtx,
    RoundView, Value,
};
use fair_sfe::ideal::{SfeMsg, SfeWithAbort};
use fair_sfe::spec::{IdealOutput, IdealSpec};
use rand::rngs::StdRng;
use rand::RngExt;

use crate::opt2::TwoPartyFn;

/// Rounds a party waits for phase-1 / counterparty progress before giving
/// up and outputting its latest candidate.
const STALL_DEADLINE: usize = 8;

/// A sampler for fake candidate values.
pub type ValueSampler = Arc<dyn Fn(&mut StdRng) -> Value + Send + Sync>;

/// How fake (pre-switch) candidates are generated.
#[derive(Clone)]
pub enum FakeMode {
    /// Theorem 23 (poly-size domains): p₁'s fake candidate is f(x₁, ŷ)
    /// with ŷ sampled from p₂'s domain, and symmetrically with x̂ from
    /// p₁'s domain.
    FromDomain {
        /// Sampler for p₁'s input domain.
        x_sampler: ValueSampler,
        /// Sampler for p₂'s input domain.
        y_sampler: ValueSampler,
    },
    /// Theorem 24 (poly-size range): fake candidates are uniform over the
    /// (small) output range.
    FromRange(Vec<Value>),
}

/// Configuration of a Gordon–Katz protocol instance.
#[derive(Clone)]
pub struct GkConfig {
    /// The evaluated function.
    pub f: TwoPartyFn,
    /// The fairness parameter p.
    pub p: u64,
    /// Geometric parameter α for the switch round.
    pub alpha: f64,
    /// Truncation bound m on the number of ShareGen rounds.
    pub m: usize,
    /// Fake-candidate generation.
    pub fake: FakeMode,
}

impl GkConfig {
    /// The Theorem 23 configuration for a function whose second input
    /// domain has `y_domain_size` elements: α = 1/(p·|Y|), m = ⌈8/α⌉.
    pub fn poly_domain(
        f: TwoPartyFn,
        p: u64,
        y_domain_size: usize,
        x_sampler: ValueSampler,
        y_sampler: ValueSampler,
    ) -> GkConfig {
        let alpha = 1.0 / (p as f64 * y_domain_size as f64);
        GkConfig {
            f,
            p,
            alpha,
            m: (8.0 / alpha).ceil() as usize,
            fake: FakeMode::FromDomain {
                x_sampler,
                y_sampler,
            },
        }
    }

    /// The Theorem 24 configuration for a function with the given (small)
    /// output range: α = 1/(p²·|Z|), m = ⌈8/α⌉.
    pub fn poly_range(f: TwoPartyFn, p: u64, range: Vec<Value>) -> GkConfig {
        let alpha = 1.0 / (p as f64 * p as f64 * range.len() as f64);
        GkConfig {
            f,
            p,
            alpha,
            m: (8.0 / alpha).ceil() as usize,
            fake: FakeMode::FromRange(range),
        }
    }

    fn sample_fake(&self, rng: &mut StdRng, inputs: &[Value], for_p1: bool) -> Value {
        match &self.fake {
            FakeMode::FromDomain {
                x_sampler,
                y_sampler,
            } => {
                if for_p1 {
                    (self.f)(&inputs[0], &y_sampler(rng))
                } else {
                    (self.f)(&x_sampler(rng), &inputs[1])
                }
            }
            FakeMode::FromRange(range) => range[rng.random_range(0..range.len())].clone(),
        }
    }

    fn sample_i_star(&self, rng: &mut StdRng) -> usize {
        // Geometric(α), truncated to 1..=m.
        let mut i = 1usize;
        while i < self.m {
            if rng.random_bool(self.alpha) {
                break;
            }
            i += 1;
        }
        i
    }
}

/// Wire messages of the Gordon–Katz protocols.
#[derive(Clone, Debug)]
pub enum GkMsg {
    /// Traffic to/from the ShareGen functionality.
    Sfe(SfeMsg),
    /// p₂ → p₁ in round i: p₂'s share of p₁'s candidate a_i.
    AShare(u64, AuthShare),
    /// p₁ → p₂ in round i: p₁'s share of p₂'s candidate b_i.
    BShare(u64, AuthShare),
}

fn down(m: &GkMsg) -> Option<SfeMsg> {
    match m {
        GkMsg::Sfe(s) => Some(s.clone()),
        _ => None,
    }
}

fn encode_holdings(hs: &[AuthShareHolding]) -> Value {
    Value::Tuple(hs.iter().map(|h| Value::Bytes(h.to_bytes())).collect())
}

fn encode_shares(ss: &[AuthShare]) -> Value {
    Value::Tuple(ss.iter().map(|s| Value::Bytes(s.to_bytes())).collect())
}

fn decode_holdings(v: &Value) -> Option<Vec<AuthShareHolding>> {
    let Value::Tuple(parts) = v else { return None };
    parts
        .iter()
        .map(|p| p.as_bytes().and_then(AuthShareHolding::from_bytes))
        .collect()
}

fn decode_shares(v: &Value) -> Option<Vec<AuthShare>> {
    let Value::Tuple(parts) = v else { return None };
    parts
        .iter()
        .map(|p| p.as_bytes().and_then(AuthShare::from_bytes))
        .collect()
}

/// The ShareGen specification: candidate sequences, dealt as authenticated
/// 2-of-2 sharings. Records facts `y` and `i_star`.
///
/// Each party's phase-1 output is
/// `Tuple[ holdings(own candidates), shares(counterparty candidates), default ]`.
pub fn sharegen_spec(name: &str, cfg: GkConfig) -> IdealSpec {
    IdealSpec::new(name, 2, move |inputs, rng| {
        let y = (cfg.f)(&inputs[0], &inputs[1]);
        let i_star = cfg.sample_i_star(rng);
        let mut a_holdings = Vec::with_capacity(cfg.m);
        let mut a_shares = Vec::with_capacity(cfg.m);
        let mut b_holdings = Vec::with_capacity(cfg.m);
        let mut b_shares = Vec::with_capacity(cfg.m);
        for i in 1..=cfg.m {
            let a_i = if i < i_star {
                cfg.sample_fake(rng, inputs, true)
            } else {
                y.clone()
            };
            let b_i = if i < i_star {
                cfg.sample_fake(rng, inputs, false)
            } else {
                y.clone()
            };
            let (h1, h2) = authshare::deal(&fair_crypto::mac::pack_bytes(&a_i.encode()), rng);
            a_holdings.push(h1);
            a_shares.push(h2.share);
            let (h1b, h2b) = authshare::deal(&fair_crypto::mac::pack_bytes(&b_i.encode()), rng);
            b_holdings.push(h2b);
            b_shares.push(h1b.share);
        }
        let a0 = cfg.sample_fake(rng, inputs, true);
        let b0 = cfg.sample_fake(rng, inputs, false);
        IdealOutput {
            facts: vec![
                ("y".to_string(), y.clone()),
                ("i_star".to_string(), Value::Scalar(i_star as u64)),
            ],
            per_party: vec![
                Value::Tuple(vec![
                    encode_holdings(&a_holdings),
                    encode_shares(&b_shares),
                    a0,
                ]),
                Value::Tuple(vec![
                    encode_holdings(&b_holdings),
                    encode_shares(&a_shares),
                    b0,
                ]),
            ],
        }
    })
}

#[derive(Clone, Debug)]
enum Phase {
    AwaitShareGen,
    Exchanging,
}

/// A party of the Gordon–Katz protocol.
pub struct GkParty {
    me: usize, // 1-based
    input: Value,
    m: usize,
    holdings: Vec<AuthShareHolding>,
    shares: Vec<AuthShare>,
    latest: Option<Value>,
    cur: usize,
    last_progress: usize,
    pending: Option<(u64, AuthShare)>,
    phase: Phase,
    out: Option<Value>,
}

impl core::fmt::Debug for GkParty {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("GkParty")
            .field("me", &self.me)
            .field("cur", &self.cur)
            .field("out", &self.out)
            .finish()
    }
}

impl Clone for GkParty {
    fn clone(&self) -> Self {
        GkParty {
            me: self.me,
            input: self.input.clone(),
            m: self.m,
            holdings: self.holdings.clone(),
            shares: self.shares.clone(),
            latest: self.latest.clone(),
            cur: self.cur,
            last_progress: self.last_progress,
            pending: self.pending.clone(),
            phase: self.phase.clone(),
            out: self.out.clone(),
        }
    }
}

impl GkParty {
    /// Creates party `me` (1-based) with its input; `m` must match the
    /// ShareGen configuration.
    pub fn new(me: usize, input: Value, m: usize) -> GkParty {
        assert!(me == 1 || me == 2);
        GkParty {
            me,
            input,
            m,
            holdings: Vec::new(),
            shares: Vec::new(),
            latest: None,
            cur: 1,
            last_progress: 0,
            pending: None,
            phase: Phase::AwaitShareGen,
            out: None,
        }
    }

    fn other(&self) -> PartyId {
        PartyId(2 - self.me)
    }

    fn finish_with_latest(&mut self) {
        self.out = Some(self.latest.clone().unwrap_or(Value::Bot));
    }

    /// Reconstructs candidate i (1-based) from the incoming share.
    fn reconstruct(&self, i: usize, incoming: &AuthShare) -> Option<Value> {
        let holding = self.holdings.get(i - 1)?;
        let packed = authshare::reconstruct(self.me, holding, incoming).ok()?;
        let bytes = fair_crypto::mac::unpack_bytes(&packed)?;
        Value::decode(&bytes)
    }

    fn my_share_for(&self, i: usize) -> Option<GkMsg> {
        let share = self.shares.get(i - 1)?.clone();
        Some(if self.me == 1 {
            GkMsg::BShare(i as u64, share)
        } else {
            GkMsg::AShare(i as u64, share)
        })
    }
}

impl Party<GkMsg> for GkParty {
    fn round(&mut self, ctx: &RoundCtx, inbox: &[Envelope<GkMsg>]) -> Vec<OutMsg<GkMsg>> {
        if self.out.is_some() {
            return Vec::new();
        }
        let mut sfe: Option<SfeMsg> = None;
        for e in inbox {
            match &e.msg {
                GkMsg::Sfe(s) if matches!(e.from, fair_runtime::Endpoint::Func(_)) => {
                    sfe = Some(s.clone());
                }
                GkMsg::AShare(i, s)
                    if self.me == 1
                        && e.from_party() == Some(self.other())
                        && self.pending.is_none() =>
                {
                    self.pending = Some((*i, s.clone()));
                }
                GkMsg::BShare(i, s)
                    if self.me == 2
                        && e.from_party() == Some(self.other())
                        && self.pending.is_none() =>
                {
                    self.pending = Some((*i, s.clone()));
                }
                _ => {}
            }
        }
        let mut msgs = self.dispatch(ctx, &sfe);
        // A ShareGen output and the counterparty's first share can arrive
        // together; let the new phase consume the buffered share.
        if self.out.is_none() && self.pending.is_some() && matches!(self.phase, Phase::Exchanging) {
            msgs.extend(self.dispatch(ctx, &None));
        }
        msgs
    }

    fn output(&self) -> Option<Value> {
        self.out.clone()
    }

    fn clone_box(&self) -> Box<dyn Party<GkMsg>> {
        Box::new(self.clone())
    }
}

impl GkParty {
    fn dispatch(&mut self, ctx: &RoundCtx, sfe: &Option<SfeMsg>) -> Vec<OutMsg<GkMsg>> {
        match &self.phase {
            Phase::AwaitShareGen => {
                if ctx.round == 0 {
                    return vec![OutMsg::to_func(
                        FuncId(0),
                        GkMsg::Sfe(SfeMsg::Input(self.input.clone())),
                    )];
                }
                match sfe {
                    Some(SfeMsg::Output(v)) => {
                        let parsed = (|| {
                            let Value::Tuple(parts) = &v else { return None };
                            let [h, s, d] = parts.as_slice() else {
                                return None;
                            };
                            Some((decode_holdings(h)?, decode_shares(s)?, d.clone()))
                        })();
                        let Some((holdings, shares, default)) = parsed else {
                            self.out = Some(Value::Bot);
                            return Vec::new();
                        };
                        if holdings.len() != self.m || shares.len() != self.m {
                            self.out = Some(Value::Bot);
                            return Vec::new();
                        }
                        self.holdings = holdings;
                        self.shares = shares;
                        self.latest = Some(default);
                        self.phase = Phase::Exchanging;
                        self.last_progress = ctx.round;
                        if self.me == 2 {
                            // p2 opens the exchange: release a_1's share.
                            return self
                                .my_share_for(1)
                                .map(|m| vec![OutMsg::to_party(self.other(), m)])
                                .unwrap_or_default();
                        }
                        Vec::new()
                    }
                    Some(SfeMsg::Abort) => {
                        self.out = Some(Value::Bot);
                        Vec::new()
                    }
                    _ => {
                        if ctx.round >= STALL_DEADLINE {
                            self.out = Some(Value::Bot);
                        }
                        Vec::new()
                    }
                }
            }
            Phase::Exchanging => {
                if let Some((i, share)) = self.pending.take() {
                    let i = i as usize;
                    if i != self.cur {
                        // Out-of-order share: treat as an abort.
                        self.finish_with_latest();
                        return Vec::new();
                    }
                    let Some(v) = self.reconstruct(i, &share) else {
                        self.finish_with_latest();
                        return Vec::new();
                    };
                    self.latest = Some(v);
                    self.last_progress = ctx.round;
                    if self.me == 1 {
                        // Respond with b_i's share; p1 finishes after round m.
                        let msg = self.my_share_for(i);
                        self.cur += 1;
                        if i == self.m {
                            self.finish_with_latest();
                        }
                        return msg
                            .map(|m| vec![OutMsg::to_party(self.other(), m)])
                            .unwrap_or_default();
                    }
                    // p2: advance and release the next a-share.
                    self.cur += 1;
                    if i == self.m {
                        self.finish_with_latest();
                        return Vec::new();
                    }
                    let next = self.cur;
                    return self
                        .my_share_for(next)
                        .map(|m| vec![OutMsg::to_party(self.other(), m)])
                        .unwrap_or_default();
                }
                if ctx.round > self.last_progress + STALL_DEADLINE {
                    self.finish_with_latest();
                }
                Vec::new()
            }
        }
    }
}

/// Builds a Gordon–Katz instance.
pub fn gk_instance(name: &str, cfg: GkConfig, inputs: [Value; 2]) -> Instance<GkMsg> {
    let m = cfg.m;
    let spec = sharegen_spec(name, cfg);
    let func = Adapted::new(SfeWithAbort::new(spec), down, GkMsg::Sfe);
    let [x1, x2] = inputs;
    Instance {
        parties: vec![
            Box::new(GkParty::new(1, x1, m)),
            Box::new(GkParty::new(2, x2, m)),
        ],
        funcs: vec![Box::new(func)],
    }
}

/// When the [`GkAttack`] adversary stops.
#[derive(Clone, Debug)]
pub enum AbortRule {
    /// Abort right after reconstructing candidate i.
    AtRound(usize),
    /// Abort at the first round whose reconstructed candidate equals the
    /// given value (the value-guessing attack).
    OnValue(Value),
    /// Abort at the first round whose candidate equals the previous one
    /// (the repetition heuristic).
    OnRepeat,
    /// Never abort (the honest baseline).
    Never,
}

/// The Gordon–Katz attacker: corrupts p₁, plays honestly, watches the
/// candidates a_1, a_2, … it reconstructs, and aborts according to an
/// [`AbortRule`] — claiming its latest candidate as the learned output.
pub struct GkAttack {
    rule: AbortRule,
    holdings: Vec<AuthShareHolding>,
    history: Vec<Value>,
    learned: Option<Value>,
    aborted: bool,
}

impl GkAttack {
    /// Creates the attack.
    pub fn new(rule: AbortRule) -> GkAttack {
        GkAttack {
            rule,
            holdings: Vec::new(),
            history: Vec::new(),
            learned: None,
            aborted: false,
        }
    }

    fn should_abort(&self) -> bool {
        let Some(last) = self.history.last() else {
            return false;
        };
        match &self.rule {
            AbortRule::AtRound(i) => self.history.len() >= *i,
            AbortRule::OnValue(v) => last == v,
            AbortRule::OnRepeat => {
                self.history.len() >= 2 && self.history[self.history.len() - 2] == *last
            }
            AbortRule::Never => false,
        }
    }
}

impl Adversary<GkMsg> for GkAttack {
    fn initial_corruptions(&mut self, _n: usize, _rng: &mut StdRng) -> Vec<PartyId> {
        vec![PartyId(0)]
    }

    fn on_round(
        &mut self,
        view: &RoundView<'_, GkMsg>,
        ctrl: &mut AdvControl<'_, GkMsg>,
        _rng: &mut StdRng,
    ) {
        if self.aborted {
            return;
        }
        // Harvest our holdings from the ShareGen output.
        for e in view.delivered {
            if let GkMsg::Sfe(SfeMsg::Output(Value::Tuple(parts))) = &e.msg {
                if let Some(h) = parts.first().and_then(decode_holdings) {
                    self.holdings = h;
                }
            }
        }
        // Reconstruct any candidate delivered this round or visible by
        // rushing, *before* deciding whether to respond.
        let mut seen: Vec<(u64, AuthShare)> = Vec::new();
        for e in view.delivered.iter().chain(view.rushing.iter()) {
            if let GkMsg::AShare(i, s) = &e.msg {
                seen.push((*i, s.clone()));
            }
        }
        for (i, share) in seen {
            let i = i as usize;
            if i != self.history.len() + 1 {
                continue;
            }
            let Some(holding) = self.holdings.get(i - 1) else {
                continue;
            };
            if let Ok(packed) = authshare::reconstruct(1, holding, &share) {
                if let Some(v) =
                    fair_crypto::mac::unpack_bytes(&packed).and_then(|b| Value::decode(&b))
                {
                    self.history.push(v);
                }
            }
        }
        if self.should_abort() {
            self.learned = self.history.last().cloned();
            self.aborted = true;
            return;
        }
        ctrl.run_honestly(PartyId(0));
        // On a completed run, claim the machine's output.
        if let Some(v) = ctrl.machine(PartyId(0)).output() {
            if !v.is_bot() && self.learned.is_none() {
                self.learned = Some(v);
            }
        }
    }

    fn learned(&self) -> Option<Value> {
        self.learned.clone()
    }
}

/// The ideal-world counterpart of a [`GkAttack`] run — the F^{f,$} world
/// with the Theorem 23 simulator.
///
/// The simulator internally reproduces ShareGen's sampling (it can: the
/// fake candidates depend only on the corrupted party's input and public
/// samplers), applies the adversary's abort rule to the simulated
/// candidate stream, and maps the abort round onto F^$'s interface: abort
/// before the switch round replaces the honest output by a fresh
/// Y₂(x₂)-sample; abort at or after it delivers the real output (with the
/// exact-switch round being the E₁₀ event). Comparing the joint
/// (learned, honest-output) distribution of this sampler with the real
/// protocol is the empirical content of "the protocol realizes F^{f,$}".
pub fn ideal_observables(
    cfg: &GkConfig,
    rule: &AbortRule,
    x1: &Value,
    x2: &Value,
    rng: &mut StdRng,
) -> (Option<Value>, Value) {
    let y = (cfg.f)(x1, x2);
    let i_star = cfg.sample_i_star(rng);
    let inputs = [x1.clone(), x2.clone()];
    // Walk the simulated candidate stream under the abort rule.
    let mut history: Vec<Value> = Vec::new();
    let mut abort_at: Option<usize> = None;
    for i in 1..=cfg.m {
        let a_i = if i < i_star {
            cfg.sample_fake(rng, &inputs, true)
        } else {
            y.clone()
        };
        history.push(a_i);
        let fire = match rule {
            AbortRule::AtRound(r) => history.len() >= *r,
            AbortRule::OnValue(v) => history.last() == Some(v),
            AbortRule::OnRepeat => {
                history.len() >= 2 && history[history.len() - 2] == history[history.len() - 1]
            }
            AbortRule::Never => false,
        };
        if fire {
            abort_at = Some(i);
            break;
        }
    }
    match abort_at {
        None => (Some(y.clone()), y), // completed: both get the output
        Some(i) => {
            let learned = history.last().cloned();
            // The honest party holds b_{i−1}: real from i−1 ≥ i*, else a
            // fresh Y₂(x₂)-replacement (F^$'s randomized abort).
            let honest = if i > i_star {
                y
            } else {
                cfg.sample_fake(rng, &inputs, false)
            };
            (learned, honest)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_runtime::{execute, Passive};
    use rand::SeedableRng;

    /// AND over bits, with p2's domain {0,1}.
    fn and_cfg(p: u64) -> GkConfig {
        let f: TwoPartyFn = Arc::new(|a: &Value, b: &Value| {
            Value::Scalar((a.as_scalar().unwrap_or(0) & 1) & (b.as_scalar().unwrap_or(0) & 1))
        });
        let bit: ValueSampler = Arc::new(|rng: &mut StdRng| Value::Scalar(rng.random_range(0..2)));
        GkConfig::poly_domain(f, p, 2, Arc::clone(&bit), bit)
    }

    fn run(p: u64, x1: u64, x2: u64, seed: u64) -> fair_runtime::ExecutionResult {
        let cfg = and_cfg(p);
        let m = cfg.m;
        let inst = gk_instance("and", cfg, [Value::Scalar(x1), Value::Scalar(x2)]);
        let mut rng = StdRng::seed_from_u64(seed);
        execute(inst, &mut Passive, &mut rng, 3 * m + 20).expect("execution succeeds")
    }

    #[test]
    fn honest_run_outputs_the_real_value() {
        for (x1, x2) in [(1u64, 1u64), (1, 0), (0, 1), (0, 0)] {
            let res = run(2, x1, x2, 17 + x1 * 2 + x2);
            assert!(
                res.all_honest_output(&Value::Scalar(x1 & x2)),
                "{x1} & {x2}: {:?}",
                res.outputs
            );
        }
    }

    #[test]
    fn switch_round_is_geometric_with_expected_mean() {
        let cfg = and_cfg(2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut total = 0usize;
        let trials = 2000;
        for _ in 0..trials {
            total += cfg.sample_i_star(&mut rng);
        }
        let mean = total as f64 / trials as f64;
        // Geometric(1/4) has mean 4 (truncation at m = 32 barely matters).
        assert!((mean - 4.0).abs() < 0.3, "mean i* = {mean}");
    }

    #[test]
    fn abort_at_fixed_round_rarely_hits_i_star() {
        // With p = 2 and |Y| = 2 (α = 1/4): Pr[i* = 3] = (3/4)² · 1/4 ≈ 0.14.
        let mut e10 = 0;
        let trials = 200;
        for seed in 0..trials {
            let cfg = and_cfg(2);
            let m = cfg.m;
            let inst = gk_instance("and", cfg, [Value::Scalar(1), Value::Scalar(1)]);
            let mut rng = StdRng::seed_from_u64(900 + seed);
            let mut adv = GkAttack::new(AbortRule::AtRound(3));
            let res = execute(inst, &mut adv, &mut rng, 3 * m + 20).expect("execution succeeds");
            let y = Value::Scalar(1);
            let honest_correct = res.outputs.get(&PartyId(1)) == Some(&y);
            if res.learned == Some(y.clone()) && !honest_correct {
                e10 += 1;
            }
        }
        let rate = e10 as f64 / trials as f64;
        assert!(rate < 0.5, "E10 rate {rate} must be bounded by 1/p = 0.5");
        assert!(rate > 0.02, "the attack occasionally succeeds ({rate})");
    }

    #[test]
    fn abort_after_switch_gives_both_parties_the_output() {
        // Abort very late: i* ≤ 20 with high probability, so both sides
        // have the real output by then.
        let cfg = and_cfg(2);
        let m = cfg.m;
        let inst = gk_instance("and", cfg, [Value::Scalar(1), Value::Scalar(1)]);
        let mut rng = StdRng::seed_from_u64(31);
        let mut adv = GkAttack::new(AbortRule::AtRound(m));
        let res = execute(inst, &mut adv, &mut rng, 3 * m + 20).expect("execution succeeds");
        assert_eq!(res.outputs[&PartyId(1)], Value::Scalar(1));
    }

    #[test]
    fn early_abort_leaves_honest_with_candidate_from_distribution() {
        // Abort at round 1 (almost surely before i*): the honest party
        // outputs f(x̂, y), which for y = x2 = 0 is always 0.
        let cfg = and_cfg(2);
        let m = cfg.m;
        let inst = gk_instance("and", cfg, [Value::Scalar(1), Value::Scalar(0)]);
        let mut rng = StdRng::seed_from_u64(37);
        let mut adv = GkAttack::new(AbortRule::AtRound(1));
        let res = execute(inst, &mut adv, &mut rng, 3 * m + 20).expect("execution succeeds");
        assert_eq!(res.outputs[&PartyId(1)], Value::Scalar(0));
    }
}
