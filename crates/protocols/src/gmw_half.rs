//! Π^{1/2}_GMW — the honest-majority fair SFE protocol of Lemma 17.
//!
//! The classic GMW protocol is fully secure — including fairness — against
//! any coalition of t < n/2 parties, and completely unfair at or beyond
//! n/2. Lemma 17 uses exactly this threshold cliff to show the protocol is
//! *not* utility-balanced for even n.
//!
//! Implementation: the phase-1 hybrid hands every party the output
//! encrypted under a one-time key k, a Shamir (⌊n/2⌋+1)-of-n share of k,
//! and a signature on that share (so injected bogus shares are detected).
//! Phase 2 broadcasts all shares in a single simultaneous round; with a
//! strict majority of valid shares everyone recovers k and decrypts. A
//! rushing coalition of t ≥ n/2 reads the honest shares before releasing
//! its own and withholds them — it learns y while the remaining ⌊n/2⌋
//! honest parties stay below the threshold (see [`HalfCoalition`]).

use fair_crypto::prg::Prg;
use fair_crypto::share::{shamir_reconstruct, shamir_share, ShamirShare};
use fair_crypto::sign::{self, Signature, VerifyingKey};
use fair_field::Fp;
use fair_runtime::{
    Adapted, AdvControl, Adversary, Envelope, FuncId, Instance, OutMsg, Party, PartyId, RoundCtx,
    RoundView, Value,
};
use fair_sfe::ideal::{SfeMsg, SfeWithAbort};
use fair_sfe::spec::{IdealOutput, IdealSpec};
use rand::rngs::StdRng;

use crate::optn::NPartyFn;

/// Rounds a party waits for the phase-1 result before concluding abort.
const PHASE1_DEADLINE: usize = 8;

/// The reconstruction threshold ⌊n/2⌋ + 1: a strict majority of shares is
/// needed to recover the key. Combined with the single simultaneous
/// broadcast round this yields exactly the Lemma 17 cliff: a rushing
/// coalition of t ≥ n/2 sees the honest shares before releasing its own,
/// learns the output, and leaves the n − t ≤ ⌊n/2⌋ honest parties below
/// the threshold; any t < n/2 leaves an honest strict majority that
/// reconstructs no matter what the coalition does.
pub fn threshold(n: usize) -> usize {
    n / 2 + 1
}

/// Wire messages.
#[derive(Clone, Debug)]
pub enum HalfMsg {
    /// Traffic to/from the phase-1 functionality.
    Sfe(SfeMsg),
    /// Phase 2 broadcast: a signed key share (index, value, signature).
    KeyShare(u64, u64, Vec<u8>),
}

fn down(m: &HalfMsg) -> Option<SfeMsg> {
    match m {
        HalfMsg::Sfe(s) => Some(s.clone()),
        HalfMsg::KeyShare(..) => None,
    }
}

fn share_sign_payload(index: u64, value: u64) -> Vec<u8> {
    let mut out = b"gmw-half-share".to_vec();
    out.extend_from_slice(&index.to_be_bytes());
    out.extend_from_slice(&value.to_be_bytes());
    out
}

/// Decrypts the phase-1 ciphertext with key `k`.
pub fn decrypt(ct: &[u8], k: Fp) -> Option<Value> {
    let pad = Prg::new(&k.value().to_be_bytes()).next_bytes(ct.len());
    let bytes: Vec<u8> = ct.iter().zip(&pad).map(|(a, b)| a ^ b).collect();
    Value::decode(&bytes)
}

/// The phase-1 specification: encrypted output plus verifiable key shares.
/// Records facts `y` and `threshold`.
pub fn half_spec(name: &str, n: usize, f: NPartyFn) -> IdealSpec {
    IdealSpec::new(name, n, move |inputs, rng| {
        let y = f(inputs);
        let k = fair_crypto::prg::random_fp(rng);
        let enc = y.encode();
        let pad = Prg::new(&k.value().to_be_bytes()).next_bytes(enc.len());
        let ct: Vec<u8> = enc.iter().zip(&pad).map(|(a, b)| a ^ b).collect();
        let t = threshold(inputs.len());
        let shares = shamir_share(k, t, inputs.len(), rng);
        let (sk, vk) = sign::keygen_many(inputs.len(), rng);
        let per_party = shares
            .iter()
            .enumerate()
            .map(|(j, s)| {
                let sig = sign::sign(&sk[j], &share_sign_payload(s.index, s.value.value()));
                Value::Tuple(vec![
                    Value::Bytes(ct.clone()),
                    Value::Scalar(s.index),
                    Value::Scalar(s.value.value()),
                    Value::Bytes(sig.to_bytes()),
                    Value::Tuple(vk.iter().map(|v| Value::Bytes(v.to_bytes())).collect()),
                ])
            })
            .collect();
        IdealOutput {
            facts: vec![
                ("y".to_string(), y.clone()),
                ("threshold".to_string(), Value::Scalar(t as u64)),
            ],
            per_party,
        }
    })
}

#[derive(Clone, Debug)]
enum Phase {
    AwaitShareGen,
    AwaitShares { deadline: usize },
}

/// A party of Π^{1/2}_GMW.
#[derive(Clone, Debug)]
pub struct HalfParty {
    input: Value,
    ct: Option<Vec<u8>>,
    my_share: Option<(u64, u64, Vec<u8>)>,
    vks: Vec<VerifyingKey>,
    received: Vec<(u64, u64, Vec<u8>)>,
    phase: Phase,
    out: Option<Value>,
}

impl HalfParty {
    /// Creates a party with its input.
    pub fn new(input: Value) -> HalfParty {
        HalfParty {
            input,
            ct: None,
            my_share: None,
            vks: Vec::new(),
            received: Vec::new(),
            phase: Phase::AwaitShareGen,
            out: None,
        }
    }

    fn valid_share(&self, index: u64, value: u64, sig: &[u8]) -> bool {
        let Some(vk) = self.vks.get((index as usize).wrapping_sub(1)) else {
            return false;
        };
        let Some(sig) = Signature::from_bytes(sig) else {
            return false;
        };
        sign::verify(vk, &share_sign_payload(index, value), &sig)
    }

    fn decide(&mut self, n: usize) {
        let t = threshold(n);
        let mut shares: Vec<ShamirShare> = Vec::new();
        let mut mine_and_received = self.received.clone();
        if let Some(m) = &self.my_share {
            mine_and_received.push(m.clone());
        }
        for (index, value, sig) in &mine_and_received {
            if !self.valid_share(*index, *value, sig) {
                continue;
            }
            if shares.iter().any(|s| s.index == *index) {
                continue;
            }
            shares.push(ShamirShare {
                index: *index,
                value: Fp::new(*value),
            });
        }
        let out = if shares.len() >= t {
            shamir_reconstruct(&shares, t)
                .ok()
                .and_then(|k| self.ct.as_ref().and_then(|ct| decrypt(ct, k)))
                .unwrap_or(Value::Bot)
        } else {
            Value::Bot
        };
        self.out = Some(out);
    }
}

impl Party<HalfMsg> for HalfParty {
    fn round(&mut self, ctx: &RoundCtx, inbox: &[Envelope<HalfMsg>]) -> Vec<OutMsg<HalfMsg>> {
        if self.out.is_some() {
            return Vec::new();
        }
        let mut sfe: Option<SfeMsg> = None;
        for e in inbox {
            match &e.msg {
                HalfMsg::Sfe(m) if matches!(e.from, fair_runtime::Endpoint::Func(_)) => {
                    sfe = Some(m.clone());
                }
                HalfMsg::KeyShare(i, v, s) => self.received.push((*i, *v, s.clone())),
                _ => {}
            }
        }
        match &self.phase {
            Phase::AwaitShareGen => {
                if ctx.round == 0 {
                    return vec![OutMsg::to_func(
                        FuncId(0),
                        HalfMsg::Sfe(SfeMsg::Input(self.input.clone())),
                    )];
                }
                match sfe {
                    Some(SfeMsg::Output(v)) => {
                        let parsed = (|| {
                            let Value::Tuple(parts) = &v else { return None };
                            let [ct, index, value, sig, vks] = parts.as_slice() else {
                                return None;
                            };
                            let Value::Tuple(vks) = vks else { return None };
                            let vks: Option<Vec<VerifyingKey>> = vks
                                .iter()
                                .map(|b| b.as_bytes().and_then(VerifyingKey::from_bytes))
                                .collect();
                            Some((
                                ct.as_bytes()?.to_vec(),
                                index.as_scalar()?,
                                value.as_scalar()?,
                                sig.as_bytes()?.to_vec(),
                                vks?,
                            ))
                        })();
                        let Some((ct, index, value, sig, vks)) = parsed else {
                            self.out = Some(Value::Bot);
                            return Vec::new();
                        };
                        self.ct = Some(ct);
                        self.my_share = Some((index, value, sig.clone()));
                        self.vks = vks;
                        self.phase = Phase::AwaitShares {
                            deadline: ctx.round + 2,
                        };
                        vec![OutMsg::broadcast(HalfMsg::KeyShare(index, value, sig))]
                    }
                    Some(SfeMsg::Abort) => {
                        self.out = Some(Value::Bot);
                        Vec::new()
                    }
                    _ => {
                        if ctx.round >= PHASE1_DEADLINE {
                            self.out = Some(Value::Bot);
                        }
                        Vec::new()
                    }
                }
            }
            Phase::AwaitShares { deadline } => {
                // Our own broadcast loops back, so `received` reaches n when
                // every party has announced.
                if self.received.len() >= ctx.n || ctx.round >= *deadline {
                    self.decide(ctx.n);
                }
                Vec::new()
            }
        }
    }

    fn output(&self) -> Option<Value> {
        self.out.clone()
    }

    fn clone_box(&self) -> Box<dyn Party<HalfMsg>> {
        Box::new(self.clone())
    }
}

/// Builds a Π^{1/2}_GMW instance.
pub fn gmw_half_instance(name: &str, f: NPartyFn, inputs: Vec<Value>) -> Instance<HalfMsg> {
    let n = inputs.len();
    let spec = half_spec(name, n, f);
    let func = Adapted::new(SfeWithAbort::new(spec), down, HalfMsg::Sfe);
    Instance {
        parties: inputs
            .into_iter()
            .map(|x| Box::new(HalfParty::new(x)) as Box<dyn Party<HalfMsg>>)
            .collect(),
        funcs: vec![Box::new(func)],
    }
}

/// The optimal coalition attack on Π^{1/2}_GMW: run honestly through
/// phase 1, collect the coalition's own key shares, then *withhold* them
/// in the broadcast round while reading the honest shares by rushing.
/// With its own t shares plus the n − t rushed honest shares the coalition
/// always reaches the threshold and learns y; the honest parties are left
/// with n − t shares, which is below the threshold exactly when t ≥ n/2 —
/// the Lemma 17 cliff.
pub struct HalfCoalition {
    corrupted: Vec<PartyId>,
    collected: Vec<(u64, u64)>,
    ct: Option<Vec<u8>>,
    learned: Option<Value>,
    withholding: bool,
}

impl HalfCoalition {
    /// Creates the attack for a fixed coalition (0-based ids).
    pub fn new(coalition: Vec<usize>) -> HalfCoalition {
        HalfCoalition {
            corrupted: coalition.into_iter().map(PartyId).collect(),
            collected: Vec::new(),
            ct: None,
            learned: None,
            withholding: false,
        }
    }

    fn try_reconstruct(&mut self, n: usize) {
        if self.learned.is_some() {
            return;
        }
        let t = threshold(n);
        if self.collected.len() < t {
            return;
        }
        let shares: Vec<ShamirShare> = self
            .collected
            .iter()
            .map(|(i, v)| ShamirShare {
                index: *i,
                value: Fp::new(*v),
            })
            .collect();
        if let (Ok(k), Some(ct)) = (shamir_reconstruct(&shares, t), &self.ct) {
            if let Some(y) = decrypt(ct, k) {
                self.learned = Some(y);
            }
        }
    }
}

impl Adversary<HalfMsg> for HalfCoalition {
    fn initial_corruptions(&mut self, n: usize, _rng: &mut StdRng) -> Vec<PartyId> {
        assert!(self.corrupted.iter().all(|p| p.0 < n));
        self.corrupted.clone()
    }

    fn on_round(
        &mut self,
        view: &RoundView<'_, HalfMsg>,
        ctrl: &mut AdvControl<'_, HalfMsg>,
        _rng: &mut StdRng,
    ) {
        // Harvest the coalition's own phase-1 outputs.
        for e in view.delivered {
            if let HalfMsg::Sfe(SfeMsg::Output(Value::Tuple(parts))) = &e.msg {
                if let [ct, index, value, ..] = parts.as_slice() {
                    if let (Some(ct), Some(i), Some(v)) =
                        (ct.as_bytes(), index.as_scalar(), value.as_scalar())
                    {
                        self.ct = Some(ct.to_vec());
                        if !self.collected.iter().any(|(j, _)| *j == i) {
                            self.collected.push((i, v));
                        }
                        // From the moment we hold shares, never release them.
                        self.withholding = true;
                    }
                }
            }
        }
        // Rushing: read the honest shares broadcast this round.
        for e in view.rushing {
            if let HalfMsg::KeyShare(i, v, _) = &e.msg {
                if !self.collected.iter().any(|(j, _)| j == i) {
                    self.collected.push((*i, *v));
                }
            }
        }
        self.try_reconstruct(view.n);
        if self.withholding {
            return; // silent from the broadcast stage on
        }
        for &pid in &self.corrupted.clone() {
            ctrl.run_honestly(pid);
        }
    }

    fn learned(&self) -> Option<Value> {
        self.learned.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optn::concat_fn;
    use fair_runtime::{execute, Passive};
    use rand::SeedableRng;

    fn instance(n: usize) -> Instance<HalfMsg> {
        let inputs = (0..n).map(|i| Value::Scalar(10 + i as u64)).collect();
        gmw_half_instance("concat", concat_fn(), inputs)
    }

    fn truth(n: usize) -> Value {
        Value::Tuple((0..n).map(|i| Value::Scalar(10 + i as u64)).collect())
    }

    #[test]
    fn honest_run_reconstructs_for_various_n() {
        for n in [3usize, 4, 5, 6] {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let res = execute(instance(n), &mut Passive, &mut rng, 30).expect("execution succeeds");
            assert!(
                res.all_honest_output(&truth(n)),
                "n = {n}: {:?}",
                res.outputs
            );
        }
    }

    #[test]
    fn small_coalition_cannot_break_fairness() {
        // n = 5, t = 2 < 5/2: the coalition learns y by rushing but the
        // honest strict majority reconstructs anyway (E11 at best).
        let mut rng = StdRng::seed_from_u64(40);
        let mut adv = HalfCoalition::new(vec![0, 1]);
        let res = execute(instance(5), &mut adv, &mut rng, 30).expect("execution succeeds");
        assert!(
            res.outputs.values().all(|v| *v == truth(5)),
            "{:?}",
            res.outputs
        );
        assert_eq!(res.learned, Some(truth(5)));
    }

    #[test]
    fn half_coalition_steals_the_output_for_even_n() {
        // n = 4, t = 2 = n/2: rushing gives the coalition all n shares;
        // withholding leaves the honest pair below the ⌊n/2⌋+1 threshold.
        let mut rng = StdRng::seed_from_u64(41);
        let mut adv = HalfCoalition::new(vec![0, 1]);
        let res = execute(instance(4), &mut adv, &mut rng, 30).expect("execution succeeds");
        assert_eq!(res.learned, Some(truth(4)), "coalition learned the output");
        assert!(
            res.outputs.values().all(|v| v.is_bot()),
            "honest parties blocked: {:?}",
            res.outputs
        );
    }

    #[test]
    fn majority_coalition_steals_the_output_for_odd_n() {
        // n = 5, t = 3 ≥ ⌈5/2⌉.
        let mut rng = StdRng::seed_from_u64(44);
        let mut adv = HalfCoalition::new(vec![0, 1, 2]);
        let res = execute(instance(5), &mut adv, &mut rng, 30).expect("execution succeeds");
        assert_eq!(res.learned, Some(truth(5)));
        assert!(res.outputs.values().all(|v| v.is_bot()));
    }

    #[test]
    fn small_coalition_abort_still_lets_honest_reconstruct() {
        // Even if a sub-threshold coalition goes silent in phase 2, the
        // honest majority holds ≥ t shares and reconstructs — that is the
        // fairness of the honest-majority protocol.
        struct SilentInPhase2;
        impl Adversary<HalfMsg> for SilentInPhase2 {
            fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
                vec![PartyId(0)]
            }
            fn on_round(
                &mut self,
                view: &RoundView<'_, HalfMsg>,
                ctrl: &mut AdvControl<'_, HalfMsg>,
                _r: &mut StdRng,
            ) {
                if view.round == 0 {
                    ctrl.run_honestly(PartyId(0)); // submit input
                }
                // then silence: never broadcast the key share
            }
        }
        let mut rng = StdRng::seed_from_u64(42);
        let res =
            execute(instance(5), &mut SilentInPhase2, &mut rng, 30).expect("execution succeeds");
        for (p, v) in &res.outputs {
            assert_eq!(v, &truth(5), "party {p} reconstructs");
        }
    }

    #[test]
    fn forged_key_share_is_ignored() {
        struct ForgeShare;
        impl Adversary<HalfMsg> for ForgeShare {
            fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
                vec![PartyId(0)]
            }
            fn on_round(
                &mut self,
                view: &RoundView<'_, HalfMsg>,
                ctrl: &mut AdvControl<'_, HalfMsg>,
                _r: &mut StdRng,
            ) {
                ctrl.run_honestly(PartyId(0));
                if view.round == 2 {
                    // Inject a bogus share for index 2 with a garbage sig.
                    ctrl.send_as(
                        PartyId(0),
                        OutMsg::broadcast(HalfMsg::KeyShare(2, 12345, vec![0u8; 256 * 32])),
                    );
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(43);
        let res = execute(instance(3), &mut ForgeShare, &mut rng, 30).expect("execution succeeds");
        // The forged share is ignored; real shares still reconstruct y.
        assert!(res.outputs.values().all(|v| *v == truth(3)));
    }
}
