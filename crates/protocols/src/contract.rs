//! The two contract-signing protocols from the paper's introduction.
//!
//! Both protocols have the parties locally sign the contract, exchange
//! *commitments* to the signed versions, and then open them:
//!
//! * **Π1** opens in a fixed order — p₁ first, then p₂. A corrupted p₂ can
//!   always receive p₁'s opening and withhold its own, so the best
//!   attacker gets γ₁₀ with certainty.
//! * **Π2** first runs a commit-then-open coin toss [Blum '83] to decide
//!   who opens first. The attacker only wins when the coin assigns its
//!   corrupted party the second opening — probability 1/2 — so its best
//!   utility drops to (γ₁₀ + γ₁₁)/2: the formal sense in which Π2 is
//!   "twice as fair" as Π1.
//!
//! Signatures are Lamport one-time signatures; verification keys ride along
//! with the commitment (a PKI stand-in). The global output is the pair of
//! signed contracts.

use fair_crypto::commit::{self, Commitment, Opening};
use fair_crypto::sign::{self, Signature, SigningKey, VerifyingKey};
use fair_runtime::{Envelope, OutMsg, Party, PartyId, RoundCtx, Value};
use rand::rngs::StdRng;
use rand::RngExt;

/// Wire messages for Π1/Π2.
#[derive(Clone, Debug)]
pub enum ContractMsg {
    /// Commitment to the signed contract, plus the signer's verification
    /// key.
    Commit(Commitment, Vec<u8>),
    /// Commitment to the coin-toss bit (Π2 only).
    CoinCommit(Commitment),
    /// Opening of the coin-toss bit (Π2 only).
    CoinOpen(Opening),
    /// Opening of the signed contract.
    Open(Opening),
}

/// The signed contract of party `who` (1-based), as a byte string.
fn signed_contract(contract: &[u8], who: usize, sig: &Signature) -> Vec<u8> {
    let mut out = format!("signed-by-p{who}:").into_bytes();
    out.extend_from_slice(contract);
    out.extend_from_slice(&sig.to_bytes());
    out
}

/// The global output both parties should end with: the pair of signed
/// contracts. Exposed so experiments can compute the ground truth.
pub fn contract_truth(contract: &[u8], keys: &[(SigningKey, VerifyingKey); 2]) -> Value {
    let s1 = signed_contract(contract, 1, &sign::sign(&keys[0].0, contract));
    let s2 = signed_contract(contract, 2, &sign::sign(&keys[1].0, contract));
    Value::pair(Value::Bytes(s1), Value::Bytes(s2))
}

/// Generates the two signing key pairs deterministically from an RNG (the
/// PKI setup).
pub fn contract_keys(rng: &mut StdRng) -> [(SigningKey, VerifyingKey); 2] {
    [sign::keygen(rng), sign::keygen(rng)]
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Variant {
    /// Fixed opening order (Π1).
    Fixed,
    /// Coin-tossed opening order (Π2).
    CoinToss,
}

/// A party of Π1 or Π2.
#[derive(Clone, Debug)]
pub struct ContractParty {
    variant: Variant,
    me: usize, // 1-based
    contract: Vec<u8>,
    my_signed: Vec<u8>,
    my_opening: Opening,
    my_commitment: Commitment,
    my_vk: VerifyingKey,
    // Coin toss state (Π2).
    my_coin: bool,
    my_coin_opening: Opening,
    my_coin_commitment: Commitment,
    their_coin_commitment: Option<Commitment>,
    opens_first: Option<bool>,
    // Counterparty state.
    their_commitment: Option<Commitment>,
    their_vk: Option<VerifyingKey>,
    their_signed: Option<Vec<u8>>,
    sent_open: bool,
    out: Option<Value>,
}

impl ContractParty {
    fn build(
        variant: Variant,
        me: usize,
        contract: &[u8],
        key: &(SigningKey, VerifyingKey),
        rng: &mut StdRng,
    ) -> ContractParty {
        let sig = sign::sign(&key.0, contract);
        let my_signed = signed_contract(contract, me, &sig);
        let (my_commitment, my_opening) = commit::commit(&my_signed, rng);
        let my_coin: bool = rng.random();
        let (my_coin_commitment, my_coin_opening) = commit::commit(&[my_coin as u8], rng);
        ContractParty {
            variant,
            me,
            contract: contract.to_vec(),
            my_signed,
            my_opening,
            my_commitment,
            my_vk: key.1.clone(),
            my_coin,
            my_coin_opening,
            my_coin_commitment,
            their_coin_commitment: None,
            opens_first: None,
            their_commitment: None,
            their_vk: None,
            their_signed: None,
            sent_open: false,
            out: None,
        }
    }

    /// Creates a Π1 party (`me` is 1-based).
    pub fn pi1(
        me: usize,
        contract: &[u8],
        key: &(SigningKey, VerifyingKey),
        rng: &mut StdRng,
    ) -> ContractParty {
        ContractParty::build(Variant::Fixed, me, contract, key, rng)
    }

    /// Creates a Π2 party (`me` is 1-based).
    pub fn pi2(
        me: usize,
        contract: &[u8],
        key: &(SigningKey, VerifyingKey),
        rng: &mut StdRng,
    ) -> ContractParty {
        ContractParty::build(Variant::CoinToss, me, contract, key, rng)
    }

    fn other(&self) -> PartyId {
        PartyId(2 - self.me)
    }

    fn abort(&mut self) {
        self.out = Some(Value::Bot);
    }

    /// Verifies an incoming contract opening: the commitment must match and
    /// the contained signature must verify on the contract.
    fn accept_opening(&mut self, opening: &Opening) -> bool {
        let (Some(c), Some(vk)) = (&self.their_commitment, &self.their_vk) else {
            return false;
        };
        if !commit::verify(c, opening) {
            return false;
        }
        // signed contract layout: prefix || contract || signature bytes
        let prefix = format!("signed-by-p{}:", 3 - self.me).into_bytes();
        let body = &opening.message;
        if body.len() < prefix.len() + self.contract.len() || !body.starts_with(&prefix) {
            return false;
        }
        let rest = &body[prefix.len()..];
        if !rest.starts_with(&self.contract) {
            return false;
        }
        let Some(sig) = Signature::from_bytes(&rest[self.contract.len()..]) else {
            return false;
        };
        if !sign::verify(vk, &self.contract, &sig) {
            return false;
        }
        self.their_signed = Some(opening.message.clone());
        true
    }

    fn finish(&mut self) {
        let theirs = self
            .their_signed
            .clone()
            .expect("counterparty contract present");
        let (s1, s2) = if self.me == 1 {
            (self.my_signed.clone(), theirs)
        } else {
            (theirs, self.my_signed.clone())
        };
        self.out = Some(Value::pair(Value::Bytes(s1), Value::Bytes(s2)));
    }

    /// Whether this party opens its contract commitment first.
    fn i_open_first(&self) -> Option<bool> {
        match self.variant {
            Variant::Fixed => Some(self.me == 1),
            Variant::CoinToss => self.opens_first,
        }
    }
}

impl Party<ContractMsg> for ContractParty {
    fn round(
        &mut self,
        ctx: &RoundCtx,
        inbox: &[Envelope<ContractMsg>],
    ) -> Vec<OutMsg<ContractMsg>> {
        if self.out.is_some() {
            return Vec::new();
        }
        // Absorb messages.
        let mut got_contract_open: Option<Opening> = None;
        let mut got_coin_open: Option<Opening> = None;
        for e in inbox {
            if e.from_party() != Some(self.other()) {
                continue;
            }
            match &e.msg {
                ContractMsg::Commit(c, vk) => {
                    if self.their_commitment.is_none() {
                        self.their_commitment = Some(*c);
                        self.their_vk = VerifyingKey::from_bytes(vk);
                    }
                }
                ContractMsg::CoinCommit(c) => {
                    if self.their_coin_commitment.is_none() {
                        self.their_coin_commitment = Some(*c);
                    }
                }
                ContractMsg::CoinOpen(o) => got_coin_open = Some(o.clone()),
                ContractMsg::Open(o) => got_contract_open = Some(o.clone()),
            }
        }

        match (self.variant, ctx.round) {
            // Round 0: exchange commitments (and coin commitments for Π2).
            (_, 0) => {
                let mut out = vec![OutMsg::to_party(
                    self.other(),
                    ContractMsg::Commit(self.my_commitment, self.my_vk.to_bytes()),
                )];
                if self.variant == Variant::CoinToss {
                    out.push(OutMsg::to_party(
                        self.other(),
                        ContractMsg::CoinCommit(self.my_coin_commitment),
                    ));
                }
                out
            }
            // Π2 round 1: simultaneous coin opening.
            (Variant::CoinToss, 1) => {
                if self.their_commitment.is_none() || self.their_coin_commitment.is_none() {
                    self.abort();
                    return Vec::new();
                }
                vec![OutMsg::to_party(
                    self.other(),
                    ContractMsg::CoinOpen(self.my_coin_opening.clone()),
                )]
            }
            // Π2 round 2: evaluate the coin; loser of the toss (bit b
            // decides) opens first in this round.
            (Variant::CoinToss, 2) => {
                let Some(o) = got_coin_open else {
                    self.abort();
                    return Vec::new();
                };
                let valid = self
                    .their_coin_commitment
                    .as_ref()
                    .map(|c| commit::verify(c, &o) && o.message.len() == 1 && o.message[0] <= 1)
                    .unwrap_or(false);
                if !valid {
                    self.abort();
                    return Vec::new();
                }
                let b = self.my_coin ^ (o.message[0] == 1);
                // b = 0: p1 opens first; b = 1: p2 opens first.
                self.opens_first = Some((self.me == 1) != b);
                if self.i_open_first() == Some(true) {
                    self.sent_open = true;
                    vec![OutMsg::to_party(
                        self.other(),
                        ContractMsg::Open(self.my_opening.clone()),
                    )]
                } else {
                    Vec::new()
                }
            }
            // Π1 round 1: commitments must be in; p1 opens.
            (Variant::Fixed, 1) => {
                if self.their_commitment.is_none() {
                    self.abort();
                    return Vec::new();
                }
                if self.i_open_first() == Some(true) {
                    self.sent_open = true;
                    vec![OutMsg::to_party(
                        self.other(),
                        ContractMsg::Open(self.my_opening.clone()),
                    )]
                } else {
                    Vec::new()
                }
            }
            // Later rounds: the second opener expects the first opening one
            // round after it was sent; the first opener expects the
            // response two rounds after opening. A missing or invalid
            // opening at its deadline is an abort.
            (_, r) => {
                let open_round = if self.variant == Variant::Fixed { 1 } else { 2 };
                let first = match self.i_open_first() {
                    Some(f) => f,
                    None => {
                        self.abort();
                        return Vec::new();
                    }
                };
                if first {
                    if r < open_round + 2 {
                        return Vec::new(); // response still in flight
                    }
                    match got_contract_open {
                        Some(o) if self.accept_opening(&o) => self.finish(),
                        _ => self.abort(),
                    }
                    Vec::new()
                } else {
                    if r < open_round + 1 {
                        return Vec::new(); // first opening still in flight
                    }
                    // Second opener: on a valid first opening, respond with
                    // our own and finish.
                    match got_contract_open {
                        Some(o) if self.accept_opening(&o) => {
                            self.sent_open = true;
                            self.finish();
                            vec![OutMsg::to_party(
                                self.other(),
                                ContractMsg::Open(self.my_opening.clone()),
                            )]
                        }
                        _ => {
                            self.abort();
                            Vec::new()
                        }
                    }
                }
            }
        }
    }

    fn output(&self) -> Option<Value> {
        self.out.clone()
    }

    fn clone_box(&self) -> Box<dyn Party<ContractMsg>> {
        Box::new(self.clone())
    }
}

/// Builds a Π1 instance.
pub fn pi1_instance(
    contract: &[u8],
    keys: &[(SigningKey, VerifyingKey); 2],
    rng: &mut StdRng,
) -> fair_runtime::Instance<ContractMsg> {
    fair_runtime::Instance {
        parties: vec![
            Box::new(ContractParty::pi1(1, contract, &keys[0], rng)),
            Box::new(ContractParty::pi1(2, contract, &keys[1], rng)),
        ],
        funcs: vec![],
    }
}

/// Builds a Π2 instance.
pub fn pi2_instance(
    contract: &[u8],
    keys: &[(SigningKey, VerifyingKey); 2],
    rng: &mut StdRng,
) -> fair_runtime::Instance<ContractMsg> {
    fair_runtime::Instance {
        parties: vec![
            Box::new(ContractParty::pi2(1, contract, &keys[0], rng)),
            Box::new(ContractParty::pi2(2, contract, &keys[1], rng)),
        ],
        funcs: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_runtime::{execute, Passive};
    use rand::SeedableRng;

    fn run_honest(pi2: bool, seed: u64) -> (fair_runtime::ExecutionResult, Value) {
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = contract_keys(&mut rng);
        let truth = contract_truth(b"the deal", &keys);
        let inst = if pi2 {
            pi2_instance(b"the deal", &keys, &mut rng)
        } else {
            pi1_instance(b"the deal", &keys, &mut rng)
        };
        (
            execute(inst, &mut Passive, &mut rng, 20).expect("execution succeeds"),
            truth,
        )
    }

    #[test]
    fn pi1_honest_run_exchanges_contracts() {
        let (res, truth) = run_honest(false, 1);
        assert!(res.all_honest_output(&truth));
    }

    #[test]
    fn pi2_honest_run_exchanges_contracts_both_coin_outcomes() {
        let mut seen_orders = std::collections::BTreeSet::new();
        for seed in 0..10 {
            let (res, truth) = run_honest(true, seed);
            assert!(res.all_honest_output(&truth), "seed {seed}");
            seen_orders.insert(res.rounds);
        }
        // Both coin outcomes terminate correctly (round counts may match,
        // so just assert all runs were fine; order coverage is implicit in
        // 10 random coins).
        assert!(!seen_orders.is_empty());
    }

    #[test]
    fn tampered_opening_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let keys = contract_keys(&mut rng);
        let mut p2 = ContractParty::pi1(2, b"c", &keys[1], &mut rng);
        let p1 = ContractParty::pi1(1, b"c", &keys[0], &mut rng);
        p2.their_commitment = Some(p1.my_commitment);
        p2.their_vk = Some(keys[0].1.clone());
        let mut bad = p1.my_opening.clone();
        bad.message[0] ^= 1;
        assert!(!p2.accept_opening(&bad));
        assert!(p2.accept_opening(&p1.my_opening));
    }

    #[test]
    fn opening_with_wrong_contract_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let keys = contract_keys(&mut rng);
        let mut p2 = ContractParty::pi1(2, b"contract A", &keys[1], &mut rng);
        let p1_other = ContractParty::pi1(1, b"contract B", &keys[0], &mut rng);
        p2.their_commitment = Some(p1_other.my_commitment);
        p2.their_vk = Some(keys[0].1.clone());
        assert!(!p2.accept_opening(&p1_other.my_opening));
    }

    #[test]
    fn truth_is_deterministic_in_keys() {
        let mut rng = StdRng::seed_from_u64(5);
        let keys = contract_keys(&mut rng);
        assert_eq!(contract_truth(b"x", &keys), contract_truth(b"x", &keys));
        assert_ne!(contract_truth(b"x", &keys), contract_truth(b"y", &keys));
    }
}
