//! Ready-made [`Scenario`]s wiring every protocol to the fairness
//! estimator — the experiment layer of the reproduction.
//!
//! Each protocol gets one scenario type with a strategy enum; the sweep
//! constructors (`*_sweep`) return the strategy library over which
//! `fair_core::best_of` computes the empirical `sup_A u_A(Π, A)`.
//!
//! [`Scenario`]: fair_core::Scenario

use fair_core::strategy::{
    any_output, differs_from_any, CorruptionPlan, HonestUntilRound, LockAndAbort, RunHonestly,
};
use fair_core::{HonestCriterion, Scenario, Trial};
use fair_runtime::{Adversary, Instance, Passive, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::coin_toss::{coin_toss_instance, CoinMsg};
use crate::contract::{contract_keys, contract_truth, pi1_instance, pi2_instance, ContractMsg};
use crate::gmw_half::{gmw_half_instance, HalfCoalition, HalfMsg};
use crate::gordon_katz::{gk_instance, AbortRule, GkAttack, GkConfig, GkMsg};
use crate::one_round::{one_round_instance, OneRoundMsg, OneRoundRusher};
use crate::opt2::{opt2_instance, swap_fn, Opt2Msg};
use crate::optn::{concat_fn, optn_instance, OptnMsg};

/// Attack strategies available against every protocol scenario here.
#[derive(Clone, Debug)]
pub enum Strategy {
    /// No corruption (the honest baseline, E₀₁).
    NoCorruption,
    /// Corrupt per plan and lock-and-abort (A₁/A₂/A_gen/A_ī family).
    LockAbort(CorruptionPlan),
    /// Corrupt per plan, run honestly until the given engine round, then
    /// go silent.
    AbortAtRound(CorruptionPlan, usize),
    /// Corrupt per plan and follow the protocol to the end.
    Honest(CorruptionPlan),
}

impl Strategy {
    fn label(&self) -> String {
        match self {
            Strategy::NoCorruption => "no-corruption".into(),
            Strategy::LockAbort(p) => format!("lock-abort({p:?})"),
            Strategy::AbortAtRound(p, r) => format!("abort@{r}({p:?})"),
            Strategy::Honest(p) => format!("honest({p:?})"),
        }
    }

    fn build<M: Clone + core::fmt::Debug + 'static>(
        &self,
        is_real: fair_core::strategy::IsReal,
    ) -> Box<dyn Adversary<M>> {
        match self {
            Strategy::NoCorruption => Box::new(Passive),
            Strategy::LockAbort(plan) => Box::new(LockAndAbort::new(plan.clone(), is_real)),
            Strategy::AbortAtRound(plan, r) => {
                Box::new(HonestUntilRound::new(plan.clone(), *r, is_real))
            }
            Strategy::Honest(plan) => Box::new(RunHonestly::new(plan.clone(), is_real)),
        }
    }
}

/// The standard two-party strategy sweep.
pub fn two_party_sweep() -> Vec<Strategy> {
    let mut out = vec![
        Strategy::NoCorruption,
        Strategy::LockAbort(CorruptionPlan::Fixed(vec![0])),
        Strategy::LockAbort(CorruptionPlan::Fixed(vec![1])),
        Strategy::LockAbort(CorruptionPlan::RandomSingleton),
        Strategy::Honest(CorruptionPlan::Fixed(vec![0])),
        Strategy::Honest(CorruptionPlan::Fixed(vec![1])),
    ];
    for r in 0..8 {
        out.push(Strategy::AbortAtRound(CorruptionPlan::Fixed(vec![0]), r));
        out.push(Strategy::AbortAtRound(CorruptionPlan::Fixed(vec![1]), r));
    }
    out
}

/// The multi-party strategy sweep for a t-adversary.
pub fn t_adversary_sweep(n: usize, t: usize) -> Vec<Strategy> {
    assert!(t >= 1 && t < n);
    let mut out = vec![
        Strategy::LockAbort(CorruptionPlan::RandomSubset(t)),
        Strategy::LockAbort(CorruptionPlan::Fixed((0..t).collect())),
        Strategy::Honest(CorruptionPlan::RandomSubset(t)),
    ];
    for r in 0..6 {
        out.push(Strategy::AbortAtRound(
            CorruptionPlan::Fixed((0..t).collect()),
            r,
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Π1 / Π2 (contract signing)
// ---------------------------------------------------------------------------

/// A contract-signing scenario.
pub struct ContractScenario {
    /// Use Π2 (coin-tossed order) instead of Π1 (fixed order).
    pub pi2: bool,
    /// The attack strategy.
    pub strategy: Strategy,
}

impl Scenario for ContractScenario {
    type Msg = ContractMsg;

    fn name(&self) -> String {
        format!(
            "{}/{}",
            if self.pi2 { "Pi2" } else { "Pi1" },
            self.strategy.label()
        )
    }

    fn n(&self) -> usize {
        2
    }

    fn build(&self, rng: &mut StdRng) -> Trial<ContractMsg> {
        let keys = contract_keys(rng);
        let truth = contract_truth(b"the contract", &keys);
        let instance = if self.pi2 {
            pi2_instance(b"the contract", &keys, rng)
        } else {
            pi1_instance(b"the contract", &keys, rng)
        };
        Trial {
            instance,
            adversary: self.strategy.build(any_output()),
            truth: Some(truth),
            max_rounds: 20,
        }
    }
}

/// The full strategy sweep against Π1 or Π2.
pub fn contract_sweep(pi2: bool) -> Vec<ContractScenario> {
    two_party_sweep()
        .into_iter()
        .map(|strategy| ContractScenario { pi2, strategy })
        .collect()
}

// ---------------------------------------------------------------------------
// Blum coin toss
// ---------------------------------------------------------------------------

/// A Blum commit-then-open coin-toss scenario.
///
/// The coin toss has no secret the adversary could "learn" ahead of the
/// honest party (the XOR is undetermined until both openings are on the
/// wire), so `truth` is pinned to ⊥ — classification reduces to tracking
/// whether the honest party completed (E₀₁) or aborted (E₀₀). That makes
/// this the cheapest named protocol in the workspace, which is exactly what
/// the `fair-trace` CLI and CI selfcheck want in a record/replay target.
pub struct CoinTossScenario {
    /// The attack strategy.
    pub strategy: Strategy,
}

impl Scenario for CoinTossScenario {
    type Msg = CoinMsg;

    fn name(&self) -> String {
        format!("CoinToss/{}", self.strategy.label())
    }

    fn n(&self) -> usize {
        2
    }

    fn build(&self, rng: &mut StdRng) -> Trial<CoinMsg> {
        Trial {
            instance: coin_toss_instance(rng),
            adversary: self.strategy.build(any_output()),
            truth: Some(Value::Bot),
            max_rounds: 10,
        }
    }
}

/// The strategy sweep against the coin toss (small on purpose: the
/// completion/abort split is visible under any of these).
pub fn coin_toss_sweep() -> Vec<CoinTossScenario> {
    let mut out = vec![
        CoinTossScenario {
            strategy: Strategy::NoCorruption,
        },
        CoinTossScenario {
            strategy: Strategy::LockAbort(CorruptionPlan::Fixed(vec![0])),
        },
        CoinTossScenario {
            strategy: Strategy::Honest(CorruptionPlan::Fixed(vec![0])),
        },
    ];
    for r in 0..3 {
        out.push(CoinTossScenario {
            strategy: Strategy::AbortAtRound(CorruptionPlan::Fixed(vec![0]), r),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Π^Opt_2SFE
// ---------------------------------------------------------------------------

/// A Π^Opt_2SFE scenario on the swap function with random inputs.
pub struct Opt2Scenario {
    /// The attack strategy.
    pub strategy: Strategy,
}

impl Scenario for Opt2Scenario {
    type Msg = Opt2Msg;

    fn name(&self) -> String {
        format!("Opt2SFE/{}", self.strategy.label())
    }

    fn n(&self) -> usize {
        2
    }

    fn build(&self, rng: &mut StdRng) -> Trial<Opt2Msg> {
        // Worst-case environment: random nonzero inputs so that the real
        // output differs from both default evaluations.
        let x1 = rng.random_range(1u64..1 << 30);
        let x2 = rng.random_range(1u64..1 << 30);
        let instance = opt2_instance(
            "swap",
            swap_fn(),
            [Value::Scalar(x1), Value::Scalar(x2)],
            [Value::Scalar(0), Value::Scalar(0)],
        );
        let defaults = vec![
            Value::pair(Value::Scalar(0), Value::Scalar(x1)), // f(x1, d2)
            Value::pair(Value::Scalar(x2), Value::Scalar(0)), // f(d1, x2)
        ];
        Trial {
            instance,
            adversary: self.strategy.build(differs_from_any(defaults)),
            truth: None,
            max_rounds: 40,
        }
    }
}

/// The full strategy sweep against Π^Opt_2SFE.
pub fn opt2_sweep() -> Vec<Opt2Scenario> {
    two_party_sweep()
        .into_iter()
        .map(|strategy| Opt2Scenario { strategy })
        .collect()
}

/// Π^Opt_2SFE with a *biased* designated-party choice (Pr[i* = 1] = q):
/// the designer's deviation in the RPD attack game, used by experiment
/// E15 to show q = 1/2 is the minimax optimum.
pub struct BiasedOpt2Scenario {
    /// Pr[i* = 1].
    pub q: f64,
    /// The attack strategy.
    pub strategy: Strategy,
}

impl Scenario for BiasedOpt2Scenario {
    type Msg = Opt2Msg;

    fn name(&self) -> String {
        format!("Opt2SFE(q={})/{}", self.q, self.strategy.label())
    }

    fn n(&self) -> usize {
        2
    }

    fn build(&self, rng: &mut StdRng) -> Trial<Opt2Msg> {
        let x1 = rng.random_range(1u64..1 << 30);
        let x2 = rng.random_range(1u64..1 << 30);
        let instance = crate::opt2::opt2_instance_biased(
            "swap",
            swap_fn(),
            [Value::Scalar(x1), Value::Scalar(x2)],
            [Value::Scalar(0), Value::Scalar(0)],
            self.q,
        );
        let defaults = vec![
            Value::pair(Value::Scalar(0), Value::Scalar(x1)),
            Value::pair(Value::Scalar(x2), Value::Scalar(0)),
        ];
        Trial {
            instance,
            adversary: self.strategy.build(differs_from_any(defaults)),
            truth: None,
            max_rounds: 40,
        }
    }
}

/// The strategy sweep against the biased protocol (only the lock-abort
/// strategies matter for the minimax question).
pub fn biased_opt2_sweep(q: f64) -> Vec<BiasedOpt2Scenario> {
    vec![
        BiasedOpt2Scenario {
            q,
            strategy: Strategy::LockAbort(CorruptionPlan::Fixed(vec![0])),
        },
        BiasedOpt2Scenario {
            q,
            strategy: Strategy::LockAbort(CorruptionPlan::Fixed(vec![1])),
        },
        BiasedOpt2Scenario {
            q,
            strategy: Strategy::Honest(CorruptionPlan::Fixed(vec![0])),
        },
    ]
}

// ---------------------------------------------------------------------------
// Π^Opt_nSFE
// ---------------------------------------------------------------------------

/// A Π^Opt_nSFE scenario on the concatenation function.
pub struct OptnScenario {
    /// Number of parties.
    pub n: usize,
    /// The attack strategy.
    pub strategy: Strategy,
}

impl Scenario for OptnScenario {
    type Msg = OptnMsg;

    fn name(&self) -> String {
        format!("OptnSFE(n={})/{}", self.n, self.strategy.label())
    }

    fn n(&self) -> usize {
        self.n
    }

    fn build(&self, rng: &mut StdRng) -> Trial<OptnMsg> {
        let inputs: Vec<Value> = (0..self.n)
            .map(|_| Value::Scalar(rng.random_range(0..1 << 30)))
            .collect();
        let instance = optn_instance("concat", concat_fn(), inputs);
        Trial {
            instance,
            adversary: self.strategy.build(any_output()),
            truth: None,
            max_rounds: 40,
        }
    }
}

/// The t-adversary sweep against Π^Opt_nSFE.
pub fn optn_sweep(n: usize, t: usize) -> Vec<OptnScenario> {
    t_adversary_sweep(n, t)
        .into_iter()
        .map(|strategy| OptnScenario { n, strategy })
        .collect()
}

// ---------------------------------------------------------------------------
// The one-reconstruction-round strawman
// ---------------------------------------------------------------------------

/// Strategy selector for the strawman protocol.
#[derive(Clone, Debug)]
pub enum OneRoundStrategy {
    /// The Lemma 10 rushing attack on the given party.
    Rusher(usize),
    /// A generic library strategy.
    Generic(Strategy),
}

/// A strawman-protocol scenario.
pub struct OneRoundScenario {
    /// The attack.
    pub strategy: OneRoundStrategy,
}

impl Scenario for OneRoundScenario {
    type Msg = OneRoundMsg;

    fn name(&self) -> String {
        match &self.strategy {
            OneRoundStrategy::Rusher(t) => format!("OneRound/rusher(p{})", t + 1),
            OneRoundStrategy::Generic(s) => format!("OneRound/{}", s.label()),
        }
    }

    fn n(&self) -> usize {
        2
    }

    fn build(&self, rng: &mut StdRng) -> Trial<OneRoundMsg> {
        let x1 = rng.random_range(1u64..1 << 30);
        let x2 = rng.random_range(1u64..1 << 30);
        let instance =
            one_round_instance("swap", swap_fn(), [Value::Scalar(x1), Value::Scalar(x2)]);
        let adversary: Box<dyn Adversary<OneRoundMsg>> = match &self.strategy {
            OneRoundStrategy::Rusher(t) => Box::new(OneRoundRusher::new(*t)),
            OneRoundStrategy::Generic(s) => s.build(any_output()),
        };
        Trial {
            instance,
            adversary,
            truth: None,
            max_rounds: 40,
        }
    }
}

/// The sweep against the strawman (rushers plus the generic library).
pub fn one_round_sweep() -> Vec<OneRoundScenario> {
    let mut out = vec![
        OneRoundScenario {
            strategy: OneRoundStrategy::Rusher(0),
        },
        OneRoundScenario {
            strategy: OneRoundStrategy::Rusher(1),
        },
    ];
    out.extend(two_party_sweep().into_iter().map(|s| OneRoundScenario {
        strategy: OneRoundStrategy::Generic(s),
    }));
    out
}

// ---------------------------------------------------------------------------
// Π^{1/2}_GMW
// ---------------------------------------------------------------------------

/// Strategy selector for Π^{1/2}_GMW.
#[derive(Clone, Debug)]
pub enum HalfStrategy {
    /// The rushing learn-and-withhold coalition of the given size.
    Coalition(usize),
    /// A generic library strategy.
    Generic(Strategy),
}

/// A Π^{1/2}_GMW scenario on the concatenation function.
pub struct HalfScenario {
    /// Number of parties.
    pub n: usize,
    /// The attack.
    pub strategy: HalfStrategy,
}

impl Scenario for HalfScenario {
    type Msg = HalfMsg;

    fn name(&self) -> String {
        match &self.strategy {
            HalfStrategy::Coalition(t) => format!("GMW-1/2(n={})/coalition({t})", self.n),
            HalfStrategy::Generic(s) => format!("GMW-1/2(n={})/{}", self.n, s.label()),
        }
    }

    fn n(&self) -> usize {
        self.n
    }

    fn build(&self, rng: &mut StdRng) -> Trial<HalfMsg> {
        let inputs: Vec<Value> = (0..self.n)
            .map(|_| Value::Scalar(rng.random_range(0..1 << 30)))
            .collect();
        let instance = gmw_half_instance("concat", concat_fn(), inputs);
        let adversary: Box<dyn Adversary<HalfMsg>> = match &self.strategy {
            HalfStrategy::Coalition(t) => Box::new(HalfCoalition::new((0..*t).collect())),
            HalfStrategy::Generic(s) => s.build(any_output()),
        };
        Trial {
            instance,
            adversary,
            truth: None,
            max_rounds: 40,
        }
    }
}

/// The t-adversary sweep against Π^{1/2}_GMW.
pub fn gmw_half_sweep(n: usize, t: usize) -> Vec<HalfScenario> {
    let mut out = vec![HalfScenario {
        n,
        strategy: HalfStrategy::Coalition(t),
    }];
    out.extend(t_adversary_sweep(n, t).into_iter().map(|s| HalfScenario {
        n,
        strategy: HalfStrategy::Generic(s),
    }));
    out
}

// ---------------------------------------------------------------------------
// The artificial (Lemma 18) protocol
// ---------------------------------------------------------------------------

/// Strategy selector for the Lemma 18 protocol.
#[derive(Clone, Debug)]
pub enum ArtStrategy {
    /// The "vote 1" single-party attack on the given party.
    VoteOne(usize),
    /// A generic library strategy.
    Generic(Strategy),
}

/// An artificial-protocol scenario.
pub struct ArtScenario {
    /// Number of parties.
    pub n: usize,
    /// The attack.
    pub strategy: ArtStrategy,
}

impl Scenario for ArtScenario {
    type Msg = crate::artificial::ArtMsg;

    fn name(&self) -> String {
        match &self.strategy {
            ArtStrategy::VoteOne(t) => format!("Artificial(n={})/vote-one(p{})", self.n, t + 1),
            ArtStrategy::Generic(s) => format!("Artificial(n={})/{}", self.n, s.label()),
        }
    }

    fn n(&self) -> usize {
        self.n
    }

    fn build(&self, rng: &mut StdRng) -> Trial<crate::artificial::ArtMsg> {
        let inputs: Vec<Value> = (0..self.n)
            .map(|_| Value::Scalar(rng.random_range(0..1 << 30)))
            .collect();
        let mut inst_rng = StdRng::seed_from_u64(rng.random());
        let instance =
            crate::artificial::artificial_instance("concat", concat_fn(), inputs, &mut inst_rng);
        let adversary: Box<dyn Adversary<crate::artificial::ArtMsg>> = match &self.strategy {
            ArtStrategy::VoteOne(t) => Box::new(crate::artificial::VoteOneAttack::new(*t)),
            ArtStrategy::Generic(s) => s.build(any_output()),
        };
        Trial {
            instance,
            adversary,
            truth: None,
            max_rounds: 40,
        }
    }
}

/// The t-adversary sweep against the artificial protocol.
pub fn artificial_sweep(n: usize, t: usize) -> Vec<ArtScenario> {
    let mut out: Vec<ArtScenario> = Vec::new();
    if t == 1 {
        out.push(ArtScenario {
            n,
            strategy: ArtStrategy::VoteOne(0),
        });
    }
    out.extend(t_adversary_sweep(n, t).into_iter().map(|s| ArtScenario {
        n,
        strategy: ArtStrategy::Generic(s),
    }));
    out
}

// ---------------------------------------------------------------------------
// Gordon–Katz
// ---------------------------------------------------------------------------

/// A Gordon–Katz scenario computing AND on random bits, classified under
/// the strict (F^$-style) criterion.
pub struct GkScenario {
    /// The configuration (function, p, α, m).
    pub cfg: GkConfig,
    /// The abort rule of the attacking p₁.
    pub rule: AbortRule,
    /// Label for reports.
    pub label: String,
}

impl Scenario for GkScenario {
    type Msg = GkMsg;

    fn name(&self) -> String {
        format!("GK/{}", self.label)
    }

    fn n(&self) -> usize {
        2
    }

    fn criterion(&self) -> HonestCriterion {
        HonestCriterion::EqualsTruth
    }

    fn build(&self, rng: &mut StdRng) -> Trial<GkMsg> {
        let x1 = Value::Scalar(rng.random_range(0..2));
        let x2 = Value::Scalar(rng.random_range(0..2));
        let m = self.cfg.m;
        let instance = gk_instance("gk", self.cfg.clone(), [x1, x2]);
        Trial {
            instance,
            adversary: Box::new(GkAttack::new(self.rule.clone())),
            truth: None,
            max_rounds: 3 * m + 20,
        }
    }
}

/// The abort-rule sweep against a Gordon–Katz instance: fixed rounds,
/// value-guessing and the repetition heuristic.
pub fn gk_sweep(cfg: &GkConfig, rounds: &[usize]) -> Vec<GkScenario> {
    let mut out: Vec<GkScenario> = rounds
        .iter()
        .map(|&r| GkScenario {
            cfg: cfg.clone(),
            rule: AbortRule::AtRound(r),
            label: format!("abort@{r}"),
        })
        .collect();
    for v in [0u64, 1] {
        out.push(GkScenario {
            cfg: cfg.clone(),
            rule: AbortRule::OnValue(Value::Scalar(v)),
            label: format!("on-value({v})"),
        });
    }
    out.push(GkScenario {
        cfg: cfg.clone(),
        rule: AbortRule::OnRepeat,
        label: "on-repeat".into(),
    });
    out.push(GkScenario {
        cfg: cfg.clone(),
        rule: AbortRule::Never,
        label: "honest".into(),
    });
    out
}

// ---------------------------------------------------------------------------
// The ideal benchmark Φ^F_sfe (dummy protocol around fair SFE)
// ---------------------------------------------------------------------------

/// A dummy-protocol scenario around the *fair* SFE functionality
/// (Definition 19's benchmark).
pub struct IdealFairScenario {
    /// Number of parties.
    pub n: usize,
    /// The attack strategy.
    pub strategy: Strategy,
}

impl Scenario for IdealFairScenario {
    type Msg = fair_sfe::ideal::SfeMsg;

    fn name(&self) -> String {
        format!("Ideal(n={})/{}", self.n, self.strategy.label())
    }

    fn n(&self) -> usize {
        self.n
    }

    fn build(&self, rng: &mut StdRng) -> Trial<fair_sfe::ideal::SfeMsg> {
        let inputs: Vec<Value> = (0..self.n)
            .map(|_| Value::Scalar(rng.random_range(0..1 << 30)))
            .collect();
        let instance = Instance {
            parties: inputs
                .iter()
                .map(|x| {
                    Box::new(fair_sfe::dummy::SfeDummyParty::new(x.clone()))
                        as Box<dyn fair_runtime::Party<fair_sfe::ideal::SfeMsg>>
                })
                .collect(),
            funcs: vec![Box::new(fair_sfe::ideal::FairSfe::new(
                fair_sfe::spec::concat_spec(self.n),
            ))],
        };
        Trial {
            instance,
            adversary: self.strategy.build(any_output()),
            truth: None,
            max_rounds: 30,
        }
    }
}

/// The t-adversary sweep against the ideal benchmark.
pub fn ideal_fair_sweep(n: usize, t: usize) -> Vec<IdealFairScenario> {
    t_adversary_sweep(n, t)
        .into_iter()
        .map(|strategy| IdealFairScenario { n, strategy })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_core::{analytic, best_of, Payoff};

    const TRIALS: usize = 300;

    #[test]
    fn pi1_best_attack_reaches_gamma10() {
        let payoff = Payoff::standard();
        let (ests, best) = best_of(&contract_sweep(false), &payoff, TRIALS, 11);
        assert!(
            ests[best].consistent_with(analytic::pi1(&payoff), 0.02),
            "Π1 sup-utility = {} (expected {})",
            ests[best].mean,
            analytic::pi1(&payoff)
        );
    }

    #[test]
    fn pi2_best_attack_is_half_way() {
        let payoff = Payoff::standard();
        let (ests, best) = best_of(&contract_sweep(true), &payoff, TRIALS, 12);
        assert!(
            ests[best].consistent_with(analytic::pi2(&payoff), 0.08),
            "Π2 sup-utility = {} ± {} (expected {})",
            ests[best].mean,
            ests[best].ci,
            analytic::pi2(&payoff)
        );
    }

    #[test]
    fn opt2_best_attack_matches_theorem_3() {
        let payoff = Payoff::standard();
        let (ests, best) = best_of(&opt2_sweep(), &payoff, TRIALS, 13);
        assert!(
            ests[best].consistent_with(analytic::opt2(&payoff), 0.08),
            "Opt2 sup-utility = {} (expected {})",
            ests[best].mean,
            analytic::opt2(&payoff)
        );
    }

    #[test]
    fn one_round_strawman_loses_completely() {
        let payoff = Payoff::standard();
        let (ests, best) = best_of(&one_round_sweep(), &payoff, TRIALS, 14);
        assert!(
            ests[best].consistent_with(payoff.g10, 0.02),
            "strawman sup-utility = {}",
            ests[best].mean
        );
    }

    #[test]
    fn optn_t_adversaries_match_lemma_11() {
        let payoff = Payoff::standard();
        let n = 3;
        for t in 1..n {
            let (ests, best) = best_of(&optn_sweep(n, t), &payoff, TRIALS, 15 + t as u64);
            let expect = analytic::optn_t(&payoff, n, t);
            assert!(
                ests[best].consistent_with(expect, 0.09),
                "n={n} t={t}: {} (expected {expect})",
                ests[best].mean
            );
        }
    }

    #[test]
    fn ideal_benchmark_is_gamma11() {
        let payoff = Payoff::standard();
        let (ests, best) = best_of(&ideal_fair_sweep(3, 2), &payoff, TRIALS, 19);
        assert!(
            ests[best].consistent_with(analytic::ideal_fair_t(&payoff, 3, 2), 0.03),
            "ideal benchmark = {}",
            ests[best].mean
        );
    }
}
