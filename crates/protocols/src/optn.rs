//! Π^Opt_nSFE — the optimally fair multi-party SFE protocol (Section 4.2 /
//! Appendix B).
//!
//! Phase 1 evaluates, through the unfair-SFE hybrid, the private-output
//! functionality F^{f,⊥}_priv-sfe: it computes y = f(x₁, …, xₙ), generates
//! a one-time signature key pair, signs y, picks i\* ∈ \[n\] uniformly, and
//! hands (y, σ) to p_{i*} and ⊥ to everyone else — each together with the
//! verification key. If phase 1 aborts, the whole protocol aborts. In
//! phase 2 every party broadcasts its private output; a validly signed
//! value is adopted by everyone, otherwise all parties abort.
//!
//! The attacker learns y before the honest parties only if it corrupted
//! p_{i*} — probability t/n for a t-adversary — which yields the Lemma 11
//! bound u ≤ (t·γ₁₀ + (n−t)·γ₁₁)/n, tight by Lemma 13 (experiments E5/E6).

use std::sync::Arc;

use fair_crypto::sign::{self, Signature, VerifyingKey};
use fair_runtime::{Adapted, Envelope, FuncId, Instance, OutMsg, Party, RoundCtx, Value};
use fair_sfe::ideal::{SfeMsg, SfeWithAbort};
use fair_sfe::spec::{IdealOutput, IdealSpec};
use rand::RngExt;

/// An n-party function with one global output, at the `Value` level.
pub type NPartyFn = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

/// Rounds a party waits for the phase-1 result before concluding abort.
const PHASE1_DEADLINE: usize = 8;

/// Wire messages of Π^Opt_nSFE.
#[derive(Clone, Debug)]
pub enum OptnMsg {
    /// Traffic to/from the phase-1 functionality.
    Sfe(SfeMsg),
    /// Phase 2: broadcast of a party's private phase-1 output
    /// (⊥, or the signed output pair).
    Announce(Value),
}

fn down(m: &OptnMsg) -> Option<SfeMsg> {
    match m {
        OptnMsg::Sfe(s) => Some(s.clone()),
        OptnMsg::Announce(_) => None,
    }
}

/// The F^{f,⊥}_priv-sfe specification (Appendix B): one uniformly chosen
/// party privately receives the signed output; everyone receives the
/// verification key. Records facts `y` and `i_star` (1-based).
pub fn priv_spec(name: &str, n: usize, f: NPartyFn) -> IdealSpec {
    IdealSpec::new(name, n, move |inputs, rng| {
        let y = f(inputs);
        let (sk, vk) = sign::keygen(rng);
        let sig = sign::sign(&sk, &y.encode());
        let i_star = rng.random_range(0..inputs.len());
        let vk_bytes = Value::Bytes(vk.to_bytes());
        let per_party = (0..inputs.len())
            .map(|j| {
                let mine = if j == i_star {
                    Value::pair(y.clone(), Value::Bytes(sig.to_bytes()))
                } else {
                    Value::Bot
                };
                Value::pair(mine, vk_bytes.clone())
            })
            .collect();
        IdealOutput {
            facts: vec![
                ("y".to_string(), y.clone()),
                ("i_star".to_string(), Value::Scalar(i_star as u64 + 1)),
            ],
            per_party,
        }
    })
}

#[derive(Clone, Debug)]
enum Phase {
    AwaitShareGen,
    /// Announced; deciding once all n announces landed (or at the
    /// deadline, whichever comes first).
    AwaitAnnounces {
        deadline: usize,
    },
}

/// A party of Π^Opt_nSFE.
#[derive(Clone, Debug)]
pub struct OptnParty {
    input: Value,
    vk: Option<VerifyingKey>,
    mine: Option<Value>,
    announces: Vec<Value>,
    phase: Phase,
    out: Option<Value>,
}

impl OptnParty {
    /// Creates a party with its input.
    pub fn new(input: Value) -> OptnParty {
        OptnParty {
            input,
            vk: None,
            mine: None,
            announces: Vec::new(),
            phase: Phase::AwaitShareGen,
            out: None,
        }
    }

    /// Checks a broadcast value: a pair (y, σ) with σ valid on y under the
    /// phase-1 verification key.
    fn validate(&self, v: &Value) -> Option<Value> {
        let vk = self.vk.as_ref()?;
        if let Value::Pair(y, sig) = v {
            let sig = Signature::from_bytes(sig.as_bytes()?)?;
            if sign::verify(vk, &y.encode(), &sig) {
                return Some((**y).clone());
            }
        }
        None
    }

    fn decide(&mut self) {
        // Our own private output counts first (we hold it, signed).
        if let Some(mine) = &self.mine {
            if let Some(y) = self.validate(&mine.clone()) {
                self.out = Some(y);
                return;
            }
        }
        for a in &self.announces.clone() {
            if let Some(y) = self.validate(a) {
                self.out = Some(y);
                return;
            }
        }
        self.out = Some(Value::Bot);
    }
}

impl Party<OptnMsg> for OptnParty {
    fn round(&mut self, ctx: &RoundCtx, inbox: &[Envelope<OptnMsg>]) -> Vec<OutMsg<OptnMsg>> {
        if self.out.is_some() {
            return Vec::new();
        }
        let mut sfe: Option<SfeMsg> = None;
        for e in inbox {
            match &e.msg {
                OptnMsg::Sfe(m) if matches!(e.from, fair_runtime::Endpoint::Func(_)) => {
                    sfe = Some(m.clone());
                }
                OptnMsg::Announce(v) => self.announces.push(v.clone()),
                _ => {}
            }
        }
        match &self.phase {
            Phase::AwaitShareGen => {
                if ctx.round == 0 {
                    return vec![OutMsg::to_func(
                        FuncId(0),
                        OptnMsg::Sfe(SfeMsg::Input(self.input.clone())),
                    )];
                }
                match sfe {
                    Some(SfeMsg::Output(v)) => {
                        // Parse (mine, vk).
                        let parsed = match &v {
                            Value::Pair(mine, vkb) => vkb
                                .as_bytes()
                                .and_then(VerifyingKey::from_bytes)
                                .map(|vk| ((**mine).clone(), vk)),
                            _ => None,
                        };
                        let Some((mine, vk)) = parsed else {
                            self.out = Some(Value::Bot);
                            return Vec::new();
                        };
                        self.vk = Some(vk);
                        self.mine = Some(mine.clone());
                        self.phase = Phase::AwaitAnnounces {
                            deadline: ctx.round + 2,
                        };
                        vec![OutMsg::broadcast(OptnMsg::Announce(mine))]
                    }
                    Some(SfeMsg::Abort) => {
                        self.out = Some(Value::Bot);
                        Vec::new()
                    }
                    _ => {
                        if ctx.round >= PHASE1_DEADLINE {
                            self.out = Some(Value::Bot);
                        }
                        Vec::new()
                    }
                }
            }
            Phase::AwaitAnnounces { deadline } => {
                if self.announces.len() >= ctx.n || ctx.round >= *deadline {
                    self.decide();
                }
                Vec::new()
            }
        }
    }

    fn output(&self) -> Option<Value> {
        self.out.clone()
    }

    fn clone_box(&self) -> Box<dyn Party<OptnMsg>> {
        Box::new(self.clone())
    }
}

/// Builds a Π^Opt_nSFE instance for `f` with the given inputs.
pub fn optn_instance(name: &str, f: NPartyFn, inputs: Vec<Value>) -> Instance<OptnMsg> {
    let n = inputs.len();
    let spec = priv_spec(name, n, f);
    let func = Adapted::new(SfeWithAbort::new(spec), down, OptnMsg::Sfe);
    Instance {
        parties: inputs
            .into_iter()
            .map(|x| Box::new(OptnParty::new(x)) as Box<dyn Party<OptnMsg>>)
            .collect(),
        funcs: vec![Box::new(func)],
    }
}

/// The concatenation function of Lemmas 12/13 as an [`NPartyFn`].
pub fn concat_fn() -> NPartyFn {
    Arc::new(|inputs: &[Value]| Value::Tuple(inputs.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_core::strategy::{any_output, CorruptionPlan, LockAndAbort};
    use fair_runtime::{execute, PartyId, Passive};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(n: usize) -> Instance<OptnMsg> {
        let inputs = (0..n).map(|i| Value::Scalar(100 + i as u64)).collect();
        optn_instance("concat", concat_fn(), inputs)
    }

    fn truth(n: usize) -> Value {
        Value::Tuple((0..n).map(|i| Value::Scalar(100 + i as u64)).collect())
    }

    #[test]
    fn honest_run_delivers_to_all() {
        for n in [3, 4, 5] {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let res = execute(instance(n), &mut Passive, &mut rng, 30).expect("execution succeeds");
            assert!(
                res.all_honest_output(&truth(n)),
                "n = {n}: {:?}",
                res.outputs
            );
        }
    }

    #[test]
    fn lock_and_abort_wins_exactly_when_coalition_holds_i_star() {
        let n = 4;
        let t = 2;
        let mut e10 = 0;
        let mut e11 = 0;
        let trials = 60;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(3000 + seed);
            let mut adv = LockAndAbort::new(CorruptionPlan::Fixed((0..t).collect()), any_output());
            let res = execute(instance(n), &mut adv, &mut rng, 30).expect("execution succeeds");
            let i_star = res
                .ledger
                .get("i_star")
                .and_then(|v| v.as_scalar())
                .expect("i_star recorded") as usize;
            let coalition_has_star = i_star <= t;
            if res.learned == Some(truth(n)) && res.outputs.values().all(|v| v.is_bot()) {
                assert!(coalition_has_star, "E10 requires the coalition to hold i*");
                e10 += 1;
            } else {
                assert!(
                    res.outputs.values().all(|v| *v == truth(n)),
                    "honest parties finish when i* is honest: {:?}",
                    res.outputs
                );
                e11 += 1;
            }
        }
        assert!(e10 > 0 && e11 > 0, "both branches exercised: {e10}/{e11}");
        // t/n = 1/2: neither branch should dominate wildly.
        assert!((15..=45).contains(&e10), "E10 count {e10} of {trials}");
    }

    #[test]
    fn silent_adversary_aborts_everyone() {
        struct Silent;
        impl fair_runtime::Adversary<OptnMsg> for Silent {
            fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
                vec![PartyId(0)]
            }
            fn on_round(
                &mut self,
                _v: &fair_runtime::RoundView<'_, OptnMsg>,
                _c: &mut fair_runtime::AdvControl<'_, OptnMsg>,
                _r: &mut StdRng,
            ) {
            }
        }
        let mut rng = StdRng::seed_from_u64(7);
        let res = execute(instance(3), &mut Silent, &mut rng, 40).expect("execution succeeds");
        assert!(res.outputs.values().all(|v| v.is_bot()));
    }

    #[test]
    fn forged_announce_is_rejected() {
        /// Runs honestly, except it also broadcasts a forged output.
        struct Forge;
        impl fair_runtime::Adversary<OptnMsg> for Forge {
            fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
                vec![PartyId(0)]
            }
            fn on_round(
                &mut self,
                view: &fair_runtime::RoundView<'_, OptnMsg>,
                ctrl: &mut fair_runtime::AdvControl<'_, OptnMsg>,
                _r: &mut StdRng,
            ) {
                ctrl.run_honestly(PartyId(0));
                if view.round == 2 {
                    let fake = Value::pair(Value::Scalar(666), Value::Bytes(vec![0u8; 256 * 32]));
                    ctrl.send_as(PartyId(0), OutMsg::broadcast(OptnMsg::Announce(fake)));
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(9);
        let res = execute(instance(3), &mut Forge, &mut rng, 40).expect("execution succeeds");
        for v in res.outputs.values() {
            assert_ne!(v, &Value::Scalar(666), "forged output must not be adopted");
        }
    }
}
