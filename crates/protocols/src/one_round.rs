//! The single-reconstruction-round strawman of Lemma 10.
//!
//! Phase 1 deals a *plain* (unauthenticated-order) 2-of-2 additive sharing
//! of the output; phase 2 exchanges the two summands in a single
//! simultaneous round. A rushing adversary reads the honest party's
//! summand before releasing its own and simply withholds it: it always
//! learns y while the honest party gets ⊥ — payoff γ₁₀ with certainty.
//! Lemma 10 concludes that no optimally fair protocol for f_swp can have
//! one reconstruction round; experiment E4 measures exactly this protocol
//! against Π^Opt_2SFE.

use std::sync::Arc;

use fair_crypto::mac::{pack_bytes, unpack_bytes};
use fair_crypto::share::{additive_reconstruct_vec, additive_share_vec};
use fair_field::Fp;
use fair_runtime::{Adapted, Envelope, FuncId, Instance, OutMsg, Party, PartyId, RoundCtx, Value};
use fair_sfe::ideal::{SfeMsg, SfeWithAbort};
use fair_sfe::spec::{IdealOutput, IdealSpec};

use crate::opt2::TwoPartyFn;

/// Rounds a party waits for the phase-1 result before concluding abort.
const PHASE1_DEADLINE: usize = 8;

/// Wire messages.
#[derive(Clone, Debug)]
pub enum OneRoundMsg {
    /// Traffic to/from the phase-1 functionality.
    Sfe(SfeMsg),
    /// Phase 2: this party's summand (field elements as u64s).
    Summand(Vec<u64>),
}

fn down(m: &OneRoundMsg) -> Option<SfeMsg> {
    match m {
        OneRoundMsg::Sfe(s) => Some(s.clone()),
        OneRoundMsg::Summand(_) => None,
    }
}

/// Phase-1 spec: a plain additive sharing of the packed output.
pub fn one_round_spec(name: &str, f: TwoPartyFn) -> IdealSpec {
    IdealSpec::new(name, 2, move |inputs, rng| {
        let y = f(&inputs[0], &inputs[1]);
        let packed = pack_bytes(&y.encode());
        let shares = additive_share_vec(&packed, 2, rng);
        IdealOutput {
            facts: vec![("y".to_string(), y.clone())],
            per_party: shares
                .iter()
                .map(|s| Value::Tuple(s.iter().map(|x| Value::Scalar(x.value())).collect()))
                .collect(),
        }
    })
}

#[derive(Clone, Debug)]
enum Phase {
    AwaitShareGen,
    AwaitSummand { deadline: usize },
}

/// A party of the strawman protocol.
#[derive(Clone, Debug)]
pub struct OneRoundParty {
    input: Value,
    my_summand: Option<Vec<Fp>>,
    their_summand: Option<Vec<Fp>>,
    phase: Phase,
    out: Option<Value>,
}

impl OneRoundParty {
    /// Creates a party with its input.
    pub fn new(input: Value) -> OneRoundParty {
        OneRoundParty {
            input,
            my_summand: None,
            their_summand: None,
            phase: Phase::AwaitShareGen,
            out: None,
        }
    }

    fn try_finish(&mut self) {
        if let (Some(mine), Some(theirs)) = (&self.my_summand, &self.their_summand) {
            if mine.len() == theirs.len() {
                let packed = additive_reconstruct_vec(&[mine.clone(), theirs.clone()]);
                self.out = Some(
                    unpack_bytes(&packed)
                        .and_then(|b| Value::decode(&b))
                        .unwrap_or(Value::Bot),
                );
            } else {
                self.out = Some(Value::Bot);
            }
        }
    }
}

impl Party<OneRoundMsg> for OneRoundParty {
    fn round(
        &mut self,
        ctx: &RoundCtx,
        inbox: &[Envelope<OneRoundMsg>],
    ) -> Vec<OutMsg<OneRoundMsg>> {
        if self.out.is_some() {
            return Vec::new();
        }
        let mut sfe: Option<SfeMsg> = None;
        for e in inbox {
            match &e.msg {
                OneRoundMsg::Sfe(m) if matches!(e.from, fair_runtime::Endpoint::Func(_)) => {
                    sfe = Some(m.clone());
                }
                OneRoundMsg::Summand(v)
                    if e.from_party() == Some(PartyId(1 - ctx.id.0))
                        && self.their_summand.is_none() =>
                {
                    self.their_summand = Some(v.iter().map(|&x| Fp::new(x)).collect());
                }
                _ => {}
            }
        }
        match &self.phase {
            Phase::AwaitShareGen => {
                if ctx.round == 0 {
                    return vec![OutMsg::to_func(
                        FuncId(0),
                        OneRoundMsg::Sfe(SfeMsg::Input(self.input.clone())),
                    )];
                }
                match sfe {
                    Some(SfeMsg::Output(Value::Tuple(vals))) => {
                        let mine: Option<Vec<Fp>> =
                            vals.iter().map(|v| v.as_scalar().map(Fp::new)).collect();
                        let Some(mine) = mine else {
                            self.out = Some(Value::Bot);
                            return Vec::new();
                        };
                        let msg = OneRoundMsg::Summand(mine.iter().map(|x| x.value()).collect());
                        self.my_summand = Some(mine);
                        self.phase = Phase::AwaitSummand {
                            deadline: ctx.round + 2,
                        };
                        // The single reconstruction round: both summands
                        // cross simultaneously.
                        vec![OutMsg::to_party(PartyId(1 - ctx.id.0), msg)]
                    }
                    Some(SfeMsg::Abort) => {
                        self.out = Some(Value::Bot);
                        Vec::new()
                    }
                    _ => {
                        if ctx.round >= PHASE1_DEADLINE {
                            self.out = Some(Value::Bot);
                        }
                        Vec::new()
                    }
                }
            }
            Phase::AwaitSummand { deadline } => {
                let deadline = *deadline;
                self.try_finish();
                if self.out.is_none() && ctx.round >= deadline {
                    self.out = Some(Value::Bot);
                }
                Vec::new()
            }
        }
    }

    fn output(&self) -> Option<Value> {
        self.out.clone()
    }

    fn clone_box(&self) -> Box<dyn Party<OneRoundMsg>> {
        Box::new(self.clone())
    }
}

/// Builds an instance of the strawman protocol.
pub fn one_round_instance(name: &str, f: TwoPartyFn, inputs: [Value; 2]) -> Instance<OneRoundMsg> {
    let spec = one_round_spec(name, Arc::clone(&f));
    let func = Adapted::new(SfeWithAbort::new(spec), down, OneRoundMsg::Sfe);
    let [x1, x2] = inputs;
    Instance {
        parties: vec![
            Box::new(OneRoundParty::new(x1)),
            Box::new(OneRoundParty::new(x2)),
        ],
        funcs: vec![Box::new(func)],
    }
}

/// Lemma 10's attack: receive the phase-1 summand, *never* send anything
/// in the reconstruction round, and read the honest party's summand by
/// rushing — the adversary always learns y while the honest party aborts.
pub struct OneRoundRusher {
    target: PartyId,
    mine: Option<Vec<Fp>>,
    learned: Option<Value>,
    submitted: bool,
}

impl OneRoundRusher {
    /// Attacks with corrupted party `target` (0-based).
    pub fn new(target: usize) -> OneRoundRusher {
        OneRoundRusher {
            target: PartyId(target),
            mine: None,
            learned: None,
            submitted: false,
        }
    }
}

impl fair_runtime::Adversary<OneRoundMsg> for OneRoundRusher {
    fn initial_corruptions(&mut self, n: usize, _rng: &mut rand::rngs::StdRng) -> Vec<PartyId> {
        assert!(self.target.0 < n);
        vec![self.target]
    }

    fn on_round(
        &mut self,
        view: &fair_runtime::RoundView<'_, OneRoundMsg>,
        ctrl: &mut fair_runtime::AdvControl<'_, OneRoundMsg>,
        _rng: &mut rand::rngs::StdRng,
    ) {
        if !self.submitted {
            self.submitted = true;
            ctrl.send_as(
                self.target,
                OutMsg::to_func(
                    FuncId(0),
                    OneRoundMsg::Sfe(SfeMsg::Input(Value::Scalar(5 + self.target.0 as u64))),
                ),
            );
        }
        for e in view.delivered {
            if let OneRoundMsg::Sfe(SfeMsg::Output(Value::Tuple(vals))) = &e.msg {
                self.mine = vals.iter().map(|v| v.as_scalar().map(Fp::new)).collect();
            }
        }
        for e in view.rushing {
            if let OneRoundMsg::Summand(v) = &e.msg {
                let Some(mine) = self.mine.clone() else {
                    continue;
                };
                let theirs: Vec<Fp> = v.iter().map(|&x| Fp::new(x)).collect();
                if mine.len() == theirs.len() {
                    let packed = additive_reconstruct_vec(&[mine, theirs]);
                    self.learned = unpack_bytes(&packed).and_then(|b| Value::decode(&b));
                }
            }
        }
        // Never send the reconstruction summand.
    }

    fn learned(&self) -> Option<Value> {
        self.learned.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt2::swap_fn;
    use fair_core::strategy::{any_output, CorruptionPlan, LockAndAbort};
    use fair_runtime::{execute, Passive};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance() -> Instance<OneRoundMsg> {
        one_round_instance("swap", swap_fn(), [Value::Scalar(5), Value::Scalar(6)])
    }

    fn y() -> Value {
        Value::pair(Value::Scalar(6), Value::Scalar(5))
    }

    #[test]
    fn honest_run_completes() {
        let mut rng = StdRng::seed_from_u64(0);
        let res = execute(instance(), &mut Passive, &mut rng, 30).expect("execution succeeds");
        assert!(res.all_honest_output(&y()));
    }

    #[test]
    fn rushing_withholder_always_wins() {
        // Unlike Π^Opt_2SFE, the strawman loses to the rushing adversary in
        // *every* execution, whichever party is corrupted.
        for target in 0..2usize {
            for seed in 0..10u64 {
                let mut rng = StdRng::seed_from_u64(700 + seed);
                let mut adv = OneRoundRusher::new(target);
                let xs = [Value::Scalar(5), Value::Scalar(6)];
                let inst = one_round_instance("swap", swap_fn(), xs);
                let res = execute(inst, &mut adv, &mut rng, 30).expect("execution succeeds");
                let expect = res.ledger.get("y").cloned().expect("y recorded");
                assert_eq!(
                    res.learned,
                    Some(expect),
                    "adversary always learns (p{target})"
                );
                let honest = PartyId(1 - target);
                assert_eq!(res.outputs[&honest], Value::Bot, "honest party denied");
            }
        }
    }

    #[test]
    fn generic_lock_and_abort_cannot_do_better_than_e11_here() {
        // Sanity: the generic strategy that behaves honestly until locked
        // has already released its summand, so honest parties finish.
        let mut rng = StdRng::seed_from_u64(800);
        let mut adv = LockAndAbort::new(CorruptionPlan::Fixed(vec![0]), any_output());
        let res = execute(instance(), &mut adv, &mut rng, 30).expect("execution succeeds");
        assert_eq!(res.outputs[&PartyId(1)], y());
    }
}
