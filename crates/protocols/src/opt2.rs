//! Π^Opt_2SFE — the optimally fair two-party SFE protocol (Section 4.1).
//!
//! Phase 1 evaluates, through the unfair-SFE hybrid [`SfeWithAbort`], the
//! function f′ that outputs an authenticated 2-of-2 sharing of y = f(x₁,x₂)
//! together with a uniformly random index i* ∈ {1, 2}. If phase 1 aborts,
//! the honest party evaluates f locally on a default input for the
//! counterparty. Phase 2 reconstructs the sharing in two rounds: first
//! towards p_{i*}, then towards the other party.
//!
//! The fairness profile proved in Theorems 3/4 and reproduced by
//! experiments E2–E4:
//!
//! * a corrupted p_{i*} can learn y and abort (event E₁₀), but i* is hidden
//!   until the reconstruction and uniform, so this happens with probability
//!   exactly 1/2;
//! * in the other half of the executions the adversary's best move is to
//!   finish (E₁₁);
//! * the best attacker utility is therefore (γ₁₀ + γ₁₁)/2 — which Theorem 4
//!   shows is optimal for generic functions (f_swp).
//!
//! [`SfeWithAbort`]: fair_sfe::ideal::SfeWithAbort

use std::sync::Arc;

use fair_crypto::authshare::{self, AuthShare, AuthShareHolding};
use fair_crypto::mac::{pack_bytes, unpack_bytes};
use fair_runtime::{Adapted, Envelope, FuncId, Instance, OutMsg, Party, PartyId, RoundCtx, Value};
use fair_sfe::ideal::{SfeMsg, SfeWithAbort};
use fair_sfe::spec::{IdealOutput, IdealSpec};
use rand::RngExt;

/// A two-party function at the `Value` level.
pub type TwoPartyFn = Arc<dyn Fn(&Value, &Value) -> Value + Send + Sync>;

/// Rounds a party waits for the phase-1 result before concluding that the
/// evaluation aborted.
const PHASE1_DEADLINE: usize = 8;

/// Wire messages of Π^Opt_2SFE: hybrid traffic plus the reconstruction
/// share.
#[derive(Clone, Debug)]
pub enum Opt2Msg {
    /// Traffic to/from the phase-1 functionality.
    Sfe(SfeMsg),
    /// Phase 2: the counterparty's authenticated share.
    Share(AuthShare),
}

fn down(m: &Opt2Msg) -> Option<SfeMsg> {
    match m {
        Opt2Msg::Sfe(s) => Some(s.clone()),
        Opt2Msg::Share(_) => None,
    }
}

/// The f′ specification: computes y = f(x₁, x₂), deals an authenticated
/// sharing of (the packed encoding of) y, picks i* ∈ {1, 2} uniformly, and
/// outputs `(holding_i, i*)` to each party. Records facts `y` and `i_star`.
pub fn f_prime_spec(name: &str, f: TwoPartyFn) -> IdealSpec {
    f_prime_spec_biased(name, f, 0.5)
}

/// Like [`f_prime_spec`] but with Pr[i* = 1] = `q` — the designer's move
/// in the RPD attack game. The paper's protocol uses q = 1/2; the E15
/// experiment sweeps q and confirms the uniform choice is the minimax
/// optimum (any bias hands the attacker max(q, 1−q)·γ₁₀ + …).
///
/// # Panics
///
/// Panics unless `0.0 <= q <= 1.0`.
pub fn f_prime_spec_biased(name: &str, f: TwoPartyFn, q: f64) -> IdealSpec {
    assert!((0.0..=1.0).contains(&q), "probability in [0, 1]");
    IdealSpec::new(name, 2, move |inputs, rng| {
        let y = f(&inputs[0], &inputs[1]);
        let packed = pack_bytes(&y.encode());
        let (h1, h2) = authshare::deal(&packed, rng);
        let i_star = if rng.random_bool(q) { 1u64 } else { 2u64 };
        let out =
            |h: &AuthShareHolding| Value::pair(Value::Bytes(h.to_bytes()), Value::Scalar(i_star));
        IdealOutput {
            facts: vec![
                ("y".to_string(), y.clone()),
                ("i_star".to_string(), Value::Scalar(i_star)),
            ],
            per_party: vec![out(&h1), out(&h2)],
        }
    })
}

#[derive(Clone, Debug)]
#[allow(clippy::enum_variant_names)] // the Await* names mirror the paper's phase labels
enum Phase {
    /// Waiting for the phase-1 output (since the given round).
    AwaitShareGen,
    /// We are p_{i*}: waiting for the counterparty's share.
    AwaitFirstReconstruction { deadline: usize },
    /// We are p_{¬i*}, our share is sent: waiting for the response.
    AwaitSecondReconstruction { deadline: usize },
}

/// A party of Π^Opt_2SFE.
pub struct Opt2Party {
    me: usize, // 1-based
    input: Value,
    f: TwoPartyFn,
    default_other: Value,
    holding: Option<AuthShareHolding>,
    pending_share: Option<AuthShare>,
    phase: Phase,
    out: Option<Value>,
}

impl core::fmt::Debug for Opt2Party {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Opt2Party")
            .field("me", &self.me)
            .field("phase", &self.phase)
            .field("out", &self.out)
            .finish()
    }
}

impl Clone for Opt2Party {
    fn clone(&self) -> Self {
        Opt2Party {
            me: self.me,
            input: self.input.clone(),
            f: Arc::clone(&self.f),
            default_other: self.default_other.clone(),
            holding: self.holding.clone(),
            pending_share: self.pending_share.clone(),
            phase: self.phase.clone(),
            out: self.out.clone(),
        }
    }
}

impl Opt2Party {
    /// Creates party `me` (1-based) with its input, the function f, and the
    /// default input assumed for the counterparty after an abort.
    pub fn new(me: usize, input: Value, f: TwoPartyFn, default_other: Value) -> Opt2Party {
        assert!(me == 1 || me == 2, "two-party protocol");
        Opt2Party {
            me,
            input,
            f,
            default_other,
            holding: None,
            pending_share: None,
            phase: Phase::AwaitShareGen,
            out: None,
        }
    }

    fn other(&self) -> PartyId {
        PartyId(2 - self.me)
    }

    /// The default evaluation used when the counterparty aborted before
    /// any output information was released.
    fn default_eval(&self) -> Value {
        if self.me == 1 {
            (self.f)(&self.input, &self.default_other)
        } else {
            (self.f)(&self.default_other, &self.input)
        }
    }

    fn my_share_msg(&self) -> OutMsg<Opt2Msg> {
        let share = self
            .holding
            .as_ref()
            .expect("holding present")
            .share
            .clone();
        OutMsg::to_party(self.other(), Opt2Msg::Share(share))
    }

    /// Attempts reconstruction from an incoming share.
    fn reconstruct(&self, incoming: &AuthShare) -> Option<Value> {
        let holding = self.holding.as_ref()?;
        let packed = authshare::reconstruct(self.me, holding, incoming).ok()?;
        let bytes = unpack_bytes(&packed)?;
        Value::decode(&bytes)
    }
}

impl Party<Opt2Msg> for Opt2Party {
    fn round(&mut self, ctx: &RoundCtx, inbox: &[Envelope<Opt2Msg>]) -> Vec<OutMsg<Opt2Msg>> {
        if self.out.is_some() {
            return Vec::new();
        }
        // Absorb messages.
        let mut sfe: Option<SfeMsg> = None;
        for e in inbox {
            match &e.msg {
                Opt2Msg::Sfe(m) if matches!(e.from, fair_runtime::Endpoint::Func(_)) => {
                    sfe = Some(m.clone());
                }
                Opt2Msg::Share(s)
                    if e.from_party() == Some(self.other()) && self.pending_share.is_none() =>
                {
                    self.pending_share = Some(s.clone());
                }
                _ => {}
            }
        }

        let mut msgs = self.dispatch(ctx, &sfe);
        // A phase-1 output and the counterparty's share can arrive in the
        // same round; give the new phase one chance to consume the share.
        if self.out.is_none() && self.pending_share.is_some() {
            msgs.extend(self.dispatch(ctx, &None));
        }
        msgs
    }

    fn output(&self) -> Option<Value> {
        self.out.clone()
    }

    fn clone_box(&self) -> Box<dyn Party<Opt2Msg>> {
        Box::new(self.clone())
    }
}

impl Opt2Party {
    fn dispatch(&mut self, ctx: &RoundCtx, sfe: &Option<SfeMsg>) -> Vec<OutMsg<Opt2Msg>> {
        match &self.phase {
            Phase::AwaitShareGen => {
                if ctx.round == 0 {
                    return vec![OutMsg::to_func(
                        FuncId(0),
                        Opt2Msg::Sfe(SfeMsg::Input(self.input.clone())),
                    )];
                }
                match sfe {
                    Some(SfeMsg::Output(v)) => {
                        // Parse (holding, i*).
                        let parsed = match &v {
                            Value::Pair(h, istar) => match (&**h, &**istar) {
                                (Value::Bytes(hb), Value::Scalar(i)) => {
                                    AuthShareHolding::from_bytes(hb).map(|h| (h, *i))
                                }
                                _ => None,
                            },
                            _ => None,
                        };
                        let Some((holding, i_star)) = parsed else {
                            // Malformed functionality output: treat as abort.
                            self.out = Some(self.default_eval());
                            return Vec::new();
                        };
                        self.holding = Some(holding);
                        if i_star == self.me as u64 {
                            // Reconstruction comes to us first.
                            self.phase = Phase::AwaitFirstReconstruction {
                                deadline: ctx.round + 3,
                            };
                            Vec::new()
                        } else {
                            // We send our share first, then await theirs.
                            self.phase = Phase::AwaitSecondReconstruction {
                                deadline: ctx.round + 3,
                            };
                            vec![self.my_share_msg()]
                        }
                    }
                    Some(SfeMsg::Abort) => {
                        self.out = Some(self.default_eval());
                        Vec::new()
                    }
                    _ => {
                        if ctx.round >= PHASE1_DEADLINE {
                            // The functionality never answered (possible
                            // only in forked lookaheads): treat as abort.
                            self.out = Some(self.default_eval());
                        }
                        Vec::new()
                    }
                }
            }
            Phase::AwaitFirstReconstruction { deadline } => {
                if let Some(s) = self.pending_share.take() {
                    let s = &s;
                    if let Some(y) = self.reconstruct(s) {
                        // Got the output; now reconstruct towards them.
                        self.out = Some(y);
                        return vec![self.my_share_msg()];
                    }
                    // Invalid share = the counterparty aborted before we
                    // learned anything: default evaluation.
                    self.out = Some(self.default_eval());
                    return Vec::new();
                }
                if ctx.round >= *deadline {
                    self.out = Some(self.default_eval());
                }
                Vec::new()
            }
            Phase::AwaitSecondReconstruction { deadline } => {
                if let Some(s) = self.pending_share.take() {
                    let s = &s;
                    if let Some(y) = self.reconstruct(s) {
                        self.out = Some(y);
                        return Vec::new();
                    }
                    // Invalid response after we already released our share:
                    // the adversary may know y, we must output ⊥.
                    self.out = Some(Value::Bot);
                    return Vec::new();
                }
                if ctx.round >= *deadline {
                    self.out = Some(Value::Bot);
                }
                Vec::new()
            }
        }
    }
}

/// Builds a Π^Opt_2SFE instance for function `f` with the given inputs and
/// per-party default inputs.
pub fn opt2_instance(
    name: &str,
    f: TwoPartyFn,
    inputs: [Value; 2],
    defaults: [Value; 2],
) -> Instance<Opt2Msg> {
    opt2_instance_biased(name, f, inputs, defaults, 0.5)
}

/// [`opt2_instance`] with a biased designated-party choice (see
/// [`f_prime_spec_biased`]).
pub fn opt2_instance_biased(
    name: &str,
    f: TwoPartyFn,
    inputs: [Value; 2],
    defaults: [Value; 2],
    q: f64,
) -> Instance<Opt2Msg> {
    let spec = f_prime_spec_biased(name, Arc::clone(&f), q);
    let func = Adapted::new(SfeWithAbort::new(spec), down, Opt2Msg::Sfe);
    let [x1, x2] = inputs;
    let [d1, d2] = defaults;
    Instance {
        parties: vec![
            Box::new(Opt2Party::new(1, x1, Arc::clone(&f), d2)),
            Box::new(Opt2Party::new(2, x2, f, d1)),
        ],
        funcs: vec![Box::new(func)],
    }
}

/// The swap function as a [`TwoPartyFn`] (global output (x₂, x₁)).
pub fn swap_fn() -> TwoPartyFn {
    Arc::new(|x1: &Value, x2: &Value| Value::pair(x2.clone(), x1.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_core::strategy::{differs_from, CorruptionPlan, LockAndAbort};
    use fair_runtime::{execute, Passive};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(x1: u64, x2: u64) -> Instance<Opt2Msg> {
        opt2_instance(
            "swap",
            swap_fn(),
            [Value::Scalar(x1), Value::Scalar(x2)],
            [Value::Scalar(0), Value::Scalar(0)],
        )
    }

    #[test]
    fn honest_run_delivers_swap_to_both() {
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            let res =
                execute(instance(11, 22), &mut Passive, &mut rng, 30).expect("execution succeeds");
            let y = Value::pair(Value::Scalar(22), Value::Scalar(11));
            assert!(res.all_honest_output(&y), "seed {seed}: {:?}", res.outputs);
            assert_eq!(res.ledger.get("y"), Some(&y));
            let i_star = res
                .ledger
                .get("i_star")
                .and_then(|v| v.as_scalar())
                .unwrap();
            assert!(i_star == 1 || i_star == 2);
        }
    }

    #[test]
    fn i_star_is_roughly_uniform() {
        let mut ones = 0;
        for seed in 0..60 {
            let mut rng = StdRng::seed_from_u64(seed);
            let res =
                execute(instance(1, 2), &mut Passive, &mut rng, 30).expect("execution succeeds");
            if res.ledger.get("i_star") == Some(&Value::Scalar(1)) {
                ones += 1;
            }
        }
        assert!((15..=45).contains(&ones), "i* = 1 in {ones}/60 runs");
    }

    #[test]
    fn lock_and_abort_wins_exactly_when_it_holds_i_star() {
        // Corrupt p1 and run the A₁ strategy: it must get E10 iff i* = 1.
        let mut e10 = 0;
        let mut e11 = 0;
        let trials = 40;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            // Default-input evaluation for corrupted p1: f(x1, d2) = (0, x1).
            let default = Value::pair(Value::Scalar(0), Value::Scalar(11));
            let mut adv = LockAndAbort::new(CorruptionPlan::Fixed(vec![0]), differs_from(default));
            let res =
                execute(instance(11, 22), &mut adv, &mut rng, 30).expect("execution succeeds");
            let y = Value::pair(Value::Scalar(22), Value::Scalar(11));
            let i_star = res.ledger.get("i_star").cloned();
            if res.learned == Some(y.clone()) && res.outputs[&PartyId(1)] == Value::Bot {
                assert_eq!(i_star, Some(Value::Scalar(1)), "E10 only when i*=1");
                e10 += 1;
            } else {
                assert_eq!(res.outputs[&PartyId(1)], y, "honest party finished");
                e11 += 1;
            }
        }
        assert!(e10 > 0 && e11 > 0, "both branches exercised: {e10}/{e11}");
        assert_eq!(e10 + e11, trials);
    }

    #[test]
    fn silent_adversary_triggers_default_evaluation() {
        struct Silent;
        impl fair_runtime::Adversary<Opt2Msg> for Silent {
            fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
                vec![PartyId(0)]
            }
            fn on_round(
                &mut self,
                _v: &fair_runtime::RoundView<'_, Opt2Msg>,
                _c: &mut fair_runtime::AdvControl<'_, Opt2Msg>,
                _r: &mut StdRng,
            ) {
            }
        }
        let mut rng = StdRng::seed_from_u64(5);
        let res = execute(instance(11, 22), &mut Silent, &mut rng, 40).expect("execution succeeds");
        // Honest p2 evaluates f(default, x2) = (22, 0).
        assert_eq!(
            res.outputs[&PartyId(1)],
            Value::pair(Value::Scalar(22), Value::Scalar(0))
        );
    }

    #[test]
    fn forged_share_leads_to_default_or_bot_never_wrong_value() {
        /// Runs honestly through phase 1, then sends a garbage share.
        struct Forger;
        impl fair_runtime::Adversary<Opt2Msg> for Forger {
            fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
                vec![PartyId(0)]
            }
            fn on_round(
                &mut self,
                view: &fair_runtime::RoundView<'_, Opt2Msg>,
                ctrl: &mut fair_runtime::AdvControl<'_, Opt2Msg>,
                _r: &mut StdRng,
            ) {
                if view.round == 0 {
                    ctrl.run_honestly(PartyId(0));
                } else {
                    let bogus = AuthShare::from_bytes(
                        &AuthShare {
                            summand: vec![fair_field::Fp::new(1), fair_field::Fp::new(2)],
                            summand_tag: fair_crypto::mac::MacTag(fair_field::Fp::new(3)),
                        }
                        .to_bytes(),
                    )
                    .expect("well-formed bogus share");
                    ctrl.send_as(
                        PartyId(0),
                        OutMsg::to_party(PartyId(1), Opt2Msg::Share(bogus)),
                    );
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(6);
        let res = execute(instance(11, 22), &mut Forger, &mut rng, 40).expect("execution succeeds");
        let y = Value::pair(Value::Scalar(22), Value::Scalar(11));
        let out = &res.outputs[&PartyId(1)];
        assert_ne!(out, &y, "forgery must not produce the real output early");
        // Acceptable honest reactions: ⊥ or the default evaluation.
        let default = Value::pair(Value::Scalar(22), Value::Scalar(0));
        assert!(
            *out == Value::Bot || *out == default,
            "unexpected honest output {out}"
        );
    }
}
