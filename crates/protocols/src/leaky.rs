//! Π̃ — the "leaky" protocol of Section 5 / Appendix C.5, which separates
//! 1/p-security from the paper's utility-based notion.
//!
//! Π̃ computes the logical AND x₁ ∧ x₂:
//!
//! 1. p₂ sends one bit (an honest p₂ sends 0);
//! 2. if p₂ sent 1 instead, p₁ tosses a biased coin C with Pr[C=1] = 1/4
//!    and, if C = 1, sends its *input* x₁ to p₂ (otherwise an empty
//!    message);
//! 3. the parties run the standard 1/4-secure protocol for AND (our
//!    Gordon–Katz protocol with p = 4).
//!
//! Lemma 27 shows Π̃ is both 1/2-secure and fully private in the
//! Gordon–Katz sense; Lemma 26 shows it does **not** realize F^{∧,$} —
//! the input leak in step 2 cannot be simulated. Experiment E12 measures
//! both sides of the separation.

use fair_runtime::{Envelope, Instance, OutMsg, Party, PartyId, RoundCtx, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::gordon_katz::{gk_instance, GkConfig, GkMsg, GkParty};

/// Engine rounds before the embedded sub-protocol starts.
const SUB_START: usize = 2;

/// Wire messages of Π̃.
#[derive(Clone, Debug)]
pub enum LeakyMsg {
    /// Step 1: p₂'s bit.
    FirstBit(bool),
    /// Step 2: p₁'s reply — `Some(x₁)` when the biased coin fired, `None`
    /// for the empty message.
    Reply(Option<u64>),
    /// Steps 3+: the embedded 1/4-secure AND protocol.
    Gk(GkMsg),
}

fn translate_out(msgs: Vec<OutMsg<GkMsg>>) -> Vec<OutMsg<LeakyMsg>> {
    msgs.into_iter()
        .map(|m| OutMsg {
            to: m.to,
            msg: LeakyMsg::Gk(m.msg),
        })
        .collect()
}

/// A party of Π̃ wrapping the embedded Gordon–Katz party.
pub struct LeakyParty {
    me: usize, // 1-based
    input: u64,
    /// p₁'s biased coin (pre-drawn, Pr[true] = 1/4).
    coin: bool,
    saw_one: bool,
    inner: GkParty,
}

impl core::fmt::Debug for LeakyParty {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LeakyParty")
            .field("me", &self.me)
            .field("inner", &self.inner)
            .finish()
    }
}

impl Clone for LeakyParty {
    fn clone(&self) -> Self {
        LeakyParty {
            me: self.me,
            input: self.input,
            coin: self.coin,
            saw_one: self.saw_one,
            inner: self.inner.clone(),
        }
    }
}

impl LeakyParty {
    /// Creates party `me` with bit input `input`; `m` is the embedded
    /// protocol's round count.
    pub fn new(me: usize, input: u64, m: usize, rng: &mut StdRng) -> LeakyParty {
        LeakyParty {
            me,
            input,
            coin: rng.random_bool(0.25),
            saw_one: false,
            inner: GkParty::new(me, Value::Scalar(input), m),
        }
    }
}

impl Party<LeakyMsg> for LeakyParty {
    fn round(&mut self, ctx: &RoundCtx, inbox: &[Envelope<LeakyMsg>]) -> Vec<OutMsg<LeakyMsg>> {
        // Steps 1–2 occupy rounds 0 and 1.
        if ctx.round == 0 {
            if self.me == 2 {
                return vec![OutMsg::to_party(PartyId(0), LeakyMsg::FirstBit(false))];
            }
            return Vec::new();
        }
        if ctx.round == 1 && self.me == 1 {
            for e in inbox {
                if let LeakyMsg::FirstBit(b) = &e.msg {
                    if *b {
                        self.saw_one = true;
                        let reply = if self.coin { Some(self.input) } else { None };
                        return vec![OutMsg::to_party(PartyId(1), LeakyMsg::Reply(reply))];
                    }
                }
            }
            return Vec::new();
        }
        if ctx.round < SUB_START {
            return Vec::new();
        }
        // Steps 3+: delegate to the embedded protocol with shifted rounds.
        let sub_inbox: Vec<Envelope<GkMsg>> = inbox
            .iter()
            .filter_map(|e| match &e.msg {
                LeakyMsg::Gk(m) => Some(Envelope {
                    from: e.from,
                    to: e.to,
                    msg: m.clone(),
                }),
                _ => None,
            })
            .collect();
        let sub_ctx = RoundCtx {
            id: ctx.id,
            n: ctx.n,
            round: ctx.round - SUB_START,
        };
        translate_out(self.inner.round(&sub_ctx, &sub_inbox))
    }

    fn output(&self) -> Option<Value> {
        self.inner.output()
    }

    fn clone_box(&self) -> Box<dyn Party<LeakyMsg>> {
        Box::new(self.clone())
    }
}

/// The embedded 1/4-secure AND configuration.
pub fn leaky_sub_config() -> GkConfig {
    let f: crate::opt2::TwoPartyFn = std::sync::Arc::new(|a: &Value, b: &Value| {
        Value::Scalar((a.as_scalar().unwrap_or(0) & 1) & (b.as_scalar().unwrap_or(0) & 1))
    });
    let bit: crate::gordon_katz::ValueSampler =
        std::sync::Arc::new(|rng: &mut StdRng| Value::Scalar(rng.random_range(0..2)));
    GkConfig::poly_domain(f, 4, 2, std::sync::Arc::clone(&bit), bit)
}

/// Builds a Π̃ instance; the embedded ShareGen functionality handles the
/// sub-protocol's phase 1.
pub fn leaky_instance(x1: u64, x2: u64, rng: &mut StdRng) -> Instance<LeakyMsg> {
    let cfg = leaky_sub_config();
    let m = cfg.m;
    // Reuse the Gordon–Katz instance's functionality, adapted to LeakyMsg.
    let gk = gk_instance("leaky-and", cfg, [Value::Scalar(x1), Value::Scalar(x2)]);
    let func = gk.funcs.into_iter().next().expect("sharegen functionality");
    let adapted = fair_runtime::Adapted::new(
        WrapGk(func),
        |m: &LeakyMsg| match m {
            LeakyMsg::Gk(g) => Some(g.clone()),
            _ => None,
        },
        LeakyMsg::Gk,
    );
    Instance {
        parties: vec![
            Box::new(LeakyParty::new(1, x1, m, &mut sub_rng(rng))),
            Box::new(LeakyParty::new(2, x2, m, &mut sub_rng(rng))),
        ],
        funcs: vec![Box::new(adapted)],
    }
}

fn sub_rng(rng: &mut StdRng) -> StdRng {
    StdRng::seed_from_u64(rng.random())
}

/// Wraps the boxed ShareGen functionality (adapters need a sized type).
struct WrapGk(Box<dyn fair_runtime::Functionality<GkMsg>>);

impl fair_runtime::Functionality<GkMsg> for WrapGk {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn on_round(
        &mut self,
        ctx: &mut fair_runtime::FuncCtx<'_>,
        incoming: &[Envelope<GkMsg>],
    ) -> Vec<OutMsg<GkMsg>> {
        self.0.on_round(ctx, incoming)
    }
}

/// What an environment observes when probing Π̃ with a corrupted p₂ that
/// sends the deviant 1-bit and then plays honestly with input `x2_played`.
#[derive(Clone, Debug, PartialEq)]
pub struct LeakyObservation {
    /// p₁'s step-2 reply: `None` = no reply seen, `Some(None)` = empty
    /// message, `Some(Some(bit))` = leaked input.
    pub reply: Option<Option<u64>>,
    /// p₁'s (the honest party's) output z₁.
    pub z1: Value,
}

/// The probing adversary of Lemmas 26/27: corrupts p₂, sends the 1-bit,
/// records the reply, and otherwise runs p₂ honestly with its input.
pub struct LeakyProbe {
    reply: Option<Option<u64>>,
}

impl LeakyProbe {
    /// Creates the probe.
    pub fn new() -> LeakyProbe {
        LeakyProbe { reply: None }
    }
}

impl Default for LeakyProbe {
    fn default() -> Self {
        LeakyProbe::new()
    }
}

impl fair_runtime::Adversary<LeakyMsg> for LeakyProbe {
    fn initial_corruptions(&mut self, _n: usize, _rng: &mut StdRng) -> Vec<PartyId> {
        vec![PartyId(1)]
    }

    fn on_round(
        &mut self,
        view: &fair_runtime::RoundView<'_, LeakyMsg>,
        ctrl: &mut fair_runtime::AdvControl<'_, LeakyMsg>,
        _rng: &mut StdRng,
    ) {
        if view.round == 0 {
            // Deviate: send 1 instead of the honest 0.
            ctrl.send_as(
                PartyId(1),
                OutMsg::to_party(PartyId(0), LeakyMsg::FirstBit(true)),
            );
            return;
        }
        for e in view.delivered.iter().chain(view.rushing.iter()) {
            if let LeakyMsg::Reply(r) = &e.msg {
                if self.reply.is_none() {
                    self.reply = Some(*r);
                }
            }
        }
        // Play the rest honestly (the embedded 1/4-secure protocol).
        ctrl.run_honestly(PartyId(1));
    }

    fn learned(&self) -> Option<Value> {
        None
    }
}

/// Runs the Lemma 26 probe against the *real* Π̃ and returns the
/// observation. `x1` is the honest party's input; the corrupted p₂ plays
/// the embedded protocol honestly with input `x2_played`.
pub fn probe_real(x1: u64, x2_played: u64, seed: u64) -> LeakyObservation {
    let mut rng = StdRng::seed_from_u64(seed);
    let inst = leaky_instance(x1, x2_played, &mut rng);
    let mut adv = LeakyProbe::new();
    let res = fair_runtime::execute(inst, &mut adv, &mut rng, 400).expect("execution succeeds");
    LeakyObservation {
        reply: adv.reply,
        z1: res.outputs.get(&PartyId(0)).cloned().unwrap_or(Value::Bot),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_runtime::{execute, Passive};

    #[test]
    fn honest_run_computes_and() {
        for (x1, x2) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            let mut rng = StdRng::seed_from_u64(60 + x1 * 2 + x2);
            let inst = leaky_instance(x1, x2, &mut rng);
            let res = execute(inst, &mut Passive, &mut rng, 400).expect("execution succeeds");
            assert!(
                res.all_honest_output(&Value::Scalar(x1 & x2)),
                "{x1} ∧ {x2}: {:?}",
                res.outputs
            );
        }
    }

    #[test]
    fn honest_p2_never_triggers_the_leak() {
        // With an honest p2 (first bit 0), p1 never sends a Reply.
        let mut rng = StdRng::seed_from_u64(70);
        let inst = leaky_instance(1, 1, &mut rng);
        let res = execute(inst, &mut Passive, &mut rng, 400).expect("execution succeeds");
        assert!(res.all_honest_got_output());
    }

    #[test]
    fn probe_leaks_the_input_about_a_quarter_of_the_time() {
        let mut leaked = 0;
        let mut correct_leak = true;
        let trials = 400;
        for seed in 0..trials {
            let obs = probe_real(1, 0, 4000 + seed);
            if let Some(Some(bit)) = obs.reply {
                leaked += 1;
                correct_leak &= bit == 1;
            }
        }
        let rate = leaked as f64 / trials as f64;
        assert!((0.15..=0.35).contains(&rate), "leak rate {rate} ≈ 1/4");
        assert!(correct_leak, "every leak reveals the true input");
    }

    #[test]
    fn probe_with_x2_zero_gets_z1_zero() {
        // p2 plays the embedded protocol honestly with 0, so z1 = x1 ∧ 0 = 0
        // (up to the sub-protocol's own small failure probability).
        let mut zeros = 0;
        let trials = 60;
        for seed in 0..trials {
            let obs = probe_real(1, 0, 9000 + seed);
            if obs.z1 == Value::Scalar(0) {
                zeros += 1;
            }
        }
        assert!(
            zeros as f64 / trials as f64 > 0.8,
            "z1 = 0 in {zeros}/{trials}"
        );
    }
}
