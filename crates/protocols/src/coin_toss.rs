//! Blum's commit-then-open coin toss — the subprotocol Π2 uses to decide
//! who opens first (the paper's reference [4]).
//!
//! Each party commits to a random bit, the commitments are exchanged, and
//! both are opened in a single simultaneous round; the coin is the XOR of
//! the two bits. Binding prevents a rushing adversary from *biasing* the
//! coin — its only remaining power is to abort after seeing the honest
//! opening, which is precisely the residual unfairness Π2 inherits (and
//! why Π2 lands at (γ₁₀+γ₁₁)/2 rather than full fairness).

use fair_crypto::commit::{self, Commitment, Opening};
use fair_runtime::{Envelope, Instance, OutMsg, Party, PartyId, RoundCtx, Value};
use rand::rngs::StdRng;
use rand::RngExt;

/// Wire messages of the coin toss.
#[derive(Clone, Debug)]
pub enum CoinMsg {
    /// Round 0: the bit commitment.
    Commit(Commitment),
    /// Round 1: its opening.
    Open(Opening),
}

/// A coin-toss party. Outputs `Scalar(b)` for the joint coin b, or ⊥ if
/// the counterparty aborts or cheats.
#[derive(Clone, Debug)]
pub struct CoinParty {
    bit: bool,
    opening: Opening,
    commitment: Commitment,
    their_commitment: Option<Commitment>,
    out: Option<Value>,
}

impl CoinParty {
    /// Creates a party with a fresh random bit.
    pub fn new(rng: &mut StdRng) -> CoinParty {
        let bit: bool = rng.random();
        let (commitment, opening) = commit::commit(&[bit as u8], rng);
        CoinParty {
            bit,
            opening,
            commitment,
            their_commitment: None,
            out: None,
        }
    }

    /// The party's committed bit (visible for tests and adversaries that
    /// corrupt the party).
    pub fn bit(&self) -> bool {
        self.bit
    }
}

impl Party<CoinMsg> for CoinParty {
    fn round(&mut self, ctx: &RoundCtx, inbox: &[Envelope<CoinMsg>]) -> Vec<OutMsg<CoinMsg>> {
        if self.out.is_some() {
            return Vec::new();
        }
        let other = PartyId(1 - ctx.id.0);
        let mut opened: Option<Opening> = None;
        for e in inbox {
            if e.from_party() != Some(other) {
                continue;
            }
            match &e.msg {
                CoinMsg::Commit(c) => {
                    if self.their_commitment.is_none() {
                        self.their_commitment = Some(*c);
                    }
                }
                CoinMsg::Open(o) => opened = Some(o.clone()),
            }
        }
        match ctx.round {
            0 => vec![OutMsg::to_party(other, CoinMsg::Commit(self.commitment))],
            1 => {
                if self.their_commitment.is_none() {
                    self.out = Some(Value::Bot);
                    return Vec::new();
                }
                vec![OutMsg::to_party(other, CoinMsg::Open(self.opening.clone()))]
            }
            _ => {
                match opened {
                    Some(o) => {
                        let valid = self
                            .their_commitment
                            .as_ref()
                            .map(|c| {
                                commit::verify(c, &o) && o.message.len() == 1 && o.message[0] <= 1
                            })
                            .unwrap_or(false);
                        if valid {
                            let b = self.bit ^ (o.message[0] == 1);
                            self.out = Some(Value::Scalar(b as u64));
                        } else {
                            self.out = Some(Value::Bot);
                        }
                    }
                    None => self.out = Some(Value::Bot),
                }
                Vec::new()
            }
        }
    }

    fn output(&self) -> Option<Value> {
        self.out.clone()
    }

    fn clone_box(&self) -> Box<dyn Party<CoinMsg>> {
        Box::new(self.clone())
    }
}

/// Builds a two-party coin-toss instance.
pub fn coin_toss_instance(rng: &mut StdRng) -> Instance<CoinMsg> {
    Instance {
        parties: vec![Box::new(CoinParty::new(rng)), Box::new(CoinParty::new(rng))],
        funcs: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_runtime::{execute, AdvControl, Adversary, Passive, RoundView};
    use rand::SeedableRng;

    #[test]
    fn honest_toss_agrees_and_is_roughly_uniform() {
        let mut ones = 0;
        let trials = 400;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = coin_toss_instance(&mut rng);
            let res = execute(inst, &mut Passive, &mut rng, 10).expect("execution succeeds");
            let b0 = res.outputs[&PartyId(0)].as_scalar().expect("coin");
            let b1 = res.outputs[&PartyId(1)].as_scalar().expect("coin");
            assert_eq!(b0, b1, "parties agree on the coin");
            ones += b0;
        }
        let rate = ones as f64 / trials as f64;
        assert!((0.42..=0.58).contains(&rate), "coin bias: {rate}");
    }

    /// A rushing adversary that sees the honest opening first and *tries*
    /// to flip the outcome by substituting a different opening — binding
    /// makes every substitution fail.
    struct Flipper {
        fake: Option<Opening>,
    }

    impl Adversary<CoinMsg> for Flipper {
        fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
            vec![PartyId(0)]
        }

        fn on_round(
            &mut self,
            view: &RoundView<'_, CoinMsg>,
            ctrl: &mut AdvControl<'_, CoinMsg>,
            rng: &mut StdRng,
        ) {
            if view.round == 0 {
                ctrl.run_honestly(PartyId(0));
                return;
            }
            if view.round == 1 {
                // Rushing: the honest opening is visible now. Forge an
                // opening for the flipped bit under *fresh* randomness —
                // it cannot match our round-0 commitment.
                let honest_bit = view
                    .rushing
                    .iter()
                    .find_map(|e| match &e.msg {
                        CoinMsg::Open(o) => Some(o.message[0]),
                        _ => None,
                    })
                    .expect("rushing shows the honest opening");
                let target = honest_bit ^ 1; // force coin = 1
                let (_, fake) = fair_crypto::commit::commit(&[target], rng);
                self.fake = Some(fake.clone());
                ctrl.send_as(
                    PartyId(0),
                    OutMsg::to_party(PartyId(1), CoinMsg::Open(fake)),
                );
            }
        }
    }

    #[test]
    fn binding_blocks_rushing_bias() {
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let inst = coin_toss_instance(&mut rng);
            let mut adv = Flipper { fake: None };
            let res = execute(inst, &mut adv, &mut rng, 10).expect("execution succeeds");
            // The honest party never accepts the forged opening: it aborts
            // rather than outputting a biased coin.
            assert_eq!(res.outputs[&PartyId(1)], Value::Bot, "seed {seed}");
        }
    }

    #[test]
    fn silent_counterparty_aborts_the_toss() {
        struct Silent;
        impl Adversary<CoinMsg> for Silent {
            fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
                vec![PartyId(0)]
            }
            fn on_round(
                &mut self,
                _v: &RoundView<'_, CoinMsg>,
                _c: &mut AdvControl<'_, CoinMsg>,
                _r: &mut StdRng,
            ) {
            }
        }
        let mut rng = StdRng::seed_from_u64(77);
        let inst = coin_toss_instance(&mut rng);
        let res = execute(inst, &mut Silent, &mut rng, 10).expect("execution succeeds");
        assert_eq!(res.outputs[&PartyId(1)], Value::Bot);
    }
}
