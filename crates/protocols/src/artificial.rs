//! The artificial protocol of Lemma 18: *optimally fair but not
//! utility-balanced*.
//!
//! Phase 1 is the same private-output functionality as Π^Opt_nSFE (the
//! designated party p_{i*} receives the signed output). Then:
//!
//! 1. every party sends the literal value "0" to all other parties;
//! 2. if the holder received only 0s, it broadcasts the output; otherwise
//!    it tosses a fair coin — on heads it broadcasts anyway, on tails it
//!    sends the output *only to the parties that did not send a 0*;
//! 3. every party that received the output adopts it.
//!
//! A 1-adversary that sends "1" instead of "0" therefore gets the output
//! delivered privately to itself on tails, while all honest parties are
//! left empty-handed: utility γ₁₀/n + (n−1)/n · (γ₁₀+γ₁₁)/2, strictly more
//! than Π^Opt_nSFE's 1-adversary bound — yet the (n−1)-adversary utility is
//! unchanged, so the protocol remains *optimally* fair (experiment E9).

use fair_crypto::sign::{Signature, VerifyingKey};
use fair_runtime::{Adapted, Envelope, FuncId, Instance, OutMsg, Party, PartyId, RoundCtx, Value};
use fair_sfe::ideal::{SfeMsg, SfeWithAbort};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::optn::{priv_spec, NPartyFn};

/// Rounds a party waits for the phase-1 result before concluding abort.
const PHASE1_DEADLINE: usize = 8;

/// Wire messages.
#[derive(Clone, Debug)]
pub enum ArtMsg {
    /// Traffic to/from the phase-1 functionality.
    Sfe(SfeMsg),
    /// Step 2: the "0"-vote (`true` = the honest value 0).
    Vote(bool),
    /// Step 3: the signed output, broadcast or sent point-to-point.
    Reveal(Value),
}

fn down(m: &ArtMsg) -> Option<SfeMsg> {
    match m {
        ArtMsg::Sfe(s) => Some(s.clone()),
        _ => None,
    }
}

#[derive(Clone, Debug)]
#[allow(clippy::enum_variant_names)] // the Await* names mirror the paper's phase labels
enum Phase {
    AwaitShareGen,
    /// Vote sent; holder will act once all votes land (or at the deadline).
    AwaitVotes {
        deadline: usize,
    },
    /// Non-holder waiting for a reveal (or timeout).
    AwaitReveal {
        deadline: usize,
    },
}

/// A party of the Lemma 18 protocol.
#[derive(Clone, Debug)]
pub struct ArtParty {
    input: Value,
    /// Pre-drawn fair coin for step 3.
    coin_heads: bool,
    vk: Option<VerifyingKey>,
    mine: Option<Value>,
    votes: Vec<(PartyId, bool)>,
    reveals: Vec<Value>,
    phase: Phase,
    out: Option<Value>,
}

impl ArtParty {
    /// Creates a party; the step-3 coin is pre-drawn from `rng`.
    pub fn new(input: Value, rng: &mut StdRng) -> ArtParty {
        ArtParty {
            input,
            coin_heads: rng.random(),
            vk: None,
            mine: None,
            votes: Vec::new(),
            reveals: Vec::new(),
            phase: Phase::AwaitShareGen,
            out: None,
        }
    }

    fn validate(&self, v: &Value) -> Option<Value> {
        let vk = self.vk.as_ref()?;
        if let Value::Pair(y, sig) = v {
            let sig = Signature::from_bytes(sig.as_bytes()?)?;
            if fair_crypto::sign::verify(vk, &y.encode(), &sig) {
                return Some((**y).clone());
            }
        }
        None
    }

    fn i_am_holder(&self) -> bool {
        matches!(self.mine, Some(Value::Pair(_, _)))
    }
}

impl Party<ArtMsg> for ArtParty {
    fn round(&mut self, ctx: &RoundCtx, inbox: &[Envelope<ArtMsg>]) -> Vec<OutMsg<ArtMsg>> {
        if self.out.is_some() {
            return Vec::new();
        }
        let mut sfe: Option<SfeMsg> = None;
        for e in inbox {
            match (&e.msg, e.from_party()) {
                (ArtMsg::Sfe(m), None) => sfe = Some(m.clone()),
                (ArtMsg::Vote(b), Some(p)) => self.votes.push((p, *b)),
                (ArtMsg::Reveal(v), Some(_)) => self.reveals.push(v.clone()),
                _ => {}
            }
        }
        match &self.phase {
            Phase::AwaitShareGen => {
                if ctx.round == 0 {
                    return vec![OutMsg::to_func(
                        FuncId(0),
                        ArtMsg::Sfe(SfeMsg::Input(self.input.clone())),
                    )];
                }
                match sfe {
                    Some(SfeMsg::Output(v)) => {
                        let parsed = match &v {
                            Value::Pair(mine, vkb) => vkb
                                .as_bytes()
                                .and_then(VerifyingKey::from_bytes)
                                .map(|vk| ((**mine).clone(), vk)),
                            _ => None,
                        };
                        let Some((mine, vk)) = parsed else {
                            self.out = Some(Value::Bot);
                            return Vec::new();
                        };
                        self.vk = Some(vk);
                        self.mine = Some(mine);
                        self.phase = Phase::AwaitVotes {
                            deadline: ctx.round + 2,
                        };
                        // Step 2: send "0" to everyone else.
                        (0..ctx.n)
                            .filter(|&j| j != ctx.id.0)
                            .map(|j| OutMsg::to_party(PartyId(j), ArtMsg::Vote(true)))
                            .collect()
                    }
                    Some(SfeMsg::Abort) => {
                        self.out = Some(Value::Bot);
                        Vec::new()
                    }
                    _ => {
                        if ctx.round >= PHASE1_DEADLINE {
                            self.out = Some(Value::Bot);
                        }
                        Vec::new()
                    }
                }
            }
            Phase::AwaitVotes { deadline } => {
                if self.votes.len() < ctx.n - 1 && ctx.round < *deadline {
                    return Vec::new();
                }
                if self.i_am_holder() {
                    let mine = self.mine.clone().expect("holder has output");
                    let y = self.validate(&mine).unwrap_or(Value::Bot);
                    // Which parties sent an honest 0?
                    let zero_senders: Vec<PartyId> = self
                        .votes
                        .iter()
                        .filter(|(_, b)| *b)
                        .map(|(p, _)| *p)
                        .collect();
                    let all_zero = zero_senders.len() == ctx.n - 1;
                    self.out = Some(y);
                    if all_zero || self.coin_heads {
                        vec![OutMsg::broadcast(ArtMsg::Reveal(mine))]
                    } else {
                        // Tails: reward exactly the non-0 senders.
                        (0..ctx.n)
                            .filter(|&j| j != ctx.id.0 && !zero_senders.contains(&PartyId(j)))
                            .map(|j| OutMsg::to_party(PartyId(j), ArtMsg::Reveal(mine.clone())))
                            .collect()
                    }
                } else {
                    self.phase = Phase::AwaitReveal {
                        deadline: ctx.round + 2,
                    };
                    Vec::new()
                }
            }
            Phase::AwaitReveal { deadline } => {
                for r in &self.reveals.clone() {
                    if let Some(y) = self.validate(r) {
                        self.out = Some(y);
                        return Vec::new();
                    }
                }
                if ctx.round >= *deadline {
                    self.out = Some(Value::Bot);
                }
                Vec::new()
            }
        }
    }

    fn output(&self) -> Option<Value> {
        self.out.clone()
    }

    fn clone_box(&self) -> Box<dyn Party<ArtMsg>> {
        Box::new(self.clone())
    }
}

/// Builds an instance of the Lemma 18 protocol.
pub fn artificial_instance(
    name: &str,
    f: NPartyFn,
    inputs: Vec<Value>,
    rng: &mut StdRng,
) -> Instance<ArtMsg> {
    let n = inputs.len();
    let spec = priv_spec(name, n, f);
    let func = Adapted::new(SfeWithAbort::new(spec), down, ArtMsg::Sfe);
    Instance {
        parties: inputs
            .into_iter()
            .map(|x| {
                let mut party_rng = StdRng::seed_from_u64(rng.random());
                Box::new(ArtParty::new(x, &mut party_rng)) as Box<dyn Party<ArtMsg>>
            })
            .collect(),
        funcs: vec![Box::new(func)],
    }
}

/// The Lemma 18 one-party attack: run phase 1 honestly; if the corrupted
/// party turns out to hold the output, abort immediately (γ₁₀); otherwise
/// send "1" in step 2 and wait for a tails-reveal.
pub struct VoteOneAttack {
    target: PartyId,
    learned: Option<Value>,
    holder: bool,
    silent: bool,
}

impl VoteOneAttack {
    /// Attacks with corrupted party `target` (0-based).
    pub fn new(target: usize) -> VoteOneAttack {
        VoteOneAttack {
            target: PartyId(target),
            learned: None,
            holder: false,
            silent: false,
        }
    }
}

impl fair_runtime::Adversary<ArtMsg> for VoteOneAttack {
    fn initial_corruptions(&mut self, n: usize, _rng: &mut StdRng) -> Vec<PartyId> {
        assert!(self.target.0 < n);
        vec![self.target]
    }

    fn on_round(
        &mut self,
        view: &fair_runtime::RoundView<'_, ArtMsg>,
        ctrl: &mut fair_runtime::AdvControl<'_, ArtMsg>,
        _rng: &mut StdRng,
    ) {
        if self.silent {
            return;
        }
        // Inspect deliveries: the phase-1 output and any reveals.
        for e in view.delivered {
            match &e.msg {
                ArtMsg::Sfe(SfeMsg::Output(Value::Pair(mine, _))) => {
                    if let Value::Pair(y, _) = &**mine {
                        // We are the holder: grab y and abort.
                        self.learned = Some((**y).clone());
                        self.holder = true;
                        self.silent = true;
                        return;
                    }
                    // Not the holder: send the deviant "1" votes now.
                    for j in 0..view.n {
                        if PartyId(j) != self.target {
                            ctrl.send_as(
                                self.target,
                                OutMsg::to_party(PartyId(j), ArtMsg::Vote(false)),
                            );
                        }
                    }
                    // Also submit nothing else; wait for a reveal.
                }
                ArtMsg::Reveal(Value::Pair(y, _)) => {
                    self.learned = Some((**y).clone());
                }
                _ => {}
            }
        }
        if view.round == 0 {
            ctrl.run_honestly(self.target); // submit the input
        }
    }

    fn learned(&self) -> Option<Value> {
        self.learned.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optn::concat_fn;
    use fair_runtime::{execute, Passive};

    fn instance(n: usize, seed: u64) -> Instance<ArtMsg> {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs = (0..n).map(|i| Value::Scalar(50 + i as u64)).collect();
        artificial_instance("concat", concat_fn(), inputs, &mut rng)
    }

    fn truth(n: usize) -> Value {
        Value::Tuple((0..n).map(|i| Value::Scalar(50 + i as u64)).collect())
    }

    #[test]
    fn honest_run_broadcasts_and_everyone_outputs() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let res =
                execute(instance(4, seed), &mut Passive, &mut rng, 30).expect("execution succeeds");
            assert!(
                res.all_honest_output(&truth(4)),
                "seed {seed}: {:?}",
                res.outputs
            );
        }
    }

    #[test]
    fn vote_one_attack_has_three_outcomes() {
        // Over many seeds we must observe: (a) holder-abort E10,
        // (b) tails private reveal E10, (c) heads broadcast E11.
        let n = 4;
        let mut holder_abort = 0;
        let mut private_reveal = 0;
        let mut broadcast = 0;
        for seed in 0..120 {
            let mut rng = StdRng::seed_from_u64(500 + seed);
            let mut adv = VoteOneAttack::new(0);
            let res =
                execute(instance(n, seed), &mut adv, &mut rng, 30).expect("execution succeeds");
            let learned = res.learned == Some(truth(n));
            let honest_got = res.outputs.values().all(|v| *v == truth(n));
            assert!(
                res.outputs.values().all(|v| v.is_bot() || *v == truth(n)),
                "outputs are y or ⊥: {:?}",
                res.outputs
            );
            match (learned, honest_got, adv.holder) {
                (true, false, true) => holder_abort += 1,
                (true, false, false) => private_reveal += 1,
                (true, true, _) => broadcast += 1,
                other => {
                    // The holder itself always outputs y; when the holder is
                    // honest and tails fires, honest non-holders get ⊥ but
                    // the holder keeps y — count as private reveal.
                    if res.learned == Some(truth(n)) {
                        private_reveal += 1;
                    } else {
                        panic!("unexpected outcome {other:?}: {:?}", res.outputs);
                    }
                }
            }
        }
        assert!(holder_abort > 10, "holder branch seen {holder_abort}");
        assert!(private_reveal > 10, "tails branch seen {private_reveal}");
        assert!(broadcast > 20, "heads branch seen {broadcast}");
    }
}
