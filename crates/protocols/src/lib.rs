#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Every protocol from *"How Fair is Your Protocol?"*, runnable on the
//! `fair-runtime` engine:
//!
//! * [`contract`] — the introduction's contract-signing protocols Π1
//!   (fixed opening order; fully unfair) and Π2 (coin-tossed order; twice
//!   as fair).
//! * [`coin_toss`] — Blum's commit-then-open coin toss, Π2's subprotocol.
//! * [`opt2`] — **Π^Opt_2SFE**, the optimally fair two-party SFE protocol
//!   (Section 4.1, Theorems 3/4).
//! * [`optn`] — **Π^Opt_nSFE**, its multi-party counterpart (Section 4.2 /
//!   Appendix B, Lemmas 11–13).
//! * [`gmw_half`] — the honest-majority fair protocol Π^{1/2}_GMW with its
//!   threshold cliff (Lemma 17).
//! * [`artificial`] — the optimally-fair-but-not-utility-balanced
//!   counterexample (Lemma 18).
//! * [`one_round`] — the single-reconstruction-round strawman refuted by
//!   Lemma 10.
//! * [`gordon_katz`] — the 1/p-secure protocols of Gordon and Katz
//!   analyzed in Section 5 (Theorems 23/24), including their ShareGen
//!   functionality.
//! * [`leaky`] — the protocol Π̃ that separates 1/p-security from the
//!   paper's utility-based notion (Lemmas 26/27).
//! * [`scenarios`] — ready-made experiment scenarios binding each protocol
//!   to the `fair-core` utility estimator.

pub mod artificial;
pub mod coin_toss;
pub mod contract;
pub mod gmw_half;
pub mod gordon_katz;
pub mod leaky;
pub mod one_round;
pub mod opt2;
pub mod optn;
pub mod scenarios;
