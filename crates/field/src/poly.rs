//! Dense polynomials over a [`Field`], with Lagrange interpolation.
//!
//! Polynomials back the Shamir secret-sharing scheme and the polynomial MAC
//! in `fair-crypto`. Coefficients are stored lowest-degree first, with the
//! invariant that the highest stored coefficient is nonzero (the zero
//! polynomial is an empty vector).

use crate::Field;

/// A dense polynomial with coefficients in `F`, lowest degree first.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Poly<F> {
    coeffs: Vec<F>,
}

impl<F: Field> Poly<F> {
    /// The zero polynomial.
    pub fn zero() -> Poly<F> {
        Poly { coeffs: Vec::new() }
    }

    /// Constructs a polynomial from coefficients (lowest degree first),
    /// trimming trailing zeros.
    pub fn from_coeffs(mut coeffs: Vec<F>) -> Poly<F> {
        while coeffs.last() == Some(&F::ZERO) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: F) -> Poly<F> {
        Poly::from_coeffs(vec![c])
    }

    /// Returns the coefficients, lowest degree first (empty for zero).
    pub fn coeffs(&self) -> &[F] {
        &self.coeffs
    }

    /// Degree of the polynomial; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluates the polynomial at `x` by Horner's rule.
    pub fn eval(&self, x: F) -> F {
        let mut acc = F::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Adds two polynomials.
    pub fn add(&self, other: &Poly<F>) -> Poly<F> {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.coeffs.get(i).copied().unwrap_or(F::ZERO);
            let b = other.coeffs.get(i).copied().unwrap_or(F::ZERO);
            out.push(a + b);
        }
        Poly::from_coeffs(out)
    }

    /// Multiplies two polynomials (schoolbook).
    pub fn mul(&self, other: &Poly<F>) -> Poly<F> {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![F::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] = out[i + j] + a * b;
            }
        }
        Poly::from_coeffs(out)
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, s: F) -> Poly<F> {
        Poly::from_coeffs(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Lagrange-interpolates the unique polynomial of degree `< points.len()`
    /// through the given `(x, y)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if two points share an x-coordinate.
    pub fn interpolate(points: &[(F, F)]) -> Poly<F> {
        let mut acc = Poly::zero();
        for (i, &(xi, yi)) in points.iter().enumerate() {
            // Build the i-th Lagrange basis polynomial.
            let mut basis = Poly::constant(F::ONE);
            let mut denom = F::ONE;
            for (j, &(xj, _)) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                assert!(xi != xj, "interpolate: duplicate x-coordinate");
                // basis *= (X - xj)
                basis = basis.mul(&Poly::from_coeffs(vec![-xj, F::ONE]));
                denom = denom * (xi - xj);
            }
            let inv = denom
                .inverse()
                .expect("distinct points give nonzero denominator");
            acc = acc.add(&basis.scale(yi * inv));
        }
        acc
    }

    /// Evaluates the interpolating polynomial through `points` at `x` without
    /// materializing its coefficients (direct Lagrange evaluation).
    ///
    /// # Panics
    ///
    /// Panics if two points share an x-coordinate.
    pub fn interpolate_at(points: &[(F, F)], x: F) -> F {
        let mut acc = F::ZERO;
        for (i, &(xi, yi)) in points.iter().enumerate() {
            let mut num = F::ONE;
            let mut den = F::ONE;
            for (j, &(xj, _)) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                assert!(xi != xj, "interpolate_at: duplicate x-coordinate");
                num = num * (x - xj);
                den = den * (xi - xj);
            }
            acc = acc + yi * num * den.inverse().expect("distinct x-coordinates");
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fp;
    use proptest::prelude::*;

    fn p(cs: &[u64]) -> Poly<Fp> {
        Poly::from_coeffs(cs.iter().map(|&c| Fp::new(c)).collect())
    }

    #[test]
    fn trims_trailing_zeros() {
        let q = p(&[1, 2, 0, 0]);
        assert_eq!(q.degree(), Some(1));
        assert_eq!(p(&[0, 0]).degree(), None);
        assert!(p(&[]).is_zero());
    }

    #[test]
    fn eval_horner() {
        // 3 + 2x + x^2 at x = 5 -> 3 + 10 + 25 = 38
        assert_eq!(p(&[3, 2, 1]).eval(Fp::new(5)), Fp::new(38));
        assert_eq!(Poly::<Fp>::zero().eval(Fp::new(7)), Fp::ZERO);
    }

    #[test]
    fn add_and_mul_small() {
        let a = p(&[1, 1]); // 1 + x
        let b = p(&[1, 2]); // 1 + 2x
        assert_eq!(a.add(&b), p(&[2, 3]));
        assert_eq!(a.mul(&b), p(&[1, 3, 2])); // 1 + 3x + 2x^2
    }

    #[test]
    fn mul_by_zero_is_zero() {
        assert!(p(&[1, 2, 3]).mul(&Poly::zero()).is_zero());
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let q = p(&[7, 0, 5, 11]);
        let pts: Vec<(Fp, Fp)> = (1..5u64)
            .map(|x| (Fp::new(x), q.eval(Fp::new(x))))
            .collect();
        assert_eq!(Poly::interpolate(&pts), q);
    }

    #[test]
    fn interpolate_at_matches_full_interpolation() {
        let q = p(&[3, 9, 2]);
        let pts: Vec<(Fp, Fp)> = (10..13u64)
            .map(|x| (Fp::new(x), q.eval(Fp::new(x))))
            .collect();
        for x in 0..20u64 {
            assert_eq!(Poly::interpolate_at(&pts, Fp::new(x)), q.eval(Fp::new(x)));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate x-coordinate")]
    fn interpolate_rejects_duplicate_x() {
        let pts = vec![(Fp::new(1), Fp::new(2)), (Fp::new(1), Fp::new(3))];
        Poly::interpolate(&pts);
    }

    proptest! {
        #[test]
        fn prop_interpolation_roundtrip(coeffs in proptest::collection::vec(0u64..1_000_000, 1..6)) {
            let q = p(&coeffs);
            let pts: Vec<(Fp, Fp)> = (1..=coeffs.len() as u64)
                .map(|x| (Fp::new(x), q.eval(Fp::new(x))))
                .collect();
            prop_assert_eq!(Poly::interpolate(&pts), q);
        }

        #[test]
        fn prop_eval_homomorphic(a in proptest::collection::vec(0u64..1_000_000, 0..5),
                                 b in proptest::collection::vec(0u64..1_000_000, 0..5),
                                 x in 0u64..1_000_000) {
            let (pa, pb, x) = (p(&a), p(&b), Fp::new(x));
            prop_assert_eq!(pa.add(&pb).eval(x), pa.eval(x) + pb.eval(x));
            prop_assert_eq!(pa.mul(&pb).eval(x), pa.eval(x) * pb.eval(x));
        }
    }
}
