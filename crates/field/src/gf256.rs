//! The byte field GF(2^8) with the AES reduction polynomial
//! x^8 + x^4 + x^3 + x + 1 (0x11b).
//!
//! Used by `fair-crypto` for byte-wise secret sharing of arbitrary strings:
//! sharing a message byte-by-byte over GF(2^8) keeps share sizes equal to the
//! message size.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An element of GF(2^8).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Gf256(u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);

    /// Wraps a byte as a field element (every byte is valid).
    pub const fn new(x: u8) -> Gf256 {
        Gf256(x)
    }

    /// Returns the underlying byte.
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Carry-less multiplication reduced by the AES polynomial.
    fn mul_slow(a: u8, b: u8) -> u8 {
        let mut a = a as u16;
        let mut b = b;
        let mut r: u16 = 0;
        while b != 0 {
            if b & 1 == 1 {
                r ^= a;
            }
            a <<= 1;
            if a & 0x100 != 0 {
                a ^= 0x11b;
            }
            b >>= 1;
        }
        r as u8
    }

    /// Raises `self` to the power `e`.
    pub fn pow(self, mut e: u32) -> Gf256 {
        let mut base = self;
        let mut acc = Gf256::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via a^254; `None` for zero.
    pub fn inverse(self) -> Option<Gf256> {
        if self.0 == 0 {
            None
        } else {
            Some(self.pow(254))
        }
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256(0x{:02x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:02x}", self.0)
    }
}

impl From<u8> for Gf256 {
    fn from(x: u8) -> Gf256 {
        Gf256(x)
    }
}

impl From<Gf256> for u8 {
    fn from(x: Gf256) -> u8 {
        x.0
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    // In GF(2^8) addition *is* XOR.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    // Characteristic 2: subtraction coincides with addition (XOR).
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    fn neg(self) -> Gf256 {
        self // characteristic 2
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256(Gf256::mul_slow(self.0, rhs.0))
    }
}

impl AddAssign for Gf256 {
    fn add_assign(&mut self, rhs: Gf256) {
        *self = *self + rhs;
    }
}

impl SubAssign for Gf256 {
    fn sub_assign(&mut self, rhs: Gf256) {
        *self = *self - rhs;
    }
}

impl MulAssign for Gf256 {
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

impl Sum for Gf256 {
    fn sum<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_aes_products() {
        // Classic AES MixColumns facts.
        assert_eq!(Gf256::new(0x57) * Gf256::new(0x83), Gf256::new(0xc1));
        assert_eq!(Gf256::new(0x57) * Gf256::new(0x13), Gf256::new(0xfe));
        assert_eq!(Gf256::new(0x02) * Gf256::new(0x80), Gf256::new(0x1b));
    }

    #[test]
    fn add_is_xor() {
        assert_eq!(Gf256::new(0xf0) + Gf256::new(0x0f), Gf256::new(0xff));
        assert_eq!(Gf256::new(0xaa) + Gf256::new(0xaa), Gf256::ZERO);
    }

    #[test]
    fn every_nonzero_element_inverts() {
        for x in 1..=255u8 {
            let a = Gf256::new(x);
            let inv = a.inverse().expect("nonzero");
            assert_eq!(a * inv, Gf256::ONE, "x = {x}");
        }
        assert!(Gf256::ZERO.inverse().is_none());
    }

    #[test]
    fn pow_zero_is_one() {
        assert_eq!(Gf256::new(0x42).pow(0), Gf256::ONE);
    }

    proptest! {
        #[test]
        fn prop_mul_commutes(a: u8, b: u8) {
            prop_assert_eq!(Gf256(a) * Gf256(b), Gf256(b) * Gf256(a));
        }

        #[test]
        fn prop_distributivity(a: u8, b: u8, c: u8) {
            let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_mul_associates(a: u8, b: u8, c: u8) {
            let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
            prop_assert_eq!((a * b) * c, a * (b * c));
        }
    }
}
