//! The prime field GF(2^61 − 1).
//!
//! 2^61 − 1 is a Mersenne prime, which makes modular reduction a pair of
//! shifts and adds, and lets products of two canonical elements fit in a
//! `u128` without overflow. A 61-bit field gives the information-theoretic
//! MACs in `fair-crypto` a forgery probability ≤ 2·2^{−61} per verification,
//! far below the statistical resolution of any experiment in this workspace.

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// The modulus p = 2^61 − 1.
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// An element of GF(2^61 − 1), stored in canonical form `0 <= value < p`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Fp(u64);

impl Fp {
    /// The additive identity.
    pub const ZERO: Fp = Fp(0);
    /// The multiplicative identity.
    pub const ONE: Fp = Fp(1);

    /// Creates a field element, reducing `x` modulo p.
    pub fn new(x: u64) -> Fp {
        Fp(x % MODULUS)
    }

    /// Returns the canonical representative in `0..p`.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Reduces a 128-bit intermediate product modulo the Mersenne prime.
    #[inline]
    fn reduce128(x: u128) -> u64 {
        // Split into low 61 bits and the rest; since p = 2^61 - 1,
        // 2^61 ≡ 1 (mod p), so x ≡ lo + hi (mod p).
        let lo = (x as u64) & MODULUS;
        let hi = (x >> 61) as u64;
        let mut s = lo + hi; // < 2^62 + 2^61 < 2^63, no overflow
        if s >= MODULUS {
            s -= MODULUS;
        }
        if s >= MODULUS {
            s -= MODULUS;
        }
        s
    }

    /// Raises `self` to the power `e` by square-and-multiply.
    pub fn pow(self, mut e: u64) -> Fp {
        let mut base = self;
        let mut acc = Fp::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem.
    ///
    /// Returns `None` for zero.
    pub fn inverse(self) -> Option<Fp> {
        if self.0 == 0 {
            None
        } else {
            Some(self.pow(MODULUS - 2))
        }
    }

    /// Batch inversion (Montgomery's trick): inverts every element of
    /// `xs` using a single field inversion plus 3(n−1) multiplications.
    ///
    /// # Panics
    ///
    /// Panics if any element is zero.
    pub fn batch_invert(xs: &mut [Fp]) {
        if xs.is_empty() {
            return;
        }
        let mut prefix = Vec::with_capacity(xs.len());
        let mut acc = Fp::ONE;
        for &x in xs.iter() {
            assert!(x != Fp::ZERO, "batch_invert: zero element");
            prefix.push(acc);
            acc *= x;
        }
        let mut inv = acc.inverse().expect("product of nonzero elements");
        for i in (0..xs.len()).rev() {
            let orig = xs[i];
            xs[i] = inv * prefix[i];
            inv *= orig;
        }
    }
}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp({})", self.0)
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Fp {
    fn from(x: u64) -> Fp {
        Fp::new(x)
    }
}

impl From<Fp> for u64 {
    fn from(x: Fp) -> u64 {
        x.0
    }
}

impl Add for Fp {
    type Output = Fp;
    fn add(self, rhs: Fp) -> Fp {
        let mut s = self.0 + rhs.0;
        if s >= MODULUS {
            s -= MODULUS;
        }
        Fp(s)
    }
}

impl Sub for Fp {
    type Output = Fp;
    fn sub(self, rhs: Fp) -> Fp {
        let s = if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + MODULUS - rhs.0
        };
        Fp(s)
    }
}

impl Mul for Fp {
    type Output = Fp;
    fn mul(self, rhs: Fp) -> Fp {
        Fp(Fp::reduce128(self.0 as u128 * rhs.0 as u128))
    }
}

impl Neg for Fp {
    type Output = Fp;
    fn neg(self) -> Fp {
        if self.0 == 0 {
            self
        } else {
            Fp(MODULUS - self.0)
        }
    }
}

impl AddAssign for Fp {
    fn add_assign(&mut self, rhs: Fp) {
        *self = *self + rhs;
    }
}

impl SubAssign for Fp {
    fn sub_assign(&mut self, rhs: Fp) {
        *self = *self - rhs;
    }
}

impl MulAssign for Fp {
    fn mul_assign(&mut self, rhs: Fp) {
        *self = *self * rhs;
    }
}

impl Sum for Fp {
    fn sum<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ZERO, |a, b| a + b)
    }
}

impl Product for Fp {
    fn product<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Fp::new(MODULUS), Fp::ZERO);
        assert_eq!(Fp::new(MODULUS + 5), Fp::new(5));
        assert_eq!(Fp::new(u64::MAX).value(), u64::MAX % MODULUS);
    }

    #[test]
    fn add_wraps_at_modulus() {
        let a = Fp::new(MODULUS - 1);
        assert_eq!(a + Fp::ONE, Fp::ZERO);
        assert_eq!(a + Fp::new(2), Fp::ONE);
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!(Fp::ZERO - Fp::ONE, Fp::new(MODULUS - 1));
    }

    #[test]
    fn neg_is_additive_inverse() {
        for x in [0u64, 1, 2, MODULUS - 1, 123456789] {
            let a = Fp::new(x);
            assert_eq!(a + (-a), Fp::ZERO);
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = Fp::new(3);
        let mut acc = Fp::ONE;
        for e in 0..20u64 {
            assert_eq!(a.pow(e), acc);
            acc *= a;
        }
    }

    #[test]
    fn fermat_exponent_is_identity() {
        // a^(p-1) = 1 for a != 0.
        for x in [1u64, 2, 31337, MODULUS - 1] {
            assert_eq!(Fp::new(x).pow(MODULUS - 1), Fp::ONE);
        }
    }

    #[test]
    fn batch_invert_matches_single() {
        let mut xs: Vec<Fp> = (1..50u64).map(Fp::new).collect();
        let expect: Vec<Fp> = xs.iter().map(|x| x.inverse().unwrap()).collect();
        Fp::batch_invert(&mut xs);
        assert_eq!(xs, expect);
    }

    #[test]
    fn batch_invert_empty_is_ok() {
        let mut xs: Vec<Fp> = vec![];
        Fp::batch_invert(&mut xs);
        assert!(xs.is_empty());
    }

    #[test]
    #[should_panic(expected = "zero element")]
    fn batch_invert_rejects_zero() {
        let mut xs = vec![Fp::ONE, Fp::ZERO];
        Fp::batch_invert(&mut xs);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert_eq!(format!("{}", Fp::new(7)), "7");
        assert_eq!(format!("{:?}", Fp::new(7)), "Fp(7)");
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in 0..MODULUS, b in 0..MODULUS) {
            prop_assert_eq!(Fp(a) + Fp(b), Fp(b) + Fp(a));
        }

        #[test]
        fn prop_mul_distributes(a in 0..MODULUS, b in 0..MODULUS, c in 0..MODULUS) {
            let (a, b, c) = (Fp(a), Fp(b), Fp(c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_inverse_roundtrip(a in 1..MODULUS) {
            let a = Fp(a);
            prop_assert_eq!(a * a.inverse().unwrap(), Fp::ONE);
        }

        #[test]
        fn prop_sub_is_add_neg(a in 0..MODULUS, b in 0..MODULUS) {
            prop_assert_eq!(Fp(a) - Fp(b), Fp(a) + (-Fp(b)));
        }

        #[test]
        fn prop_reduce_is_canonical(a in any::<u64>(), b in any::<u64>()) {
            let p = Fp::new(a) * Fp::new(b);
            prop_assert!(p.value() < MODULUS);
            // Cross-check against u128 arithmetic.
            let expect = ((a % MODULUS) as u128 * (b % MODULUS) as u128 % MODULUS as u128) as u64;
            prop_assert_eq!(p.value(), expect);
        }
    }
}
