#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Finite-field arithmetic for the `fair-protocols` workspace.
//!
//! Two concrete fields are provided:
//!
//! * [`Fp`] — the prime field GF(p) for the Mersenne prime p = 2^61 − 1.
//!   This is the field over which the information-theoretic MACs and the
//!   Shamir/additive secret-sharing schemes in `fair-crypto` operate.
//! * [`Gf256`] — the byte field GF(2^8) with the AES polynomial, used for
//!   byte-wise sharing of arbitrary bit strings.
//!
//! In addition, [`poly`] implements dense polynomials over [`Fp`] with
//! evaluation, arithmetic and Lagrange interpolation, which back the Shamir
//! scheme and the polynomial MAC.
//!
//! # Examples
//!
//! ```
//! use fair_field::Fp;
//!
//! let a = Fp::new(17);
//! let b = Fp::new(5);
//! assert_eq!((a + b).value(), 22);
//! assert_eq!((a * b.inverse().expect("nonzero")) * b, a);
//! ```

mod gf256;
mod mersenne;
pub mod poly;

pub use gf256::Gf256;
pub use mersenne::{Fp, MODULUS};
pub use poly::Poly;

/// A minimal abstraction over the fields used in this workspace.
///
/// The trait is deliberately small: the secret-sharing and MAC code in
/// `fair-crypto` only needs a commutative ring with inverses, sampling, and
/// canonical zero/one elements.
pub trait Field:
    Copy
    + Clone
    + Eq
    + core::fmt::Debug
    + core::ops::Add<Output = Self>
    + core::ops::Sub<Output = Self>
    + core::ops::Mul<Output = Self>
    + core::ops::Neg<Output = Self>
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;

    /// Multiplicative inverse; `None` for zero.
    fn inverse(&self) -> Option<Self>;

    /// Deterministically map a `u64` into the field (used for seeding and
    /// for rejection-free sampling from external RNG output).
    fn from_u64(x: u64) -> Self;
}

impl Field for Fp {
    const ZERO: Self = Fp::ZERO;
    const ONE: Self = Fp::ONE;

    fn inverse(&self) -> Option<Self> {
        Fp::inverse(*self)
    }

    fn from_u64(x: u64) -> Self {
        Fp::new(x)
    }
}

impl Field for Gf256 {
    const ZERO: Self = Gf256::ZERO;
    const ONE: Self = Gf256::ONE;

    fn inverse(&self) -> Option<Self> {
        Gf256::inverse(*self)
    }

    fn from_u64(x: u64) -> Self {
        Gf256::new(x as u8)
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[allow(clippy::eq_op)] // a − a = 0 is exactly the axiom under test
    fn field_laws<F: Field>(a: F, b: F, c: F) {
        assert_eq!(a + b, b + a);
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!(a * b, b * a);
        assert_eq!((a * b) * c, a * (b * c));
        assert_eq!(a * (b + c), a * b + a * c);
        assert_eq!(a + F::ZERO, a);
        assert_eq!(a * F::ONE, a);
        assert_eq!(a - a, F::ZERO);
        if a != F::ZERO {
            let inv = a.inverse().expect("nonzero element has an inverse");
            assert_eq!(a * inv, F::ONE);
        }
    }

    #[test]
    fn laws_hold_for_both_fields() {
        field_laws(Fp::new(123456789), Fp::new(987654321), Fp::new(31337));
        field_laws(Gf256::new(0x53), Gf256::new(0xca), Gf256::new(0x01));
    }

    #[test]
    fn zero_has_no_inverse() {
        assert!(Field::inverse(&Fp::ZERO).is_none());
        assert!(Field::inverse(&Gf256::ZERO).is_none());
    }
}
