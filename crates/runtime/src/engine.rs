//! The synchronous execution engine.
//!
//! One call to [`execute`] runs a complete protocol execution in the style
//! of Canetti's synchronous model with guaranteed termination: fixed rounds,
//! bilateral secure channels, a consistent broadcast channel, hybrid
//! functionalities, and a rushing, adaptively-corrupting adversary.
//!
//! # Round schedule
//!
//! For each round `r`:
//!
//! 1. Messages sent in round `r − 1` are delivered.
//! 2. Honest parties process their inboxes and produce outgoing messages
//!    (buffered, not yet released).
//! 3. The adversary runs: it sees corrupted parties' inboxes and — by
//!    rushing — every honest message addressed to a corrupted party or
//!    broadcast; it may adaptively corrupt, fork corrupted machines, and
//!    inject messages for corrupted parties.
//! 4. All released messages are routed; functionalities consume the round's
//!    messages and emit replies for round `r + 1`.
//!
//! The execution ends when every honest party has decided an output, or
//! after `max_rounds`.

use std::collections::{BTreeMap, BTreeSet};

use fair_trace::{debug_len, Dst, NoopTracer, Src, TraceEvent, Tracer};
use rand::rngs::StdRng;

use crate::adversary::{AdvControl, Adversary, RoundView};
use crate::error::EngineError;
use crate::func::{FuncCtx, Functionality, Ledger};
use crate::msg::{Destination, Endpoint, Envelope, FuncId, OutMsg, PartyId};
use crate::party::{Party, RoundCtx};
use crate::value::Value;

/// A protocol instance ready to execute: the party machines (with their
/// inputs baked in) and the hybrid functionalities they may call.
pub struct Instance<M> {
    /// Party state machines, index = party id.
    pub parties: Vec<Box<dyn Party<M>>>,
    /// Hybrid functionalities, index = [`FuncId`].
    pub funcs: Vec<Box<dyn Functionality<M>>>,
}

impl<M> core::fmt::Debug for Instance<M> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Instance")
            .field("parties", &self.parties.len())
            .field("funcs", &self.funcs.len())
            .finish()
    }
}

/// The result of one execution.
#[derive(Clone, Debug)]
pub struct ExecutionResult {
    /// Outputs of the parties that finished the protocol *honestly*
    /// (corrupted parties have no entry).
    pub outputs: BTreeMap<PartyId, Value>,
    /// The final corruption set.
    pub corrupted: BTreeSet<PartyId>,
    /// The value the adversary claims to have learned.
    pub learned: Option<Value>,
    /// Ground-truth facts recorded by functionalities.
    pub ledger: Ledger,
    /// Rounds actually executed.
    pub rounds: usize,
}

impl ExecutionResult {
    /// Number of parties that ran honestly to the end.
    pub fn honest_count(&self) -> usize {
        self.outputs.len()
    }

    /// Whether every honest party produced a non-⊥ output.
    pub fn all_honest_got_output(&self) -> bool {
        !self.outputs.is_empty() && self.outputs.values().all(|v| !v.is_bot())
    }

    /// Whether every honest party output exactly `v`.
    pub fn all_honest_output(&self, v: &Value) -> bool {
        !self.outputs.is_empty() && self.outputs.values().all(|o| o == v)
    }
}

/// Hard cap on rounds used when callers pass `max_rounds = 0`.
pub const DEFAULT_MAX_ROUNDS: usize = 10_000;

/// Executes `instance` against `adversary`.
///
/// `rng` drives *all* randomness (parties pre-draw theirs at construction;
/// functionalities and the adversary draw here), so executions are exactly
/// reproducible from a seed.
///
/// # Errors
///
/// Returns an [`EngineError`] when the adversary corrupts a nonexistent
/// party, when a message is routed to a functionality the instance lacks,
/// or when an engine-internal invariant breaks. Malformed adversarial input
/// is a typed error, never a panic.
pub fn execute<M: Clone + core::fmt::Debug>(
    instance: Instance<M>,
    adversary: &mut dyn Adversary<M>,
    rng: &mut StdRng,
    max_rounds: usize,
) -> Result<ExecutionResult, EngineError> {
    execute_traced(instance, adversary, rng, max_rounds, &mut NoopTracer)
}

/// The traced message source for an engine endpoint.
fn trace_src(e: Endpoint) -> Src {
    match e {
        Endpoint::Party(p) => Src::Party(p.0),
        Endpoint::Func(f) => Src::Func(f.0),
        Endpoint::Adversary => Src::Adversary,
    }
}

/// The traced destination for an engine destination (broadcasts are traced
/// once, before fan-out).
fn trace_dst(d: Destination) -> Dst {
    match d {
        Destination::Party(p) => Dst::Party(p.0),
        Destination::Func(f) => Dst::Func(f.0),
        Destination::Adversary => Dst::Adversary,
        Destination::All => Dst::Broadcast,
    }
}

/// [`execute`], observed through a [`Tracer`].
///
/// Every emission site is guarded by `if T::ENABLED`, a compile-time
/// constant, so with [`NoopTracer`] this monomorphizes to exactly the
/// untraced engine: no event is built, no corruption set is snapshotted,
/// no message is measured. [`execute`] itself is that instantiation.
///
/// # Errors
///
/// Identical to [`execute`] — tracing observes the execution and never
/// changes its outcome.
pub fn execute_traced<M: Clone + core::fmt::Debug, T: Tracer>(
    instance: Instance<M>,
    adversary: &mut dyn Adversary<M>,
    rng: &mut StdRng,
    max_rounds: usize,
    tracer: &mut T,
) -> Result<ExecutionResult, EngineError> {
    let max_rounds = if max_rounds == 0 {
        DEFAULT_MAX_ROUNDS
    } else {
        max_rounds
    };
    let n = instance.parties.len();
    let mut honest: Vec<Option<Box<dyn Party<M>>>> =
        instance.parties.into_iter().map(Some).collect();
    let mut funcs = instance.funcs;

    let mut corrupted: BTreeSet<PartyId> = BTreeSet::new();
    let mut pool: BTreeMap<PartyId, Box<dyn Party<M>>> = BTreeMap::new();
    for pid in adversary.initial_corruptions(n, rng) {
        if pid.0 >= n {
            return Err(EngineError::CorruptOutOfRange { party: pid, n });
        }
        if corrupted.insert(pid) {
            let machine = honest[pid.0]
                .take()
                .ok_or(EngineError::Internal("initial corruption machine taken"))?;
            pool.insert(pid, machine);
            if T::ENABLED {
                tracer.event(&TraceEvent::Corrupt {
                    party: pid.0,
                    round: 0,
                });
            }
        }
    }

    let mut ledger = Ledger::new();
    let mut pending: Vec<Envelope<M>> = Vec::new();
    let mut rounds_used = 0;

    for round in 0..max_rounds {
        rounds_used = round;
        if T::ENABLED {
            tracer.event(&TraceEvent::RoundStart { round });
        }

        // 1. Partition this round's deliveries.
        let mut inboxes: BTreeMap<PartyId, Vec<Envelope<M>>> = BTreeMap::new();
        let mut func_in: Vec<Vec<Envelope<M>>> = (0..funcs.len()).map(|_| Vec::new()).collect();
        let mut adv_delivered: Vec<Envelope<M>> = Vec::new();
        for env in pending.drain(..) {
            match env.to {
                Destination::Party(p) => {
                    if corrupted.contains(&p) {
                        adv_delivered.push(env.clone());
                    }
                    inboxes.entry(p).or_default().push(env);
                }
                Destination::Func(f) => func_in[f.0].push(env),
                Destination::Adversary => adv_delivered.push(env),
                // Broadcasts are expanded at send time; a pending broadcast
                // envelope would be an engine bug.
                Destination::All => {
                    return Err(EngineError::Internal("undelivered broadcast envelope"))
                }
            }
        }

        // 2. Honest parties run.
        let mut honest_out: Vec<(PartyId, OutMsg<M>)> = Vec::new();
        let mut all_honest_done = true;
        #[allow(clippy::needless_range_loop)] // i is a PartyId, not just an index
        for i in 0..n {
            let pid = PartyId(i);
            if corrupted.contains(&pid) {
                continue;
            }
            let machine = honest[i]
                .as_mut()
                .ok_or(EngineError::Internal("honest machine missing in round"))?;
            if machine.output().is_some() {
                continue;
            }
            all_honest_done = false;
            let ctx = RoundCtx { id: pid, n, round };
            let inbox = inboxes.get(&pid).map(Vec::as_slice).unwrap_or(&[]);
            for out in machine.round(&ctx, inbox) {
                honest_out.push((pid, out));
            }
        }

        // If every honest party had already decided before this round, stop
        // (corrupted-only executions stop immediately at the first round in
        // which nothing honest remains pending).
        if all_honest_done && corrupted.len() < n {
            break;
        }

        // 3. Adversary step (rushing).
        let rushing: Vec<Envelope<M>> = honest_out
            .iter()
            .filter(|(_, m)| match m.to {
                Destination::Party(q) => corrupted.contains(&q),
                Destination::All => true,
                Destination::Adversary => true,
                Destination::Func(_) => false,
            })
            .map(|(p, m)| Envelope {
                from: Endpoint::Party(*p),
                to: m.to,
                msg: m.msg.clone(),
            })
            .collect();
        // Snapshot the corruption set so adaptive corruptions made inside
        // `on_round` can be traced afterwards (empty — allocation-free —
        // when tracing is disabled).
        let pre_corrupted = if T::ENABLED {
            corrupted.clone()
        } else {
            BTreeSet::new()
        };
        let mut sends: Vec<(Endpoint, OutMsg<M>)>;
        {
            let view = RoundView {
                round,
                n,
                delivered: &adv_delivered,
                rushing: &rushing,
            };
            let mut ctrl = AdvControl {
                round,
                n,
                corrupted: &mut corrupted,
                honest: &mut honest,
                pool: &mut pool,
                honest_out: &mut honest_out,
                inboxes: &inboxes,
                sends: Vec::new(),
            };
            adversary.on_round(&view, &mut ctrl, rng);
            sends = ctrl.sends;
        }
        if T::ENABLED {
            for pid in corrupted.difference(&pre_corrupted) {
                tracer.event(&TraceEvent::Corrupt {
                    party: pid.0,
                    round,
                });
            }
        }
        if corrupted.len() == n {
            // Nobody honest is left; the execution is over.
            break;
        }

        // 4. Route all released messages.
        for (pid, out) in honest_out {
            sends.push((Endpoint::Party(pid), out));
        }
        let mut func_now: Vec<Vec<Envelope<M>>> = (0..funcs.len()).map(|_| Vec::new()).collect();
        for (from, out) in sends {
            if T::ENABLED {
                tracer.event(&TraceEvent::Send {
                    from: trace_src(from),
                    to: trace_dst(out.to),
                    len: debug_len(&out.msg),
                });
            }
            match out.to {
                Destination::All => {
                    for q in 0..n {
                        pending.push(Envelope {
                            from,
                            to: Destination::Party(PartyId(q)),
                            msg: out.msg.clone(),
                        });
                    }
                }
                Destination::Party(_) | Destination::Adversary => {
                    pending.push(Envelope {
                        from,
                        to: out.to,
                        msg: out.msg,
                    });
                }
                Destination::Func(f) => {
                    if f.0 >= funcs.len() {
                        return Err(EngineError::UnknownFunctionality {
                            func: f,
                            funcs: funcs.len(),
                        });
                    }
                    func_now[f.0].push(Envelope {
                        from,
                        to: out.to,
                        msg: out.msg,
                    });
                }
            }
        }

        // 5. Functionalities consume this round's messages (delivered to
        //    them within the round) and reply next round.
        for (fi, func) in funcs.iter_mut().enumerate() {
            // Messages delivered from last round (func_in) and sent this
            // round (func_now) are both visible now: functionalities react
            // within the round they are invoked.
            let mut incoming = core::mem::take(&mut func_in[fi]);
            incoming.append(&mut func_now[fi]);
            if T::ENABLED && !incoming.is_empty() {
                tracer.event(&TraceEvent::FuncCall {
                    func: fi,
                    round,
                    msgs: incoming.len(),
                });
            }
            let mut ctx = FuncCtx {
                round,
                n,
                corrupted: &corrupted,
                ledger: &mut ledger,
                rng,
            };
            for out in func.on_round(&mut ctx, &incoming) {
                if T::ENABLED {
                    tracer.event(&TraceEvent::Send {
                        from: Src::Func(fi),
                        to: trace_dst(out.to),
                        len: debug_len(&out.msg),
                    });
                }
                match out.to {
                    Destination::All => {
                        for q in 0..n {
                            pending.push(Envelope {
                                from: Endpoint::Func(FuncId(fi)),
                                to: Destination::Party(PartyId(q)),
                                msg: out.msg.clone(),
                            });
                        }
                    }
                    _ => pending.push(Envelope {
                        from: Endpoint::Func(FuncId(fi)),
                        to: out.to,
                        msg: out.msg,
                    }),
                }
            }
        }
    }

    let mut outputs = BTreeMap::new();
    #[allow(clippy::needless_range_loop)] // i is a PartyId, not just an index
    for i in 0..n {
        let pid = PartyId(i);
        if corrupted.contains(&pid) {
            continue;
        }
        let machine = honest[i]
            .as_ref()
            .ok_or(EngineError::Internal("honest machine missing at output"))?;
        let v = machine.output().unwrap_or(Value::Bot);
        if T::ENABLED {
            tracer.event(&TraceEvent::Output {
                party: i,
                bot: v.is_bot(),
            });
        }
        outputs.insert(pid, v);
    }
    if T::ENABLED {
        tracer.event(&TraceEvent::End {
            rounds: rounds_used,
        });
    }

    Ok(ExecutionResult {
        outputs,
        corrupted,
        learned: adversary.learned(),
        ledger,
        rounds: rounds_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Passive;
    use rand::SeedableRng;

    /// Two parties exchange their inputs and output the pair.
    #[derive(Clone, Debug)]
    struct Swapper {
        input: u64,
        got: Option<u64>,
    }

    impl Party<u64> for Swapper {
        fn round(&mut self, ctx: &RoundCtx, inbox: &[Envelope<u64>]) -> Vec<OutMsg<u64>> {
            match ctx.round {
                0 => {
                    let other = PartyId(1 - ctx.id.0);
                    vec![OutMsg::to_party(other, self.input)]
                }
                _ => {
                    if self.got.is_none() {
                        self.got = inbox.first().map(|e| e.msg);
                        if self.got.is_none() {
                            // Counterparty silent: abort.
                            self.got = Some(u64::MAX);
                        }
                    }
                    vec![]
                }
            }
        }

        fn output(&self) -> Option<Value> {
            self.got.map(|v| {
                if v == u64::MAX {
                    Value::Bot
                } else {
                    Value::Scalar(v)
                }
            })
        }

        fn clone_box(&self) -> Box<dyn Party<u64>> {
            Box::new(self.clone())
        }
    }

    fn swap_instance() -> Instance<u64> {
        Instance {
            parties: vec![
                Box::new(Swapper {
                    input: 10,
                    got: None,
                }),
                Box::new(Swapper {
                    input: 20,
                    got: None,
                }),
            ],
            funcs: vec![],
        }
    }

    #[test]
    fn passive_execution_swaps_inputs() {
        let mut rng = StdRng::seed_from_u64(0);
        let res = execute(swap_instance(), &mut Passive, &mut rng, 10).expect("execution succeeds");
        assert_eq!(res.outputs[&PartyId(0)], Value::Scalar(20));
        assert_eq!(res.outputs[&PartyId(1)], Value::Scalar(10));
        assert!(res.corrupted.is_empty());
        assert!(res.all_honest_got_output());
    }

    /// Corrupts p1 at the start, stays silent: p2 must abort.
    struct SilentCorruptor;

    impl Adversary<u64> for SilentCorruptor {
        fn initial_corruptions(&mut self, _n: usize, _rng: &mut StdRng) -> Vec<PartyId> {
            vec![PartyId(0)]
        }

        fn on_round(
            &mut self,
            _view: &RoundView<'_, u64>,
            _ctrl: &mut AdvControl<'_, u64>,
            _rng: &mut StdRng,
        ) {
        }
    }

    #[test]
    fn silent_corruption_forces_abort_output() {
        let mut rng = StdRng::seed_from_u64(0);
        let res = execute(swap_instance(), &mut SilentCorruptor, &mut rng, 10)
            .expect("execution succeeds");
        assert_eq!(res.outputs.len(), 1);
        assert_eq!(res.outputs[&PartyId(1)], Value::Bot);
        assert!(res.corrupted.contains(&PartyId(0)));
    }

    /// Rushing adversary: corrupts p1, reads p2's round-0 message via
    /// rushing, learns it, and still completes the protocol for p2.
    #[derive(Default)]
    struct RushingReader {
        seen: Option<u64>,
    }

    impl Adversary<u64> for RushingReader {
        fn initial_corruptions(&mut self, _n: usize, _rng: &mut StdRng) -> Vec<PartyId> {
            vec![PartyId(0)]
        }

        fn on_round(
            &mut self,
            view: &RoundView<'_, u64>,
            ctrl: &mut AdvControl<'_, u64>,
            _rng: &mut StdRng,
        ) {
            if view.round == 0 {
                // Rushing: p2's input is already visible this round.
                self.seen = view.rushing.first().map(|e| e.msg);
                assert!(self.seen.is_some(), "rushing view must show p2's message");
                // Send the corrupted party's message anyway.
                ctrl.send_as(PartyId(0), OutMsg::to_party(PartyId(1), 999));
            }
        }

        fn learned(&self) -> Option<Value> {
            self.seen.map(Value::Scalar)
        }
    }

    #[test]
    fn rushing_view_shows_same_round_messages() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut adv = RushingReader::default();
        let res = execute(swap_instance(), &mut adv, &mut rng, 10).expect("execution succeeds");
        assert_eq!(res.learned, Some(Value::Scalar(20)));
        // p2 received the injected message.
        assert_eq!(res.outputs[&PartyId(1)], Value::Scalar(999));
    }

    /// Adaptive corruption: waits one round, then corrupts p2 and retracts
    /// nothing (p2 already sent in round 0).
    struct LateCorruptor {
        grabbed_state: bool,
    }

    impl Adversary<u64> for LateCorruptor {
        fn initial_corruptions(&mut self, _n: usize, _rng: &mut StdRng) -> Vec<PartyId> {
            vec![]
        }

        fn on_round(
            &mut self,
            view: &RoundView<'_, u64>,
            ctrl: &mut AdvControl<'_, u64>,
            _rng: &mut StdRng,
        ) {
            if view.round == 1 {
                let grant = ctrl.corrupt(PartyId(1)).expect("p2 was honest");
                // p2 processed round 1 already: its inbox held p1's input.
                assert_eq!(grant.inbox.len(), 1);
                // Fork the machine and check it has decided.
                let fork = ctrl.machine(PartyId(1)).clone_box();
                self.grabbed_state = fork.output().is_some();
            }
        }
    }

    #[test]
    fn adaptive_corruption_hands_over_live_state() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut adv = LateCorruptor {
            grabbed_state: false,
        };
        let res = execute(swap_instance(), &mut adv, &mut rng, 10).expect("execution succeeds");
        assert!(adv.grabbed_state);
        // p1 remains honest and got its output before the corruption.
        assert_eq!(res.outputs[&PartyId(0)], Value::Scalar(20));
        assert!(!res.outputs.contains_key(&PartyId(1)));
    }

    #[test]
    fn all_corrupted_execution_terminates_immediately() {
        struct All;
        impl Adversary<u64> for All {
            fn initial_corruptions(&mut self, n: usize, _rng: &mut StdRng) -> Vec<PartyId> {
                (0..n).map(PartyId).collect()
            }
            fn on_round(
                &mut self,
                _v: &RoundView<'_, u64>,
                _c: &mut AdvControl<'_, u64>,
                _r: &mut StdRng,
            ) {
            }
        }
        let mut rng = StdRng::seed_from_u64(0);
        let res = execute(swap_instance(), &mut All, &mut rng, 10).expect("execution succeeds");
        assert!(res.outputs.is_empty());
        assert_eq!(res.corrupted.len(), 2);
        assert_eq!(res.rounds, 0);
    }

    #[test]
    fn max_rounds_caps_runaway_protocols() {
        /// Never outputs.
        #[derive(Clone, Debug)]
        struct Loop;
        impl Party<u64> for Loop {
            fn round(&mut self, _c: &RoundCtx, _i: &[Envelope<u64>]) -> Vec<OutMsg<u64>> {
                vec![]
            }
            fn output(&self) -> Option<Value> {
                None
            }
            fn clone_box(&self) -> Box<dyn Party<u64>> {
                Box::new(self.clone())
            }
        }
        let inst = Instance {
            parties: vec![Box::new(Loop), Box::new(Loop)],
            funcs: vec![],
        };
        let mut rng = StdRng::seed_from_u64(0);
        let res = execute(inst, &mut Passive, &mut rng, 7).expect("execution succeeds");
        assert_eq!(res.rounds, 6);
        assert!(res.outputs.values().all(|v| v.is_bot()));
    }

    #[test]
    fn traced_execution_pins_the_event_stream() {
        use fair_trace::RecordingTracer;
        let mut rng = StdRng::seed_from_u64(0);
        let mut tracer = RecordingTracer::with_ring(64);
        let res = execute_traced(
            swap_instance(),
            &mut SilentCorruptor,
            &mut rng,
            10,
            &mut tracer,
        )
        .expect("execution succeeds");
        let stats = tracer.stats();
        assert_eq!(stats.corruptions, 1);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.bots, 1);
        assert_eq!(stats.rounds, res.rounds as u64);
        let lines: Vec<String> = tracer
            .into_transcript(0)
            .events
            .iter()
            .map(|e| e.render())
            .collect();
        // p0 is corrupted up front and stays silent; p1 sends its input in
        // round 0 (debug_len of `20u64` is 2 bytes), waits one round for a
        // reply that never comes, and aborts with ⊥.
        assert_eq!(
            lines,
            vec![
                "corrupt p0 round=0",
                "round 0",
                "send from=p1 to=p0 len=2",
                "round 1",
                "round 2",
                "output p1 bot=true",
                "end rounds=2",
            ]
        );
    }

    #[test]
    fn traced_and_untraced_executions_agree() {
        use fair_trace::{NoopTracer, RecordingTracer};
        for seed in 0..8 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let mut r3 = StdRng::seed_from_u64(seed);
            let plain = execute(swap_instance(), &mut RushingReader::default(), &mut r1, 10);
            let noop = execute_traced(
                swap_instance(),
                &mut RushingReader::default(),
                &mut r2,
                10,
                &mut NoopTracer,
            );
            let mut rec = RecordingTracer::with_ring(256);
            let traced = execute_traced(
                swap_instance(),
                &mut RushingReader::default(),
                &mut r3,
                10,
                &mut rec,
            );
            assert_eq!(format!("{plain:?}"), format!("{noop:?}"), "seed {seed}");
            assert_eq!(format!("{plain:?}"), format!("{traced:?}"), "seed {seed}");
        }
    }

    #[test]
    fn adaptive_corruptions_are_traced_in_their_round() {
        use fair_trace::{RecordingTracer, TraceEvent};
        let mut rng = StdRng::seed_from_u64(0);
        let mut adv = LateCorruptor {
            grabbed_state: false,
        };
        let mut tracer = RecordingTracer::with_ring(64);
        execute_traced(swap_instance(), &mut adv, &mut rng, 10, &mut tracer)
            .expect("execution succeeds");
        let t = tracer.into_transcript(0);
        assert!(
            t.events
                .contains(&TraceEvent::Corrupt { party: 1, round: 1 }),
            "the round-1 adaptive corruption of p2 must be traced"
        );
    }

    #[test]
    fn broadcast_reaches_every_party_identically() {
        /// p1 broadcasts its input; everyone outputs what they heard.
        #[derive(Clone, Debug)]
        struct Bc {
            input: Option<u64>,
            heard: Option<u64>,
        }
        impl Party<u64> for Bc {
            fn round(&mut self, ctx: &RoundCtx, inbox: &[Envelope<u64>]) -> Vec<OutMsg<u64>> {
                if ctx.round == 0 {
                    if let Some(x) = self.input {
                        return vec![OutMsg::broadcast(x)];
                    }
                } else if self.heard.is_none() {
                    self.heard = inbox.first().map(|e| e.msg).or(Some(u64::MAX));
                }
                vec![]
            }
            fn output(&self) -> Option<Value> {
                self.heard.map(Value::Scalar)
            }
            fn clone_box(&self) -> Box<dyn Party<u64>> {
                Box::new(self.clone())
            }
        }
        let inst = Instance {
            parties: vec![
                Box::new(Bc {
                    input: Some(42),
                    heard: None,
                }),
                Box::new(Bc {
                    input: None,
                    heard: None,
                }),
                Box::new(Bc {
                    input: None,
                    heard: None,
                }),
            ],
            funcs: vec![],
        };
        let mut rng = StdRng::seed_from_u64(0);
        let res = execute(inst, &mut Passive, &mut rng, 10).expect("execution succeeds");
        for i in 0..3 {
            assert_eq!(res.outputs[&PartyId(i)], Value::Scalar(42), "party {i}");
        }
    }
}
