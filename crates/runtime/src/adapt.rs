//! Embedding a functionality written against its own message type into a
//! protocol with a richer message enum.
//!
//! Reusable functionalities (the SFE hybrids in `fair-sfe`, the triple
//! dealer, ShareGen) each define their own message enum `MI`. A protocol
//! whose wire type is `MO` embeds such a functionality by providing the two
//! conversion functions — typically `MO` has a variant wrapping `MI`.

use crate::func::{FuncCtx, Functionality};
use crate::msg::{Envelope, OutMsg};

/// Wraps a `Functionality<MI>` as a `Functionality<MO>`.
pub struct Adapted<MO, MI, F> {
    inner: F,
    down: fn(&MO) -> Option<MI>,
    up: fn(MI) -> MO,
    _marker: core::marker::PhantomData<fn() -> (MO, MI)>,
}

impl<MO, MI, F> Adapted<MO, MI, F> {
    /// Creates the adapter. `down` extracts the inner message from an outer
    /// one (returning `None` for messages not addressed to this
    /// functionality, which are dropped); `up` wraps replies.
    pub fn new(inner: F, down: fn(&MO) -> Option<MI>, up: fn(MI) -> MO) -> Self {
        Adapted {
            inner,
            down,
            up,
            _marker: core::marker::PhantomData,
        }
    }

    /// Access to the wrapped functionality.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<MO, MI, F> Functionality<MO> for Adapted<MO, MI, F>
where
    F: Functionality<MI>,
{
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_round(&mut self, ctx: &mut FuncCtx<'_>, incoming: &[Envelope<MO>]) -> Vec<OutMsg<MO>> {
        let translated: Vec<Envelope<MI>> = incoming
            .iter()
            .filter_map(|e| {
                (self.down)(&e.msg).map(|m| Envelope {
                    from: e.from,
                    to: e.to,
                    msg: m,
                })
            })
            .collect();
        self.inner
            .on_round(ctx, &translated)
            .into_iter()
            .map(|o| OutMsg {
                to: o.to,
                msg: (self.up)(o.msg),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Ledger;
    use crate::msg::{Destination, Endpoint, PartyId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    /// Echoes every u64 back to its sender, doubled.
    struct Doubler;

    impl Functionality<u64> for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }

        fn on_round(
            &mut self,
            _ctx: &mut FuncCtx<'_>,
            incoming: &[Envelope<u64>],
        ) -> Vec<OutMsg<u64>> {
            incoming
                .iter()
                .filter_map(|e| e.from_party().map(|p| OutMsg::to_party(p, e.msg * 2)))
                .collect()
        }
    }

    #[derive(Clone, PartialEq, Debug)]
    enum Outer {
        Num(u64),
        Other(&'static str),
    }

    fn down(m: &Outer) -> Option<u64> {
        match m {
            Outer::Num(x) => Some(*x),
            Outer::Other(_) => None,
        }
    }

    #[test]
    fn adapter_translates_both_ways_and_drops_foreign_messages() {
        let mut adapted = Adapted::new(Doubler, down, Outer::Num);
        assert_eq!(Functionality::<Outer>::name(&adapted), "doubler");
        let mut ledger = Ledger::new();
        let corrupted = BTreeSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = FuncCtx {
            round: 0,
            n: 2,
            corrupted: &corrupted,
            ledger: &mut ledger,
            rng: &mut rng,
        };
        let incoming = vec![
            Envelope {
                from: Endpoint::Party(PartyId(0)),
                to: Destination::Func(crate::msg::FuncId(0)),
                msg: Outer::Num(21),
            },
            Envelope {
                from: Endpoint::Party(PartyId(1)),
                to: Destination::Func(crate::msg::FuncId(0)),
                msg: Outer::Other("ignored"),
            },
        ];
        let out = adapted.on_round(&mut ctx, &incoming);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, Destination::Party(PartyId(0)));
        assert_eq!(out[0].msg, Outer::Num(42));
    }
}
