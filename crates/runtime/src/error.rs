//! Typed errors for the execution engine.
//!
//! The engine's message-handling paths never panic on adversary-controlled
//! input (fairlint rule S2): a malformed corruption request or a message
//! addressed to a nonexistent functionality surfaces as an [`EngineError`]
//! from [`crate::execute`], and engine-internal invariant breaches are
//! reported as [`EngineError::Internal`] rather than unwrapped.

use crate::msg::{FuncId, PartyId};

/// An error aborting a protocol execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// The adversary requested corruption of a party outside `0..n`.
    CorruptOutOfRange {
        /// The requested party id.
        party: PartyId,
        /// Number of parties in the instance.
        n: usize,
    },
    /// A message was addressed to a functionality the instance lacks.
    UnknownFunctionality {
        /// The addressed functionality id.
        func: FuncId,
        /// Number of functionalities in the instance.
        funcs: usize,
    },
    /// An engine invariant was violated — a bug in the engine itself, not
    /// in the protocol or adversary under test.
    Internal(&'static str),
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::CorruptOutOfRange { party, n } => {
                write!(f, "corruption of nonexistent party {party} (n = {n})")
            }
            EngineError::UnknownFunctionality { func, funcs } => {
                write!(
                    f,
                    "message to nonexistent functionality {func} ({funcs} installed)"
                )
            }
            EngineError::Internal(what) => write!(f, "engine invariant violated: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            EngineError::CorruptOutOfRange {
                party: PartyId(7),
                n: 3
            }
            .to_string(),
            "corruption of nonexistent party p8 (n = 3)"
        );
        assert_eq!(
            EngineError::UnknownFunctionality {
                func: FuncId(2),
                funcs: 0
            }
            .to_string(),
            "message to nonexistent functionality F2 (0 installed)"
        );
        assert!(EngineError::Internal("x").to_string().contains("x"));
    }
}
