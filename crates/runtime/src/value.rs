//! The universal value type exchanged between protocols, functionalities and
//! the fairness harness.
//!
//! Protocol outputs in the paper are bit strings or ⊥; we add a scalar
//! variant for convenience (field elements, coin-toss results, indices) and
//! a pair for multi-component outputs.

use core::fmt;

/// A protocol input/output value.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// ⊥ — no output (abort).
    Bot,
    /// A scalar (field element, coin, index, …).
    Scalar(u64),
    /// An opaque bit string.
    Bytes(Vec<u8>),
    /// An ordered pair of values.
    Pair(Box<Value>, Box<Value>),
    /// An ordered tuple of values (used for per-party output vectors).
    Tuple(Vec<Value>),
}

impl Value {
    /// Convenience constructor for a pair.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Box::new(a), Box::new(b))
    }

    /// Whether this value is ⊥.
    pub fn is_bot(&self) -> bool {
        matches!(self, Value::Bot)
    }

    /// Extracts a scalar, if this is one.
    pub fn as_scalar(&self) -> Option<u64> {
        match self {
            Value::Scalar(x) => Some(*x),
            _ => None,
        }
    }

    /// Extracts the byte string, if this is one.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

impl Value {
    /// Canonical, injective byte encoding (tag byte + length-prefixed
    /// parts). Used wherever a value must be signed, MACed or committed to.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Parses a canonical encoding produced by [`Value::encode`]; `None`
    /// on malformed or trailing input.
    pub fn decode(bytes: &[u8]) -> Option<Value> {
        let (v, rest) = Value::decode_prefix(bytes)?;
        if rest.is_empty() {
            Some(v)
        } else {
            None
        }
    }

    fn decode_prefix(bytes: &[u8]) -> Option<(Value, &[u8])> {
        let (&tag, rest) = bytes.split_first()?;
        match tag {
            0 => Some((Value::Bot, rest)),
            1 => {
                if rest.len() < 8 {
                    return None;
                }
                let (x, rest) = rest.split_at(8);
                Some((Value::Scalar(u64::from_be_bytes(x.try_into().ok()?)), rest))
            }
            2 => {
                if rest.len() < 8 {
                    return None;
                }
                let (l, rest) = rest.split_at(8);
                let len = u64::from_be_bytes(l.try_into().ok()?) as usize;
                if rest.len() < len {
                    return None;
                }
                let (b, rest) = rest.split_at(len);
                Some((Value::Bytes(b.to_vec()), rest))
            }
            3 => {
                if rest.len() < 8 {
                    return None;
                }
                let (l, rest) = rest.split_at(8);
                let len = u64::from_be_bytes(l.try_into().ok()?) as usize;
                if rest.len() < len {
                    return None;
                }
                let (ea, rest) = rest.split_at(len);
                let a = Value::decode(ea)?;
                let (b, rest) = Value::decode_prefix(rest)?;
                Some((Value::pair(a, b), rest))
            }
            4 => {
                if rest.len() < 8 {
                    return None;
                }
                let (c, mut rest) = rest.split_at(8);
                let count = u64::from_be_bytes(c.try_into().ok()?) as usize;
                let mut vs = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    if rest.len() < 8 {
                        return None;
                    }
                    let (l, r) = rest.split_at(8);
                    let len = u64::from_be_bytes(l.try_into().ok()?) as usize;
                    if r.len() < len {
                        return None;
                    }
                    let (ev, r) = r.split_at(len);
                    vs.push(Value::decode(ev)?);
                    rest = r;
                }
                Some((Value::Tuple(vs), rest))
            }
            _ => None,
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Bot => out.push(0),
            Value::Scalar(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_be_bytes());
            }
            Value::Bytes(b) => {
                out.push(2);
                out.extend_from_slice(&(b.len() as u64).to_be_bytes());
                out.extend_from_slice(b);
            }
            Value::Pair(a, b) => {
                out.push(3);
                let ea = a.encode();
                out.extend_from_slice(&(ea.len() as u64).to_be_bytes());
                out.extend_from_slice(&ea);
                b.encode_into(out);
            }
            Value::Tuple(vs) => {
                out.push(4);
                out.extend_from_slice(&(vs.len() as u64).to_be_bytes());
                for v in vs {
                    let ev = v.encode();
                    out.extend_from_slice(&(ev.len() as u64).to_be_bytes());
                    out.extend_from_slice(&ev);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bot => write!(f, "⊥"),
            Value::Scalar(x) => write!(f, "{x}"),
            Value::Bytes(b) => {
                write!(f, "0x")?;
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                Ok(())
            }
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
            Value::Tuple(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Value {
        Value::Scalar(x)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Value {
        Value::Bytes(b)
    }
}

impl From<&[u8]> for Value {
    fn from(b: &[u8]) -> Value {
        Value::Bytes(b.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert!(Value::Bot.is_bot());
        assert!(!Value::Scalar(0).is_bot());
        assert_eq!(Value::Scalar(7).as_scalar(), Some(7));
        assert_eq!(Value::Bot.as_scalar(), None);
        assert_eq!(Value::Bytes(vec![1]).as_bytes(), Some(&[1u8][..]));
        assert_eq!(Value::Scalar(1).as_bytes(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Bot.to_string(), "⊥");
        assert_eq!(Value::Scalar(5).to_string(), "5");
        assert_eq!(Value::Bytes(vec![0xab, 0x01]).to_string(), "0xab01");
        assert_eq!(
            Value::pair(Value::Scalar(1), Value::Bot).to_string(),
            "(1, ⊥)"
        );
        assert_eq!(
            Value::Tuple(vec![Value::Scalar(1), Value::Scalar(2)]).to_string(),
            "(1, 2)"
        );
    }

    #[test]
    fn decode_inverts_encode() {
        let samples = vec![
            Value::Bot,
            Value::Scalar(u64::MAX),
            Value::Bytes(vec![]),
            Value::Bytes(vec![0, 1, 255]),
            Value::pair(Value::Bytes(vec![9]), Value::Scalar(1)),
            Value::pair(
                Value::pair(Value::Bot, Value::Scalar(2)),
                Value::Bytes(vec![3]),
            ),
            Value::Tuple(vec![]),
            Value::Tuple(vec![Value::Scalar(1), Value::Bot, Value::Bytes(vec![7, 7])]),
        ];
        for v in samples {
            assert_eq!(Value::decode(&v.encode()), Some(v.clone()), "{v}");
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(Value::decode(&[]), None);
        assert_eq!(Value::decode(&[9]), None, "unknown tag");
        assert_eq!(Value::decode(&[1, 0, 0]), None, "truncated scalar");
        let mut good = Value::Scalar(5).encode();
        good.push(0);
        assert_eq!(Value::decode(&good), None, "trailing bytes");
        assert_eq!(
            Value::decode(&[2, 0, 0, 0, 0, 0, 0, 0, 9, 1]),
            None,
            "short bytes body"
        );
    }

    #[test]
    fn encoding_is_injective_on_samples() {
        let samples = vec![
            Value::Bot,
            Value::Scalar(0),
            Value::Scalar(1),
            Value::Bytes(vec![]),
            Value::Bytes(vec![0]),
            Value::Bytes(vec![1]),
            Value::Bytes(vec![0, 0]),
            Value::pair(Value::Scalar(1), Value::Scalar(2)),
            Value::pair(Value::Scalar(2), Value::Scalar(1)),
            Value::Tuple(vec![Value::Scalar(1), Value::Scalar(2)]),
            Value::Tuple(vec![Value::pair(Value::Scalar(1), Value::Scalar(2))]),
            Value::Tuple(vec![]),
        ];
        for (i, a) in samples.iter().enumerate() {
            for (j, b) in samples.iter().enumerate() {
                if i != j {
                    assert_ne!(a.encode(), b.encode(), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(4u64), Value::Scalar(4));
        assert_eq!(Value::from(vec![1u8, 2]), Value::Bytes(vec![1, 2]));
        assert_eq!(Value::from(&[3u8][..]), Value::Bytes(vec![3]));
    }
}
