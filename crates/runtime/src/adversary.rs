//! The adversary interface: rushing scheduling, adaptive corruptions, and
//! full control over corrupted parties.
//!
//! The scheduling implemented by the engine gives the adversary exactly the
//! powers the paper's lower-bound proofs use:
//!
//! * **Rushing** — each round the adversary sees every message an honest
//!   party sent to a corrupted party (and every honest broadcast) *before*
//!   it has to send the corrupted parties' own round messages.
//! * **Adaptive corruption** — at any round boundary the adversary may
//!   corrupt an additional party; it receives the party's live state
//!   machine (which it can fork for lookahead), the point-to-point
//!   messages the party had already produced this round (retracted from
//!   the network — broadcasts stay committed), and the party's inbox.
//! * **Functionality access** — the adversary speaks to hybrid
//!   functionalities both on behalf of corrupted parties and through the
//!   dedicated simulator interface ([`Endpoint::Adversary`]).
//!
//! [`Endpoint::Adversary`]: crate::msg::Endpoint::Adversary

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;

use crate::msg::{Destination, Endpoint, Envelope, OutMsg, PartyId};
use crate::party::{Party, RoundCtx};
use crate::value::Value;

/// What the adversary sees in a round before sending.
#[derive(Debug)]
pub struct RoundView<'a, M> {
    /// Current round (0-based).
    pub round: usize,
    /// Number of parties.
    pub n: usize,
    /// Messages delivered this round to corrupted parties, plus messages
    /// functionalities addressed directly to the adversary.
    pub delivered: &'a [Envelope<M>],
    /// Rushing visibility: messages produced *this round* by honest parties
    /// that are addressed to a corrupted party or broadcast.
    pub rushing: &'a [Envelope<M>],
}

/// The result of corrupting a party mid-execution.
#[derive(Debug)]
pub struct CorruptionGrant<M> {
    /// Point-to-point messages the party had already produced this round;
    /// they are retracted from the network and it is the adversary's
    /// choice whether to re-send any of them. **Broadcasts are not
    /// retractable**: the paper's ideal broadcast channel guarantees that
    /// once a message "is out … it will be seen by all parties" (App. B),
    /// even if the sender is corrupted in the same round.
    pub retracted: Vec<OutMsg<M>>,
    /// The party's inbox for the current round.
    pub inbox: Vec<Envelope<M>>,
    /// Honest messages produced this round that are addressed to the newly
    /// corrupted party (now visible by rushing).
    pub now_visible: Vec<Envelope<M>>,
}

/// The adversary's handle on the execution during its round step.
pub struct AdvControl<'a, M> {
    pub(crate) round: usize,
    pub(crate) n: usize,
    pub(crate) corrupted: &'a mut BTreeSet<PartyId>,
    pub(crate) honest: &'a mut Vec<Option<Box<dyn Party<M>>>>,
    pub(crate) pool: &'a mut BTreeMap<PartyId, Box<dyn Party<M>>>,
    pub(crate) honest_out: &'a mut Vec<(PartyId, OutMsg<M>)>,
    pub(crate) inboxes: &'a BTreeMap<PartyId, Vec<Envelope<M>>>,
    pub(crate) sends: Vec<(Endpoint, OutMsg<M>)>,
}

impl<'a, M: Clone> AdvControl<'a, M> {
    /// Number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current round.
    pub fn round(&self) -> usize {
        self.round
    }

    /// The set of currently corrupted parties.
    pub fn corrupted(&self) -> &BTreeSet<PartyId> {
        self.corrupted
    }

    /// Sends a message this round in the name of corrupted party `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not corrupted — the adversary cannot speak for
    /// honest parties.
    pub fn send_as(&mut self, from: PartyId, out: OutMsg<M>) {
        assert!(
            self.corrupted.contains(&from),
            "adversary cannot send as honest party {from}"
        );
        self.sends.push((Endpoint::Party(from), out));
    }

    /// Sends a message through the adversary's own interface (to a
    /// functionality, e.g. an abort instruction).
    pub fn send_adv(&mut self, out: OutMsg<M>) {
        self.sends.push((Endpoint::Adversary, out));
    }

    /// Adaptively corrupts `pid`.
    ///
    /// Returns `None` if the party is already corrupted. Otherwise moves the
    /// party under adversarial control and returns the [`CorruptionGrant`].
    pub fn corrupt(&mut self, pid: PartyId) -> Option<CorruptionGrant<M>> {
        if self.corrupted.contains(&pid) {
            return None;
        }
        let machine = self.honest[pid.0]
            .take()
            .expect("honest party machine present");
        self.pool.insert(pid, machine);
        self.corrupted.insert(pid);
        let mut retracted = Vec::new();
        let mut kept = Vec::new();
        for (p, m) in self.honest_out.drain(..) {
            // Broadcasts are committed the moment they are produced (the
            // ideal broadcast channel is not retractable); point-to-point
            // messages of the newly corrupted party are handed back.
            if p == pid && !matches!(m.to, Destination::All) {
                retracted.push(m);
            } else {
                kept.push((p, m));
            }
        }
        *self.honest_out = kept;
        let now_visible = self
            .honest_out
            .iter()
            .filter(|(_, m)| {
                matches!(m.to, Destination::Party(q) if q == pid)
                    || matches!(m.to, Destination::All)
            })
            .map(|(p, m)| Envelope {
                from: Endpoint::Party(*p),
                to: m.to,
                msg: m.msg.clone(),
            })
            .collect();
        let inbox = self.inboxes.get(&pid).cloned().unwrap_or_default();
        Some(CorruptionGrant {
            retracted,
            inbox,
            now_visible,
        })
    }

    /// Mutable access to a corrupted party's live state machine (for
    /// inspection or forking via [`Party::clone_box`]).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not corrupted.
    pub fn machine(&mut self, pid: PartyId) -> &mut Box<dyn Party<M>> {
        self.pool
            .get_mut(&pid)
            .expect("machine of a corrupted party")
    }

    /// The current-round inbox of a corrupted party.
    pub fn inbox_of(&self, pid: PartyId) -> &[Envelope<M>] {
        self.inboxes.get(&pid).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Runs corrupted party `pid` honestly for this round: feeds it its
    /// inbox, advances its state, and queues whatever it sends.
    ///
    /// This is the building block for the paper's "behave honestly until
    /// the output is locked, then abort" strategies.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not corrupted.
    pub fn run_honestly(&mut self, pid: PartyId) {
        let inbox = self.inboxes.get(&pid).cloned().unwrap_or_default();
        let ctx = RoundCtx {
            id: pid,
            n: self.n,
            round: self.round,
        };
        let machine = self
            .pool
            .get_mut(&pid)
            .expect("machine of a corrupted party");
        let outs = machine.round(&ctx, &inbox);
        for out in outs {
            self.sends.push((Endpoint::Party(pid), out));
        }
    }
}

/// An attack strategy, in the sense of the RPD attack game: the move the
/// attacker plays after seeing the protocol.
pub trait Adversary<M> {
    /// Parties to corrupt before the execution starts.
    fn initial_corruptions(&mut self, n: usize, rng: &mut StdRng) -> Vec<PartyId>;

    /// One adversarial scheduling step (called every round, after honest
    /// parties produced their messages).
    fn on_round(&mut self, view: &RoundView<'_, M>, ctrl: &mut AdvControl<'_, M>, rng: &mut StdRng);

    /// The output value the adversary claims to have learned, reported when
    /// the execution ends. The harness validates the claim against the
    /// ledger's ground truth, so over-claiming does not help.
    fn learned(&self) -> Option<Value> {
        None
    }
}

/// The trivial adversary: corrupts nobody and does nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct Passive;

impl<M> Adversary<M> for Passive {
    fn initial_corruptions(&mut self, _n: usize, _rng: &mut StdRng) -> Vec<PartyId> {
        Vec::new()
    }

    fn on_round(
        &mut self,
        _view: &RoundView<'_, M>,
        _ctrl: &mut AdvControl<'_, M>,
        _rng: &mut StdRng,
    ) {
    }
}
