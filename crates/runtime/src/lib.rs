#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! A synchronous MPC execution engine with rushing adversaries and adaptive
//! corruptions.
//!
//! This crate is the substrate on which every protocol in the
//! `fair-protocols` workspace runs. It models the execution environment of
//! Canetti's synchronous MPC framework (the model the paper works in):
//! parties are state machines advancing in lockstep rounds over bilateral
//! secure channels and a consistent broadcast channel; hybrid ideal
//! functionalities act as incorruptible trusted parties; and the adversary
//! is *rushing* (sees honest messages addressed to corrupted parties before
//! speaking) and *adaptive* (may corrupt parties mid-execution, taking over
//! their live state machines).
//!
//! The important types:
//!
//! * [`Party`] / [`RoundCtx`] — protocol state machines.
//! * [`Functionality`] / [`Ledger`] — hybrid trusted parties and the
//!   ground-truth fact ledger used by the fairness harness.
//! * [`Adversary`] / [`AdvControl`] / [`RoundView`] — attack strategies.
//! * [`Instance`] / [`execute`] / [`ExecutionResult`] — running a protocol.
//! * [`execute_traced`] — the same execution observed through a
//!   `fair_trace::Tracer`; [`execute`] is its no-op-tracer instantiation.
//!
//! # Examples
//!
//! ```
//! use rand::{SeedableRng, rngs::StdRng};
//! use fair_runtime::{execute, Instance, Passive, Party, RoundCtx, Value};
//! use fair_runtime::{Envelope, OutMsg, PartyId};
//!
//! /// A one-round protocol: everyone outputs 7.
//! #[derive(Clone, Debug)]
//! struct Trivial(Option<Value>);
//!
//! impl Party<()> for Trivial {
//!     fn round(&mut self, _: &RoundCtx, _: &[Envelope<()>]) -> Vec<OutMsg<()>> {
//!         self.0 = Some(Value::Scalar(7));
//!         vec![]
//!     }
//!     fn output(&self) -> Option<Value> { self.0.clone() }
//!     fn clone_box(&self) -> Box<dyn Party<()>> { Box::new(self.clone()) }
//! }
//!
//! let inst = Instance { parties: vec![Box::new(Trivial(None))], funcs: vec![] };
//! let mut rng = StdRng::seed_from_u64(0);
//! let res = execute(inst, &mut Passive, &mut rng, 10).expect("execution succeeds");
//! assert_eq!(res.outputs[&PartyId(0)], Value::Scalar(7));
//! ```

mod adapt;
mod adversary;
mod engine;
mod error;
mod func;
mod msg;
mod party;
mod value;

pub use adapt::Adapted;
pub use adversary::{AdvControl, Adversary, CorruptionGrant, Passive, RoundView};
pub use engine::{execute, execute_traced, ExecutionResult, Instance, DEFAULT_MAX_ROUNDS};
pub use error::EngineError;
pub use func::{FuncCtx, Functionality, Ledger};
pub use msg::{Destination, Endpoint, Envelope, FuncId, OutMsg, PartyId};
pub use party::{run_isolated, run_isolated_seq, Party, RoundCtx};
pub use value::Value;
