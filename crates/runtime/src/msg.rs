//! Message addressing: endpoints, destinations and envelopes.

use core::fmt;

/// Identifies a protocol party. Indices are 0-based internally; the paper's
/// p₁ … pₙ correspond to `PartyId(0)` … `PartyId(n−1)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PartyId(pub usize);

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0 + 1)
    }
}

/// Identifies a hybrid ideal functionality within an execution (index into
/// the instance's functionality table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FuncId(pub usize);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// The originator of a message.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Endpoint {
    /// A protocol party.
    Party(PartyId),
    /// A hybrid functionality.
    Func(FuncId),
    /// The adversary itself (only functionalities accept such messages; they
    /// model the simulator-facing interface, e.g. abort instructions).
    Adversary,
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Party(p) => write!(f, "{p}"),
            Endpoint::Func(id) => write!(f, "{id}"),
            Endpoint::Adversary => write!(f, "A"),
        }
    }
}

/// Where a message is going.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Destination {
    /// Bilateral secure channel to one party.
    Party(PartyId),
    /// A hybrid functionality.
    Func(FuncId),
    /// Broadcast: delivered identically to every party (including the
    /// sender) next round. The channel is authenticated and consistent —
    /// a corrupted sender cannot equivocate.
    All,
    /// Directly to the adversary (used by functionalities whose spec leaks
    /// or hands values to the simulator).
    Adversary,
}

impl fmt::Display for Destination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Destination::Party(p) => write!(f, "{p}"),
            Destination::Func(id) => write!(f, "{id}"),
            Destination::All => write!(f, "*"),
            Destination::Adversary => write!(f, "A"),
        }
    }
}

/// A message queued for sending.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OutMsg<M> {
    /// Where it goes.
    pub to: Destination,
    /// The payload.
    pub msg: M,
}

impl<M> OutMsg<M> {
    /// Convenience constructor.
    pub fn new(to: Destination, msg: M) -> OutMsg<M> {
        OutMsg { to, msg }
    }

    /// Message to a single party.
    pub fn to_party(pid: PartyId, msg: M) -> OutMsg<M> {
        OutMsg {
            to: Destination::Party(pid),
            msg,
        }
    }

    /// Message to a functionality.
    pub fn to_func(fid: FuncId, msg: M) -> OutMsg<M> {
        OutMsg {
            to: Destination::Func(fid),
            msg,
        }
    }

    /// Broadcast message.
    pub fn broadcast(msg: M) -> OutMsg<M> {
        OutMsg {
            to: Destination::All,
            msg,
        }
    }
}

/// A delivered message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Envelope<M> {
    /// Who sent it.
    pub from: Endpoint,
    /// Who it is addressed to.
    pub to: Destination,
    /// The payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// The sending party, if the sender is a party.
    pub fn from_party(&self) -> Option<PartyId> {
        match self.from {
            Endpoint::Party(p) => Some(p),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(PartyId(0).to_string(), "p1");
        assert_eq!(FuncId(2).to_string(), "F2");
        assert_eq!(Endpoint::Adversary.to_string(), "A");
        assert_eq!(Destination::All.to_string(), "*");
        assert_eq!(Endpoint::Party(PartyId(1)).to_string(), "p2");
        assert_eq!(Destination::Func(FuncId(0)).to_string(), "F0");
    }

    #[test]
    fn constructors_set_destination() {
        let m = OutMsg::to_party(PartyId(3), "x");
        assert_eq!(m.to, Destination::Party(PartyId(3)));
        let b = OutMsg::broadcast("y");
        assert_eq!(b.to, Destination::All);
        let f = OutMsg::to_func(FuncId(1), "z");
        assert_eq!(f.to, Destination::Func(FuncId(1)));
    }

    #[test]
    fn envelope_from_party() {
        let e = Envelope {
            from: Endpoint::Party(PartyId(2)),
            to: Destination::All,
            msg: (),
        };
        assert_eq!(e.from_party(), Some(PartyId(2)));
        let e2 = Envelope {
            from: Endpoint::Adversary,
            to: Destination::All,
            msg: (),
        };
        assert_eq!(e2.from_party(), None);
    }
}
