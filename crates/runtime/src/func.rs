//! Hybrid ideal functionalities ("trusted parties").
//!
//! Protocols in the paper are described in hybrid models: Π^Opt_2SFE runs in
//! the F^{f′,⊥}_sfe-hybrid model, the Gordon–Katz protocols in the
//! ShareGen-hybrid model, and so on. A [`Functionality`] is a trusted
//! machine that consumes the messages addressed to it each round and emits
//! messages delivered next round. The adversary interacts with it through
//! the same message interface (as [`Endpoint::Adversary`]), which is how
//! abort instructions, output requests and corrupted-party substitutions are
//! modeled.
//!
//! [`Endpoint::Adversary`]: crate::msg::Endpoint::Adversary

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use rand::rngs::StdRng;

use crate::msg::{Envelope, PartyId};
use crate::value::Value;

/// A shared fact ledger.
///
/// Functionalities record ground-truth facts about the execution here —
/// most importantly the actually-computed output `y` — which the fairness
/// harness in `fair-core` uses to classify the execution into the paper's
/// events E₀₀/E₀₁/E₁₀/E₁₁ (it must know what "the output" was in order to
/// decide whether the adversary *learned* it).
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    facts: BTreeMap<String, Value>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Records a fact (overwriting any previous value under the key).
    pub fn record(&mut self, key: &str, value: Value) {
        self.facts.insert(key.to_string(), value);
    }

    /// Looks up a fact.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.facts.get(key)
    }

    /// All recorded facts, in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.facts.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// Context handed to a functionality each round.
pub struct FuncCtx<'a> {
    /// Current round (0-based).
    pub round: usize,
    /// Number of parties in the execution.
    pub n: usize,
    /// The currently corrupted parties. Functionalities whose behaviour
    /// depends on corruption (e.g. F^⊥_sfe only hands *corrupted* outputs to
    /// the adversary) consult this set.
    pub corrupted: &'a BTreeSet<PartyId>,
    /// The shared fact ledger.
    pub ledger: &'a mut Ledger,
    /// The execution's master randomness.
    pub rng: &'a mut StdRng,
}

/// A trusted third party available to the protocol as a hybrid.
pub trait Functionality<M> {
    /// A short human-readable name (for transcripts and error messages).
    fn name(&self) -> &str;

    /// Consumes this round's messages addressed to the functionality and
    /// returns messages to deliver next round. Destinations may be parties
    /// or [`Destination::Adversary`].
    ///
    /// [`Destination::Adversary`]: crate::msg::Destination::Adversary
    fn on_round(
        &mut self,
        ctx: &mut FuncCtx<'_>,
        incoming: &[Envelope<M>],
    ) -> Vec<crate::msg::OutMsg<M>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_records_and_overwrites() {
        let mut l = Ledger::new();
        assert!(l.get("y").is_none());
        l.record("y", Value::Scalar(1));
        l.record("y", Value::Scalar(2));
        assert_eq!(l.get("y"), Some(&Value::Scalar(2)));
        let all: Vec<_> = l.iter().collect();
        assert_eq!(all, vec![("y", &Value::Scalar(2))]);
    }
}
