//! The party abstraction: a cloneable synchronous state machine.
//!
//! Cloneability is load-bearing: the paper's proof adversaries (A₁, A_gen,
//! A_ī) *fork* a corrupted party's honest state machine to test, round by
//! round, whether it already "holds the actual output" — i.e. whether
//! running it forward with everyone else silent would produce the real
//! output. [`run_isolated`] implements exactly that lookahead.

use crate::msg::{Envelope, OutMsg, PartyId};
use crate::value::Value;

/// Per-round context handed to a party.
#[derive(Clone, Copy, Debug)]
pub struct RoundCtx {
    /// This party's identity.
    pub id: PartyId,
    /// Total number of parties.
    pub n: usize,
    /// Current round number (0-based).
    pub round: usize,
}

/// A synchronous protocol party.
///
/// In each round the engine calls [`Party::round`] with the messages
/// delivered this round; the party returns the messages it sends. Once the
/// party has decided on an output, [`Party::output`] returns `Some`; a party
/// that aborts sets its output to [`Value::Bot`].
///
/// Implementations must tolerate *missing* messages (an empty or partial
/// inbox): a counterparty that sends nothing models an abort, and the
/// fairness experiments rely on parties reacting to that exactly as the
/// protocol prescribes.
pub trait Party<M>: core::fmt::Debug {
    /// Processes one synchronous round.
    fn round(&mut self, ctx: &RoundCtx, inbox: &[Envelope<M>]) -> Vec<OutMsg<M>>;

    /// The party's final output, once decided.
    fn output(&self) -> Option<Value>;

    /// Clones the party as a boxed trait object (used by forking
    /// adversaries for lookahead).
    fn clone_box(&self) -> Box<dyn Party<M>>;
}

impl<M> Clone for Box<dyn Party<M>> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Runs a forked party in isolation: delivers `first_inbox` in the first
/// simulated round, then empty inboxes (i.e. everyone else is silent), until
/// the party outputs or `max_rounds` simulated rounds elapse.
///
/// Returns the party's output, or `None` if it never decided. Outgoing
/// messages are discarded — this is a pure lookahead, not an execution.
pub fn run_isolated<M: Clone>(
    party: &mut Box<dyn Party<M>>,
    ctx0: RoundCtx,
    first_inbox: &[Envelope<M>],
    max_rounds: usize,
) -> Option<Value> {
    run_isolated_seq(party, ctx0, &[first_inbox.to_vec()], max_rounds)
}

/// Like [`run_isolated`], but delivers a *sequence* of inboxes: `inboxes[k]`
/// arrives in the k-th simulated round, then silence. Forking adversaries
/// use this to model in-flight messages (seen by rushing this round, but
/// delivered to the party next round).
pub fn run_isolated_seq<M: Clone>(
    party: &mut Box<dyn Party<M>>,
    ctx0: RoundCtx,
    inboxes: &[Vec<Envelope<M>>],
    max_rounds: usize,
) -> Option<Value> {
    let empty: Vec<Envelope<M>> = Vec::new();
    for r in 0..max_rounds {
        if let Some(out) = party.output() {
            return Some(out);
        }
        let inbox = inboxes.get(r).unwrap_or(&empty);
        let ctx = RoundCtx {
            round: ctx0.round + r,
            ..ctx0
        };
        let _ = party.round(&ctx, inbox);
    }
    party.output()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{Destination, Endpoint};

    /// A toy party: echoes for `wait` rounds, then outputs how many
    /// messages it saw in total.
    #[derive(Clone, Debug)]
    struct Counter {
        wait: usize,
        seen: u64,
        done: Option<Value>,
    }

    impl Party<u64> for Counter {
        fn round(&mut self, ctx: &RoundCtx, inbox: &[Envelope<u64>]) -> Vec<OutMsg<u64>> {
            self.seen += inbox.len() as u64;
            if ctx.round + 1 >= self.wait {
                self.done = Some(Value::Scalar(self.seen));
            }
            vec![OutMsg::broadcast(self.seen)]
        }

        fn output(&self) -> Option<Value> {
            self.done.clone()
        }

        fn clone_box(&self) -> Box<dyn Party<u64>> {
            Box::new(self.clone())
        }
    }

    fn ctx() -> RoundCtx {
        RoundCtx {
            id: PartyId(0),
            n: 2,
            round: 0,
        }
    }

    #[test]
    fn run_isolated_delivers_first_inbox_then_silence() {
        let mut p: Box<dyn Party<u64>> = Box::new(Counter {
            wait: 3,
            seen: 0,
            done: None,
        });
        let first = vec![
            Envelope {
                from: Endpoint::Party(PartyId(1)),
                to: Destination::Party(PartyId(0)),
                msg: 9,
            },
            Envelope {
                from: Endpoint::Party(PartyId(1)),
                to: Destination::Party(PartyId(0)),
                msg: 9,
            },
        ];
        let out = run_isolated(&mut p, ctx(), &first, 10);
        assert_eq!(out, Some(Value::Scalar(2)));
    }

    #[test]
    fn run_isolated_respects_round_budget() {
        let mut p: Box<dyn Party<u64>> = Box::new(Counter {
            wait: 100,
            seen: 0,
            done: None,
        });
        assert_eq!(run_isolated(&mut p, ctx(), &[], 5), None);
    }

    #[test]
    fn run_isolated_stops_at_existing_output() {
        let mut p: Box<dyn Party<u64>> = Box::new(Counter {
            wait: 0,
            seen: 7,
            done: Some(Value::Scalar(7)),
        });
        assert_eq!(run_isolated(&mut p, ctx(), &[], 5), Some(Value::Scalar(7)));
    }

    #[test]
    fn forked_clone_is_independent() {
        let original: Box<dyn Party<u64>> = Box::new(Counter {
            wait: 2,
            seen: 0,
            done: None,
        });
        let mut fork = original.clone();
        let out = run_isolated(&mut fork, ctx(), &[], 10);
        assert_eq!(out, Some(Value::Scalar(0)));
        // The original is untouched.
        assert_eq!(original.output(), None);
    }
}
