//! Engine-level invariants: executions are exactly reproducible from a
//! seed, scheduling is order-stable, and adaptive corruption conserves
//! party machines.

use fair_runtime::{
    execute, AdvControl, Adversary, Envelope, Instance, OutMsg, Party, PartyId, Passive, RoundCtx,
    RoundView, Value,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A party that mixes its input with whatever it hears and stops after a
/// few rounds — enough structure for determinism checks.
#[derive(Clone, Debug)]
struct Mixer {
    acc: u64,
    stop_after: usize,
    out: Option<Value>,
}

impl Party<u64> for Mixer {
    fn round(&mut self, ctx: &RoundCtx, inbox: &[Envelope<u64>]) -> Vec<OutMsg<u64>> {
        for e in inbox {
            self.acc = self
                .acc
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(e.msg);
        }
        if ctx.round >= self.stop_after {
            self.out = Some(Value::Scalar(self.acc));
            return Vec::new();
        }
        vec![OutMsg::broadcast(self.acc)]
    }

    fn output(&self) -> Option<Value> {
        self.out.clone()
    }

    fn clone_box(&self) -> Box<dyn Party<u64>> {
        Box::new(self.clone())
    }
}

fn instance(n: usize, rounds: usize, salt: u64) -> Instance<u64> {
    Instance {
        parties: (0..n)
            .map(|i| {
                Box::new(Mixer {
                    acc: salt.wrapping_add(i as u64),
                    stop_after: rounds,
                    out: None,
                }) as Box<dyn Party<u64>>
            })
            .collect(),
        funcs: vec![],
    }
}

/// Corrupts a random party each execution and injects seeded noise.
struct NoisyAdversary {
    target: Option<PartyId>,
}

impl Adversary<u64> for NoisyAdversary {
    fn initial_corruptions(&mut self, n: usize, rng: &mut StdRng) -> Vec<PartyId> {
        let t = PartyId(rng.random_range(0..n));
        self.target = Some(t);
        vec![t]
    }

    fn on_round(
        &mut self,
        view: &RoundView<'_, u64>,
        ctrl: &mut AdvControl<'_, u64>,
        rng: &mut StdRng,
    ) {
        let t = self.target.expect("chosen at start");
        if view.round.is_multiple_of(2) {
            ctrl.send_as(t, OutMsg::broadcast(rng.random()));
        } else {
            ctrl.run_honestly(t);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn same_seed_same_outcome(n in 2usize..6, rounds in 1usize..6, salt: u64, seed: u64) {
        let run = || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut adv = NoisyAdversary { target: None };
            execute(instance(n, rounds, salt), &mut adv, &mut rng, rounds + 4).expect("execution succeeds")
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.corrupted, b.corrupted);
        prop_assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn passive_runs_never_abort(n in 2usize..6, rounds in 1usize..6, salt: u64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let res = execute(instance(n, rounds, salt), &mut Passive, &mut rng, rounds + 4).expect("execution succeeds");
        prop_assert!(res.all_honest_got_output());
        prop_assert_eq!(res.outputs.len(), n);
    }

    #[test]
    fn honest_parties_agree_under_broadcast_only_traffic(n in 2usize..6, rounds in 1usize..5, salt: u64) {
        // All messages are broadcasts from identical starting rounds, so
        // honest parties with the same initial state converge.
        let inst = Instance {
            parties: (0..n)
                .map(|_| {
                    Box::new(Mixer { acc: salt, stop_after: rounds, out: None })
                        as Box<dyn Party<u64>>
                })
                .collect(),
            funcs: vec![],
        };
        let mut rng = StdRng::seed_from_u64(salt);
        let res = execute(inst, &mut Passive, &mut rng, rounds + 4).expect("execution succeeds");
        let first = res.outputs.values().next().expect("some output").clone();
        prop_assert!(res.outputs.values().all(|v| *v == first));
    }
}

#[test]
fn corruption_is_conserved() {
    // Corrupting the same party twice is a no-op; corrupting all parties
    // ends the run.
    struct DoubleCorrupt;
    impl Adversary<u64> for DoubleCorrupt {
        fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
            vec![PartyId(0), PartyId(0)]
        }
        fn on_round(
            &mut self,
            v: &RoundView<'_, u64>,
            c: &mut AdvControl<'_, u64>,
            _r: &mut StdRng,
        ) {
            if v.round == 1 {
                assert!(c.corrupt(PartyId(0)).is_none(), "already corrupted");
                assert!(c.corrupt(PartyId(1)).is_some(), "fresh corruption succeeds");
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(5);
    let res =
        execute(instance(3, 4, 1), &mut DoubleCorrupt, &mut rng, 10).expect("execution succeeds");
    assert_eq!(res.corrupted.len(), 2);
    assert_eq!(res.outputs.len(), 1);
}
