//! Concurrency contract of the result cache: under 8 racing threads the
//! hit path serves bytes identical to the cold path, and single-flight
//! means one computation per key no matter how many threads collide.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use fair_serve::cache::{Lookup, ShardedCache};

/// Deterministic payload for a key (what a backend would render).
fn body_for(key: &str) -> Vec<u8> {
    format!("{{\"key\":\"{key}\",\"len\":{}}}\n", key.len()).into_bytes()
}

#[test]
fn hit_path_bytes_equal_cold_path_bytes_under_contention() {
    let cache = Arc::new(ShardedCache::new(64, 8));
    let computes = Arc::new(AtomicUsize::new(0));
    let keys: Vec<String> = (0..4)
        .map(|i| format!("exp=e{i}&seed=7&trials=100"))
        .collect();

    // Phase 1: populate every key cold, remembering the exact bytes.
    let cold: Vec<Vec<u8>> = keys
        .iter()
        .map(
            |key| match cache.get_or_compute(key, || Ok(body_for(key))) {
                Lookup::Computed(b) => b.as_ref().clone(),
                other => panic!("expected cold computation, got {other:?}"),
            },
        )
        .collect();

    // Phase 2: 8 threads hammer all keys; every lookup must be a hit with
    // bytes equal to the cold copy, and nothing recomputes.
    let barrier = Arc::new(Barrier::new(8));
    std::thread::scope(|scope| {
        for t in 0..8 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            let barrier = Arc::clone(&barrier);
            let keys = &keys;
            let cold = &cold;
            scope.spawn(move || {
                barrier.wait();
                for round in 0..50 {
                    let i = (t + round) % keys.len();
                    let lookup = cache.get_or_compute(&keys[i], || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        Ok(b"should never recompute".to_vec())
                    });
                    match lookup {
                        Lookup::Hit(b) => assert_eq!(b.as_ref(), &cold[i]),
                        other => panic!("expected hit, got {other:?}"),
                    }
                }
            });
        }
    });
    assert_eq!(
        computes.load(Ordering::SeqCst),
        0,
        "warm phase never computed"
    );
}

#[test]
fn racing_cold_lookups_compute_once_and_agree() {
    let cache = Arc::new(ShardedCache::new(64, 8));
    let computes = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(8));
    let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computes = Arc::clone(&computes);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let lookup = cache.get_or_compute("exp=e1&seed=7&trials=100", || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        Ok(body_for("exp=e1&seed=7&trials=100"))
                    });
                    lookup.bytes().expect("no failure").as_ref().clone()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    assert_eq!(computes.load(Ordering::SeqCst), 1, "single flight");
    let expected = body_for("exp=e1&seed=7&trials=100");
    for body in &bodies {
        assert_eq!(body, &expected, "every racer saw the same bytes");
    }
}
