//! Property tests for the HTTP request parser: it faces raw network
//! bytes, so the properties that matter are *totality* (never panics, for
//! any input), *faithfulness* (well-formed requests round-trip), and —
//! for the pipelining primitive `split_head` — that walking a buffer of
//! concatenated requests recovers each one exactly, regardless of how
//! the bytes were chopped into reads.

use fair_serve::http::{parse_request, read_request, split_head, MAX_HEAD_BYTES};
use proptest::collection;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Totality: arbitrary byte soup yields `Ok` or a typed error —
    /// the parser must never panic on attacker-controlled input.
    #[test]
    fn arbitrary_bytes_never_panic(head in collection::vec(any::<u8>(), 0..2048)) {
        let _ = parse_request(&head);
        let mut stream = std::io::Cursor::new(head);
        let _ = read_request(&mut stream);
    }

    /// Totality on *almost-valid* input: a plausible request line with
    /// random target and header bytes spliced in.
    #[test]
    fn fuzzed_targets_and_headers_never_panic(
        target in collection::vec(any::<u8>(), 0..512),
        header in collection::vec(any::<u8>(), 0..256),
    ) {
        let mut head = b"GET /".to_vec();
        head.extend_from_slice(&target);
        head.extend_from_slice(b" HTTP/1.1\r\n");
        head.extend_from_slice(&header);
        head.extend_from_slice(b"\r\n");
        let _ = parse_request(&head);
    }

    /// Faithful round-trip: a well-formed request built from restricted
    /// alphabets parses back to exactly its components.
    #[test]
    fn well_formed_requests_round_trip(
        seg in collection::vec(0..36u8, 1..12),
        key in collection::vec(0..36u8, 1..8),
        value in collection::vec(0..36u8, 0..8),
        hname in collection::vec(0..26u8, 1..10),
        hvalue in collection::vec(0..36u8, 0..12),
    ) {
        let alnum = |digits: &[u8]| -> String {
            digits
                .iter()
                .map(|d| char::from(if *d < 10 { b'0' + d } else { b'a' + d - 10 }))
                .collect()
        };
        let (seg, key, value) = (alnum(&seg), alnum(&key), alnum(&value));
        let (hname, hvalue) = (alnum(&hname), alnum(&hvalue));
        let head = format!("GET /{seg}?{key}={value} HTTP/1.1\r\n{hname}: {hvalue}\r\n");
        let req = parse_request(head.as_bytes()).expect("well-formed request parses");
        prop_assert_eq!(&req.method, "GET");
        prop_assert_eq!(&req.path, &format!("/{seg}"));
        prop_assert_eq!(req.query_param(&key), Some(value.as_str()));
        prop_assert_eq!(req.header(&hname), Some(hvalue.as_str()));
    }

    /// Header splitting: N well-formed header lines all survive, in order.
    #[test]
    fn header_lines_split_correctly(count in 0..20usize) {
        let mut head = String::from("GET / HTTP/1.1\r\n");
        for i in 0..count {
            head.push_str(&format!("x-h{i}: v{i}\r\n"));
        }
        let req = parse_request(head.as_bytes()).expect("parses");
        prop_assert_eq!(req.headers.len(), count);
        for (i, (name, value)) in req.headers.iter().enumerate() {
            prop_assert_eq!(name, &format!("x-h{i}"));
            prop_assert_eq!(value, &format!("v{i}"));
        }
    }

    /// Oversized requests fail with a typed error (never a panic, never
    /// an unbounded allocation): pad the head past the cap.
    #[test]
    fn oversized_requests_are_rejected(extra in 1..4096usize) {
        let mut head = b"GET / HTTP/1.1\r\n".to_vec();
        head.resize(MAX_HEAD_BYTES + extra, b'x');
        prop_assert!(parse_request(&head).is_err());
        let mut stream = std::io::Cursor::new(head);
        prop_assert!(read_request(&mut stream).is_err());
    }

    /// Totality of the pipelining splitter on arbitrary bytes, plus its
    /// progress invariants: the consumed prefix always covers the head,
    /// never exceeds the buffer, and always advances.
    #[test]
    fn split_head_is_total_and_always_advances(buf in collection::vec(any::<u8>(), 0..2048)) {
        if let Some((head_len, consumed)) = split_head(&buf) {
            prop_assert!(head_len < consumed, "terminator is consumed but not in the head");
            prop_assert!(consumed <= buf.len());
            prop_assert!(consumed >= 2, "a terminator is at least \\n\\n");
        }
    }

    /// Pipelining: N well-formed requests concatenated into one buffer
    /// split back into exactly N parseable heads with the right targets,
    /// however the batch is composed — the parser-state-reuse property
    /// the event loop's per-connection buffer relies on.
    #[test]
    fn concatenated_requests_split_back_into_each_head(
        seeds in collection::vec(0..1000u32, 1..8),
        trailing in collection::vec(any::<u8>(), 0..10),
    ) {
        let mut wire = Vec::new();
        for seed in &seeds {
            wire.extend_from_slice(
                format!("GET /estimate?seed={seed} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes(),
            );
        }
        // A torn tail (the next request still in flight) must not
        // disturb the complete heads before it.
        wire.extend_from_slice(b"GET /tor");
        wire.extend_from_slice(&trailing);

        let mut rest: &[u8] = &wire;
        for (i, seed) in seeds.iter().enumerate() {
            let (head_len, consumed) = split_head(rest)
                .unwrap_or_else(|| panic!("request {i} has a complete head"));
            let req = parse_request(&rest[..head_len]).expect("well-formed");
            prop_assert_eq!(&req.path, "/estimate");
            prop_assert_eq!(req.query_param("seed"), Some(seed.to_string().as_str()));
            prop_assert!(req.wants_keep_alive());
            rest = &rest[consumed..];
        }
        // The torn tail never yields a head unless the random bytes
        // happened to complete one; if they did, it must parse totally.
        if let Some((head_len, _)) = split_head(rest) {
            let _ = parse_request(&rest[..head_len]);
        }
    }
}
