//! Property tests for the client's incremental chunked-transfer decoder.
//!
//! The `Dechunker` faces server bytes chopped arbitrarily by the kernel,
//! so the properties that matter are *totality* (never panics, any input),
//! and *split-invariance*: feeding a wire in any number of pieces at any
//! boundaries — mid size line, mid chunk extension, mid payload, mid CRLF
//! — must decode byte-identically to feeding it whole. That is exactly the
//! case the old one-shot decoder could never hit (`read_to_end` glued the
//! stream back together) and the incremental one exists to handle.

use fair_serve::client::Dechunker;
use proptest::collection;
use proptest::prelude::*;

/// Decodes `wire` in one feed; the reference for split-invariance.
fn one_shot(wire: &[u8]) -> (Vec<u8>, bool, usize) {
    let mut decoder = Dechunker::new();
    let mut out = Vec::new();
    let consumed = decoder.push(wire, &mut out);
    (out, decoder.done(), consumed)
}

/// Encodes payloads as a chunked body: size line (hex, optional chunk
/// extension), CRLF, payload, CRLF — then the terminal chunk and the
/// blank trailer line.
fn encode_chunked(payloads: &[Vec<u8>], with_extensions: bool) -> Vec<u8> {
    let mut wire = Vec::new();
    for (i, payload) in payloads.iter().enumerate() {
        if with_extensions && i % 2 == 0 {
            wire.extend_from_slice(format!("{:x};seq={i}\r\n", payload.len()).as_bytes());
        } else {
            wire.extend_from_slice(format!("{:x}\r\n", payload.len()).as_bytes());
        }
        wire.extend_from_slice(payload);
        wire.extend_from_slice(b"\r\n");
    }
    wire.extend_from_slice(b"0\r\n\r\n");
    wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Totality: arbitrary byte soup decodes without panicking, consumes
    /// no more than it was given, and splitting it anywhere changes
    /// nothing — the state machine is deterministic and streaming even on
    /// garbage.
    #[test]
    fn arbitrary_bytes_decode_identically_however_split(
        wire in collection::vec(any::<u8>(), 0..2048),
        split in any::<usize>(),
    ) {
        let (whole, whole_done, _) = one_shot(&wire);
        let cut = split % (wire.len() + 1);
        let mut decoder = Dechunker::new();
        let mut out = Vec::new();
        decoder.push(&wire[..cut], &mut out);
        decoder.push(&wire[cut..], &mut out);
        prop_assert_eq!(out, whole);
        prop_assert_eq!(decoder.done(), whole_done);
    }

    /// A well-formed chunked wire (chunk extensions included) decodes to
    /// the concatenated payloads and consumes exactly the whole message,
    /// leaving a keep-alive socket positioned at the next reply.
    #[test]
    fn well_formed_wires_decode_to_their_payloads(
        payloads in collection::vec(collection::vec(any::<u8>(), 1..64), 0..8),
        with_extensions in any::<bool>(),
    ) {
        let wire = encode_chunked(&payloads, with_extensions);
        let expected: Vec<u8> = payloads.concat();
        let (out, done, consumed) = one_shot(&wire);
        prop_assert_eq!(out, expected);
        prop_assert!(done);
        prop_assert_eq!(consumed, wire.len());
    }

    /// Split-invariance on valid wires: feeding through arbitrary read
    /// boundaries — any number of them, anywhere — equals the one-shot
    /// decode. Size lines and extensions torn across feeds must reassemble.
    #[test]
    fn incremental_feeds_match_one_shot_on_valid_wires(
        payloads in collection::vec(collection::vec(any::<u8>(), 1..48), 1..6),
        with_extensions in any::<bool>(),
        cuts in collection::vec(any::<usize>(), 1..12),
    ) {
        let wire = encode_chunked(&payloads, with_extensions);
        let (whole, _, _) = one_shot(&wire);

        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (wire.len() + 1)).collect();
        bounds.push(0);
        bounds.push(wire.len());
        bounds.sort_unstable();
        bounds.dedup();

        let mut decoder = Dechunker::new();
        let mut out = Vec::new();
        for pair in bounds.windows(2) {
            let (start, end) = (pair[0], pair[1]);
            let consumed = decoder.push(&wire[start..end], &mut out);
            prop_assert_eq!(consumed, end - start, "valid wire is consumed in full");
        }
        prop_assert_eq!(out, whole);
        prop_assert!(decoder.done());
    }

    /// Truncation leniency survives splitting: cut a valid wire anywhere
    /// and the decoder yields exactly the chunks that completed before the
    /// cut — never a torn frame, never a panic.
    #[test]
    fn truncated_wires_keep_only_complete_frames(
        payloads in collection::vec(collection::vec(any::<u8>(), 1..48), 1..6),
        cut in any::<usize>(),
    ) {
        let wire = encode_chunked(&payloads, true);
        let cut = cut % (wire.len() + 1);
        let (out, _, _) = one_shot(&wire[..cut]);
        // The output is a prefix of the full payload sequence made of
        // whole chunks only.
        let mut remaining: &[u8] = &out;
        for payload in &payloads {
            if remaining.is_empty() {
                break;
            }
            prop_assert!(remaining.len() >= payload.len(), "no partial frame leaks");
            prop_assert_eq!(&remaining[..payload.len()], payload.as_slice());
            remaining = &remaining[payload.len()..];
        }
        prop_assert!(remaining.is_empty(), "output holds only whole generated chunks");
    }
}
