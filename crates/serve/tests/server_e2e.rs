//! End-to-end tests over a real TCP socket: a live server with a mock
//! backend, exercising cold/warm byte identity, admission control under
//! overload, per-request deadlines, and graceful shutdown.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fair_serve::service::Backend;
use fair_serve::{client, Conn, Server, ServerConfig};

/// A deterministic backend: renders a canonical-looking document and
/// counts invocations; optionally sleeps to simulate slow estimations.
struct MockBackend {
    calls: AtomicUsize,
    delay: Duration,
}

impl MockBackend {
    fn instant() -> MockBackend {
        MockBackend {
            calls: AtomicUsize::new(0),
            delay: Duration::ZERO,
        }
    }

    fn slow(delay: Duration) -> MockBackend {
        MockBackend {
            calls: AtomicUsize::new(0),
            delay,
        }
    }
}

impl Backend for MockBackend {
    fn experiments(&self) -> Vec<(String, String)> {
        vec![("e1".to_string(), "mock".to_string())]
    }

    fn estimate(&self, exp: &str, trials: usize, seed: u64) -> Option<String> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        (exp == "e1")
            .then(|| format!("{{\"experiment\":\"{exp}\",\"seed\":{seed},\"trials\":{trials}}}\n"))
    }
}

/// Boots a server on an ephemeral port; returns its address, the serving
/// thread's join handle, and the programmatic shutdown latch.
fn boot(
    backend: Arc<MockBackend>,
    config: ServerConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
    Arc<std::sync::atomic::AtomicBool>,
) {
    let server = Server::bind(config, backend).expect("bind ephemeral port");
    let addr = server.local_addr();
    let latch = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle, latch)
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let reply = client::post(addr, "/shutdown").expect("shutdown reachable");
    assert_eq!(reply.status, 200);
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn serves_health_experiments_and_rejections() {
    let (addr, handle, _latch) = boot(Arc::new(MockBackend::instant()), ServerConfig::default());
    let health = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.text(), "{\"status\":\"ok\"}\n");

    let listing = client::get(addr, "/experiments").expect("experiments");
    assert_eq!(listing.status, 200);
    assert!(listing.text().contains("\"e1\""));

    assert_eq!(client::get(addr, "/nope").expect("404").status, 404);
    assert_eq!(
        client::get(addr, "/estimate?exp=e1&trials=bogus")
            .expect("400")
            .status,
        400
    );
    assert_eq!(
        client::get(addr, "/estimate?exp=missing")
            .expect("404")
            .status,
        404
    );
    shutdown(addr, handle);
}

#[test]
fn cold_and_warm_responses_are_byte_identical() {
    let backend = Arc::new(MockBackend::instant());
    let (addr, handle, _latch) = boot(Arc::clone(&backend), ServerConfig::default());
    let target = "/estimate?exp=e1&trials=100&seed=7";

    let cold = client::get(addr, target).expect("cold");
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-cache"), Some("miss"));

    let warm = client::get(addr, target).expect("warm");
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(cold.body, warm.body, "hit path bytes == cold path bytes");

    // Parameter order and seed spelling don't fork the cache.
    let reordered = client::get(addr, "/estimate?seed=0x7&trials=100&exp=e1").expect("reordered");
    assert_eq!(reordered.header("x-cache"), Some("hit"));
    assert_eq!(reordered.body, cold.body);
    assert_eq!(backend.calls.load(Ordering::SeqCst), 1, "one computation");

    let metrics = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.text().contains("\"cache_hits\": 2"));
    shutdown(addr, handle);
}

#[test]
fn keep_alive_connections_reuse_parser_state_across_requests() {
    let backend = Arc::new(MockBackend::instant());
    let (addr, handle, _latch) = boot(Arc::clone(&backend), ServerConfig::default());
    let target = "/estimate?exp=e1&trials=100&seed=3";

    // Several sequential requests on ONE socket: the first computes, the
    // rest are cache hits served by the same connection's parser state.
    let mut conn = Conn::connect(addr, Duration::from_secs(10)).expect("connect");
    let mut bodies = Vec::new();
    for i in 0..4 {
        conn.send(target).expect("send");
        let reply = conn.recv().expect("reply on reused connection");
        assert_eq!(reply.status, 200);
        let expected = if i == 0 { "miss" } else { "hit" };
        assert_eq!(reply.header("x-cache"), Some(expected), "request {i}");
        bodies.push(reply.body);
    }
    assert!(bodies.windows(2).all(|w| w[0] == w[1]), "stable bytes");
    assert_eq!(backend.calls.load(Ordering::SeqCst), 1, "one computation");

    // A different route on the same still-open connection parses fine —
    // per-request state fully resets between requests.
    conn.send("/healthz").expect("send healthz");
    let health = conn.recv().expect("healthz on reused connection");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, b"{\"status\":\"ok\"}\n");

    let metrics = client::get(addr, "/metrics").expect("metrics");
    let text = metrics.text();
    assert!(
        text.contains("\"keepalive_reuses\": 4"),
        "4 reused requests counted, got: {text}"
    );
    shutdown(addr, handle);
}

#[test]
fn pipelined_requests_answer_in_order_with_identical_bytes() {
    let backend = Arc::new(MockBackend::instant());
    let (addr, handle, _latch) = boot(Arc::clone(&backend), ServerConfig::default());
    let targets: Vec<String> = (0..5)
        .map(|seed| format!("/estimate?exp=e1&trials=50&seed={seed}"))
        .collect();

    // Warm every point with fresh one-shot connections first.
    let fresh: Vec<Vec<u8>> = targets
        .iter()
        .map(|t| {
            let reply = client::get(addr, t).expect("warmup");
            assert_eq!(reply.status, 200);
            reply.body
        })
        .collect();

    // Now pipeline the whole batch down one connection in a single write;
    // replies must come back in request order, each byte-identical to its
    // fresh-connection counterpart. A cold point in the middle of the
    // batch (handed to the worker pool) must not reorder anything.
    let mut conn = Conn::connect(addr, Duration::from_secs(10)).expect("connect");
    let mut batch: Vec<&str> = targets.iter().map(String::as_str).collect();
    let cold = "/estimate?exp=e1&trials=50&seed=99";
    batch.insert(2, cold);
    conn.send_many(&batch).expect("pipelined send");
    for (i, target) in batch.iter().enumerate() {
        let reply = conn.recv().expect("pipelined reply");
        assert_eq!(reply.status, 200, "reply {i}");
        if *target == cold {
            assert_eq!(reply.header("x-cache"), Some("miss"), "cold mid-batch");
        } else {
            assert_eq!(reply.header("x-cache"), Some("hit"), "warm reply {i}");
            let fresh_body = &fresh[targets.iter().position(|t| t == target).expect("known")];
            assert_eq!(&reply.body, fresh_body, "bytes for {target}");
        }
    }

    let metrics = client::get(addr, "/metrics").expect("metrics");
    let text = metrics.text();
    let doc = fair_simlab::json::parse(text.trim_end()).expect("metrics parse");
    let server = fair_simlab::json::get(&doc, "server").expect("server block");
    let pipelined = match fair_simlab::json::get(server, "pipelined_requests") {
        Some(fair_simlab::json::Json::Num(n)) => *n,
        other => panic!("pipelined_requests missing: {other:?}"),
    };
    assert!(pipelined >= 1.0, "pipelining was observed, got {pipelined}");
    shutdown(addr, handle);
}

#[test]
fn overload_is_answered_with_bounded_429s() {
    // One worker, one queue slot, slow estimations: blasting N distinct
    // points must produce some 429s, and every connection gets answered.
    let backend = Arc::new(MockBackend::slow(Duration::from_millis(150)));
    let config = ServerConfig {
        workers: 1,
        queue_cap: 1,
        ..ServerConfig::default()
    };
    let (addr, handle, _latch) = boot(backend, config);

    let replies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                scope.spawn(move || {
                    let target = format!("/estimate?exp=e1&trials=10&seed={i}");
                    client::get(addr, &target).expect("every connection is answered")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    let ok = replies.iter().filter(|r| r.status == 200).count();
    let rejected = replies.iter().filter(|r| r.status == 429).count();
    assert_eq!(ok + rejected, 8, "only 200s and 429s under pure overload");
    assert!(ok >= 1, "some requests are served");
    assert!(rejected >= 1, "overload sheds load with 429");
    for r in replies.iter().filter(|r| r.status == 429) {
        assert_eq!(r.header("retry-after"), Some("1"));
    }
    shutdown(addr, handle);
}

#[test]
fn expired_deadlines_get_503_instead_of_late_service() {
    // Zero deadline: by the time a worker picks the job up the deadline
    // has always passed, so every request is answered 503 immediately.
    let config = ServerConfig {
        deadline: Duration::ZERO,
        ..ServerConfig::default()
    };
    let (addr, handle, latch) = boot(Arc::new(MockBackend::instant()), config);
    let reply = client::get(addr, "/estimate?exp=e1").expect("answered");
    assert_eq!(reply.status, 503);
    assert!(reply.text().contains("deadline"));

    // With a zero deadline even POST /shutdown is 503'd before the route
    // runs, so stop the server through the programmatic latch instead.
    let shutdown_reply = client::post(addr, "/shutdown").expect("reachable");
    assert_eq!(shutdown_reply.status, 503);
    latch.store(true, Ordering::SeqCst);
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn graceful_shutdown_drains_and_flushes_metrics() {
    let dir = std::env::temp_dir().join(format!("fair_serve_e2e_{}", std::process::id()));
    let metrics_path = dir.join("final_metrics.json");
    let backend = Arc::new(MockBackend::slow(Duration::from_millis(50)));
    let config = ServerConfig {
        metrics_path: Some(metrics_path.clone()),
        ..ServerConfig::default()
    };
    let (addr, handle, _latch) = boot(Arc::clone(&backend), config);

    // Put one slow request in flight, then request shutdown while the
    // worker is still estimating.
    let in_flight = std::thread::spawn(move || {
        client::get(addr, "/estimate?exp=e1&trials=10&seed=1").expect("answered")
    });
    std::thread::sleep(Duration::from_millis(10));
    shutdown(addr, handle);

    // Drain guarantee: the in-flight request completed with a real answer.
    let reply = in_flight.join().expect("no panic");
    assert_eq!(reply.status, 200);

    // The final snapshot was flushed and is valid JSON.
    let snapshot = std::fs::read_to_string(&metrics_path).expect("metrics flushed");
    let doc = fair_simlab::json::parse(snapshot.trim_end()).expect("valid json");
    assert!(fair_simlab::json::get(&doc, "server").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}
