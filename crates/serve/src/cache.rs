//! A sharded LRU result cache with **single-flight** deduplication.
//!
//! Keys are canonicalized request points (`exp=e1&seed=7&trials=100`);
//! values are fully rendered response bodies, shared as `Arc<Vec<u8>>` so
//! a hit clones a pointer, never the bytes — which is also what makes the
//! hit path *byte-identical* to the cold path by construction.
//!
//! Single-flight: when N requests race on the same absent key, exactly one
//! computes; the rest block on the flight and receive the same `Arc`. A
//! thundering herd on one parameter point costs one estimation, not N.
//! Failed computations are **not** cached (the pending entry is removed so
//! a later request retries), and a panicking computation is caught and
//! converted into a failure so waiters never hang.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// The outcome of a cache lookup.
#[derive(Clone, Debug)]
pub enum Lookup {
    /// The key was cached; bytes served without computing.
    Hit(Arc<Vec<u8>>),
    /// This caller computed the value (cold path).
    Computed(Arc<Vec<u8>>),
    /// Another caller was computing; this one waited and shares the bytes.
    Waited(Arc<Vec<u8>>),
    /// The computation failed; nothing was cached.
    Failed(String),
}

impl Lookup {
    /// The shared bytes, unless the computation failed.
    pub fn bytes(&self) -> Option<&Arc<Vec<u8>>> {
        match self {
            Lookup::Hit(b) | Lookup::Computed(b) | Lookup::Waited(b) => Some(b),
            Lookup::Failed(_) => None,
        }
    }
}

struct Flight {
    result: Mutex<Option<Result<Arc<Vec<u8>>, String>>>,
    done: Condvar,
}

enum Entry {
    Ready { bytes: Arc<Vec<u8>>, last_used: u64 },
    Pending(Arc<Flight>),
}

#[derive(Default)]
struct Shard {
    map: HashMap<String, Entry>,
    tick: u64,
}

impl Shard {
    fn ready_len(&self) -> usize {
        self.map
            .values()
            .filter(|e| matches!(e, Entry::Ready { .. }))
            .count()
    }

    /// Evicts least-recently-used ready entries down to `cap`. Pending
    /// entries are never evicted (their flight owns the key).
    fn evict_to(&mut self, cap: usize) {
        while self.ready_len() > cap {
            let victim = self
                .map
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Ready { last_used, .. } => Some((*last_used, k.clone())),
                    Entry::Pending(_) => None,
                })
                .min();
            match victim {
                Some((_, key)) => {
                    self.map.remove(&key);
                }
                None => break,
            }
        }
    }
}

/// A fixed-shard-count cache; see the module docs.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    cap_per_shard: usize,
}

impl ShardedCache {
    /// A cache of at most `entries` ready values across `shards` shards
    /// (both floored at 1). Sharding bounds lock contention: two requests
    /// for different points rarely touch the same mutex.
    pub fn new(entries: usize, shards: usize) -> ShardedCache {
        let shards = shards.max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            cap_per_shard: (entries.max(1)).div_ceil(shards),
        }
    }

    /// Total ready entries currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).ready_len()).sum()
    }

    /// Whether the cache holds no ready entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock<'s>(&self, shard: &'s Mutex<Shard>) -> std::sync::MutexGuard<'s, Shard> {
        shard.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn shard_for(&self, key: &str) -> &Mutex<Shard> {
        // FNV-1a; shards is non-empty by construction.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in key.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        let idx = (h % self.shards.len() as u64) as usize;
        self.shards.get(idx).unwrap_or_else(|| {
            // Unreachable (idx < len); kept total for defensiveness.
            &self.shards[0]
        })
    }

    /// Nonblocking peek: the cached bytes for `key` if they are ready
    /// right now, else `None`. Pending flights are *not* waited on — this
    /// is the event loop's warm-path probe, which must never block; a
    /// `None` sends the request to the worker pool where
    /// [`get_or_compute`](ShardedCache::get_or_compute) may legitimately
    /// wait. A ready hit refreshes LRU recency exactly like a blocking hit.
    pub fn get_if_ready(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        let shard = self.shard_for(key);
        let mut guard = self.lock(shard);
        guard.tick += 1;
        let tick = guard.tick;
        match guard.map.get_mut(key) {
            Some(Entry::Ready { bytes, last_used }) => {
                *last_used = tick;
                Some(Arc::clone(bytes))
            }
            _ => None,
        }
    }

    /// Returns the cached bytes for `key`, or runs `compute` exactly once
    /// across all concurrent callers of the same key.
    pub fn get_or_compute(
        &self,
        key: &str,
        compute: impl FnOnce() -> Result<Vec<u8>, String>,
    ) -> Lookup {
        let shard = self.shard_for(key);
        let flight = {
            let mut guard = self.lock(shard);
            guard.tick += 1;
            let tick = guard.tick;
            match guard.map.get_mut(key) {
                Some(Entry::Ready { bytes, last_used }) => {
                    *last_used = tick;
                    return Lookup::Hit(Arc::clone(bytes));
                }
                Some(Entry::Pending(flight)) => {
                    let flight = Arc::clone(flight);
                    drop(guard);
                    return wait_for(&flight);
                }
                None => {
                    let flight = Arc::new(Flight {
                        result: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    guard
                        .map
                        .insert(key.to_string(), Entry::Pending(Arc::clone(&flight)));
                    flight
                }
            }
        };

        // Cold path: compute outside any shard lock. Panics become
        // failures so flight waiters are always released.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(compute))
            .unwrap_or_else(|_| Err("computation panicked".to_string()))
            .map(Arc::new);
        {
            let mut slot = flight.result.lock().unwrap_or_else(|e| e.into_inner());
            *slot = Some(result.clone());
            flight.done.notify_all();
        }
        let mut guard = self.lock(shard);
        match &result {
            Ok(bytes) => {
                let tick = guard.tick;
                guard.map.insert(
                    key.to_string(),
                    Entry::Ready {
                        bytes: Arc::clone(bytes),
                        last_used: tick,
                    },
                );
                guard.evict_to(self.cap_per_shard);
                Lookup::Computed(Arc::clone(bytes))
            }
            Err(e) => {
                guard.map.remove(key);
                Lookup::Failed(e.clone())
            }
        }
    }
}

fn wait_for(flight: &Flight) -> Lookup {
    let mut slot = flight.result.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        match slot.as_ref() {
            Some(Ok(bytes)) => return Lookup::Waited(Arc::clone(bytes)),
            Some(Err(e)) => return Lookup::Failed(e.clone()),
            None => {
                slot = flight.done.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn cold_then_hit_share_identical_bytes() {
        let cache = ShardedCache::new(8, 2);
        let cold = cache.get_or_compute("k", || Ok(b"payload".to_vec()));
        let hit = cache.get_or_compute("k", || Ok(b"DIFFERENT".to_vec()));
        let (cold, hit) = match (&cold, &hit) {
            (Lookup::Computed(c), Lookup::Hit(h)) => (c, h),
            other => panic!("unexpected outcomes {other:?}"),
        };
        assert_eq!(cold, hit);
        assert!(Arc::ptr_eq(cold, hit));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failures_are_not_cached_and_retry() {
        let cache = ShardedCache::new(8, 1);
        let calls = AtomicUsize::new(0);
        let fail = cache.get_or_compute("k", || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err("nope".to_string())
        });
        assert!(matches!(fail, Lookup::Failed(ref e) if e == "nope"));
        assert_eq!(cache.len(), 0);
        let ok = cache.get_or_compute("k", || {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(b"v".to_vec())
        });
        assert!(matches!(ok, Lookup::Computed(_)));
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn panicking_computation_fails_cleanly() {
        let cache = ShardedCache::new(8, 1);
        let out = cache.get_or_compute("k", || panic!("boom"));
        assert!(matches!(out, Lookup::Failed(_)));
        // The pending entry was removed; the key is computable again.
        let ok = cache.get_or_compute("k", || Ok(b"v".to_vec()));
        assert!(matches!(ok, Lookup::Computed(_)));
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let cache = ShardedCache::new(2, 1);
        cache.get_or_compute("a", || Ok(b"1".to_vec()));
        cache.get_or_compute("b", || Ok(b"2".to_vec()));
        // Touch `a` so `b` is the LRU victim.
        assert!(matches!(
            cache.get_or_compute("a", || Ok(b"X".to_vec())),
            Lookup::Hit(_)
        ));
        cache.get_or_compute("c", || Ok(b"3".to_vec()));
        assert_eq!(cache.len(), 2);
        assert!(matches!(
            cache.get_or_compute("a", || Ok(b"recompute-a".to_vec())),
            Lookup::Hit(_)
        ));
        assert!(matches!(
            cache.get_or_compute("b", || Ok(b"recompute-b".to_vec())),
            Lookup::Computed(_)
        ));
    }

    #[test]
    fn get_if_ready_peeks_without_computing_and_refreshes_recency() {
        let cache = ShardedCache::new(2, 1);
        assert!(cache.get_if_ready("a").is_none(), "empty cache: not ready");
        cache.get_or_compute("a", || Ok(b"1".to_vec()));
        cache.get_or_compute("b", || Ok(b"2".to_vec()));
        // The peek refreshes `a`'s recency, so inserting `c` evicts `b`.
        assert_eq!(
            cache.get_if_ready("a").map(|v| v.to_vec()),
            Some(b"1".to_vec())
        );
        cache.get_or_compute("c", || Ok(b"3".to_vec()));
        assert!(cache.get_if_ready("a").is_some());
        assert!(cache.get_if_ready("b").is_none());
    }

    #[test]
    fn get_if_ready_ignores_pending_flights() {
        let cache = Arc::new(ShardedCache::new(8, 1));
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let worker = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                cache.get_or_compute("k", move || {
                    started_tx.send(()).ok();
                    release_rx.recv().ok();
                    Ok(b"v".to_vec())
                })
            })
        };
        started_rx.recv().unwrap();
        assert!(
            cache.get_if_ready("k").is_none(),
            "a pending flight must not block or count as ready"
        );
        release_tx.send(()).unwrap();
        worker.join().unwrap();
        assert!(cache.get_if_ready("k").is_some());
    }

    #[test]
    fn single_flight_computes_once_under_contention() {
        let cache = Arc::new(ShardedCache::new(8, 4));
        let calls = Arc::new(AtomicUsize::new(0));
        let results: Vec<Lookup> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let calls = Arc::clone(&calls);
                    scope.spawn(move || {
                        cache.get_or_compute("point", move || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(b"shared-bytes".to_vec())
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "compute ran once");
        let first = results[0].bytes().expect("no failure");
        for r in &results {
            assert!(Arc::ptr_eq(first, r.bytes().expect("no failure")));
        }
        assert_eq!(
            results
                .iter()
                .filter(|r| matches!(r, Lookup::Computed(_)))
                .count(),
            1
        );
    }
}
