//! A minimal, defensive HTTP/1.1 layer over `std` only.
//!
//! This file is inside fairlint's S2 scope: it parses **untrusted network
//! input**, so every path returns a typed [`ParseError`] instead of
//! panicking — no `unwrap`/`expect`/`panic!`/slice indexing that can trip.
//! Limits are enforced before allocation-heavy work: request heads are
//! capped at [`MAX_HEAD_BYTES`], targets at [`MAX_TARGET_BYTES`], and
//! header counts at [`MAX_HEADERS`]; oversized or truncated input fails
//! fast with a typed error the server maps to `400`/`431`.

use std::io::Read;
use std::sync::Arc;

/// Maximum bytes of request head (request line + headers) accepted.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum header lines accepted.
pub const MAX_HEADERS: usize = 64;
/// Maximum bytes of request target (path + query) accepted.
pub const MAX_TARGET_BYTES: usize = 4096;

/// Why a request could not be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The stream ended before the blank line terminating the head.
    Truncated,
    /// The head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The request line was not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine,
    /// The target was not an origin-form path or exceeded the cap.
    BadTarget,
    /// More than [`MAX_HEADERS`] header lines.
    TooManyHeaders,
    /// A header line had no `:` separator.
    BadHeader,
    /// Reading from the socket failed (timeout, reset).
    Io(String),
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "request head truncated"),
            ParseError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            ParseError::BadRequestLine => write!(f, "malformed request line"),
            ParseError::BadTarget => write!(f, "malformed request target"),
            ParseError::TooManyHeaders => write!(f, "more than {MAX_HEADERS} headers"),
            ParseError::BadHeader => write!(f, "malformed header line"),
            ParseError::Io(e) => write!(f, "read error: {e}"),
        }
    }
}

/// A parsed request head. Bodies are not modeled — every endpoint this
/// service exposes is parameterized entirely by the target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-cased as sent (`GET`, `POST`, …).
    pub method: String,
    /// Percent-decoded path component (always starts with `/`).
    pub path: String,
    /// Percent-decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Whether the request line claimed HTTP/1.1 or later (anything but
    /// `HTTP/1.0`); drives the keep-alive default.
    pub version_11: bool,
}

impl Request {
    /// First query parameter named `name` (exact match).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked (or defaulted) to keep the connection
    /// open after the response. `Connection: close` always wins; an
    /// explicit `keep-alive` token opts in; otherwise HTTP/1.1 defaults
    /// to keep-alive and HTTP/1.0 to close.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(value) => {
                let mut close = false;
                let mut keep = false;
                for token in value.split(',') {
                    let token = token.trim();
                    close |= token.eq_ignore_ascii_case("close");
                    keep |= token.eq_ignore_ascii_case("keep-alive");
                }
                !close && (keep || self.version_11)
            }
            None => self.version_11,
        }
    }

    /// Whether the request claims to carry a body. Bodies are not modeled
    /// (no endpoint takes one), so the connection layer uses this to fall
    /// back to close-after-response rather than desynchronize the stream.
    pub fn has_body(&self) -> bool {
        let length = self
            .header("content-length")
            .map(|v| v.trim() != "0")
            .unwrap_or(false);
        length || self.header("transfer-encoding").is_some()
    }
}

/// Reads one request head from `stream` (up to the `\r\n\r\n` terminator,
/// within [`MAX_HEAD_BYTES`]) and parses it. Any trailing body bytes are
/// left unread — the connection is closed after one response.
pub fn read_request(stream: &mut impl Read) -> Result<Request, ParseError> {
    let mut head: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if find_head_end(&head).is_some() {
            break;
        }
        if head.len() >= MAX_HEAD_BYTES {
            return Err(ParseError::HeadTooLarge);
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| ParseError::Io(e.to_string()))?;
        if n == 0 {
            return Err(ParseError::Truncated);
        }
        head.extend_from_slice(chunk.get(..n).unwrap_or_default());
    }
    let end = find_head_end(&head).ok_or(ParseError::Truncated)?;
    parse_request(head.get(..end).unwrap_or_default())
}

/// Byte offset of the first `\r\n\r\n` (or lenient `\n\n`) terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    split_head(buf).map(|(head_len, _)| head_len)
}

/// Locates the first complete request head in `buf`, returning
/// `(head_len, consumed)`: the head's byte length (terminator excluded)
/// and the total bytes consumed including the terminator. This is the
/// pipelining primitive — the connection layer parses `buf[..head_len]`,
/// drops `consumed` bytes, and repeats while more full heads are buffered.
///
/// Both `\r\n\r\n` and the lenient bare `\n\n` terminate a head; whichever
/// ends *earliest* wins, so a strictly-terminated head queued behind a
/// leniently-terminated one is never swallowed into its predecessor.
pub fn split_head(buf: &[u8]) -> Option<(usize, usize)> {
    let crlf = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| (p, p + 4));
    let lf = buf
        .windows(2)
        .position(|w| w == b"\n\n")
        .map(|p| (p, p + 2));
    match (crlf, lf) {
        (Some((h4, c4)), Some((h2, c2))) => {
            if c2 < c4 {
                Some((h2, c2))
            } else {
                Some((h4, c4))
            }
        }
        (Some(found), None) | (None, Some(found)) => Some(found),
        (None, None) => None,
    }
}

/// Parses a request head (request line + header lines, no body).
/// Total function: for any byte string it returns `Ok` or a typed error.
pub fn parse_request(head: &[u8]) -> Result<Request, ParseError> {
    if head.len() > MAX_HEAD_BYTES {
        return Err(ParseError::HeadTooLarge);
    }
    let text = String::from_utf8_lossy(head);
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().ok_or(ParseError::BadRequestLine)?;
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts.next().ok_or(ParseError::BadRequestLine)?;
    let target = parts.next().ok_or(ParseError::BadRequestLine)?;
    let version = parts.next().ok_or(ParseError::BadRequestLine)?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequestLine);
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(ParseError::BadRequestLine);
    }
    if target.len() > MAX_TARGET_BYTES || !target.starts_with('/') {
        return Err(ParseError::BadTarget);
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path);
    if path.bytes().any(|b| b < 0x20) {
        return Err(ParseError::BadTarget);
    }
    let query = raw_query.map(parse_query).unwrap_or_default();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::TooManyHeaders);
        }
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        let name = name.trim();
        if name.is_empty() || name.bytes().any(|b| b <= 0x20 || b == b':') {
            return Err(ParseError::BadHeader);
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        version_11: version != "HTTP/1.0",
    })
}

/// Splits `a=1&b=two` into decoded pairs; a key without `=` gets an
/// empty value; empty segments are skipped.
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|seg| !seg.is_empty())
        .map(|seg| match seg.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(seg), String::new()),
        })
        .collect()
}

/// Decodes `%XX` escapes and `+`-as-space. Invalid escapes are kept
/// literally (lenient — a decoder must never fail on attacker bytes);
/// non-UTF-8 results are replaced lossily.
fn percent_decode(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0usize;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b? {
        b @ b'0'..=b'9' => Some(b - b'0'),
        b @ b'a'..=b'f' => Some(b - b'a' + 10),
        b @ b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// A response body: either owned bytes (per-request documents) or a
/// shared reference into the result cache. The shared form is what makes
/// the warm path copy-free — the connection layer serializes the head and
/// hands the `Arc`'d body to a vectored write, so a cache hit never
/// duplicates the payload.
#[derive(Clone, Debug)]
pub enum Body {
    /// Owned bytes.
    Bytes(Vec<u8>),
    /// A shared immutable cached body, served without copying.
    Shared(Arc<Vec<u8>>),
}

impl Body {
    /// The body bytes, whichever representation holds them.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Body::Bytes(v) => v,
            Body::Shared(a) => a,
        }
    }

    /// Body length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Extracts owned bytes (clones only when the cache still shares them).
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            Body::Bytes(v) => v,
            Body::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| a.as_ref().clone()),
        }
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Body) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Body {}

impl From<Vec<u8>> for Body {
    fn from(v: Vec<u8>) -> Body {
        Body::Bytes(v)
    }
}

impl From<String> for Body {
    fn from(s: String) -> Body {
        Body::Bytes(s.into_bytes())
    }
}

impl From<&str> for Body {
    fn from(s: &str) -> Body {
        Body::Bytes(s.as_bytes().to_vec())
    }
}

impl From<Arc<Vec<u8>>> for Body {
    fn from(a: Arc<Vec<u8>>) -> Body {
        Body::Shared(a)
    }
}

/// An HTTP response ready to serialize. The `Connection` header is chosen
/// at serialization time ([`Response::head_bytes`]) — the same response
/// value can close a one-shot connection or ride a keep-alive stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 400, 404, 429, 503, …).
    pub status: u16,
    /// Extra headers beyond the always-present set.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Body,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Body>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".to_string(), "application/json".to_string())],
            body: body.into(),
        }
    }

    /// A JSON error response `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        let body = fair_simlab::json::Json::obj()
            .field("error", fair_simlab::json::Json::str(message))
            .render()
            + "\n";
        Response::json(status, body)
    }

    /// Adds a header, builder-style.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The canonical reason phrase for the status line.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }

    /// Serializes the status line and headers only — custom headers in
    /// order, then `Content-Length`, then the `Connection` disposition,
    /// then the blank line. The body is deliberately absent so the
    /// connection layer can gather head + shared body in one vectored
    /// write without copying cached bytes.
    pub fn head_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason()).into_bytes();
        for (name, value) in &self.headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        if keep_alive {
            out.extend_from_slice(b"Connection: keep-alive\r\n\r\n");
        } else {
            out.extend_from_slice(b"Connection: close\r\n\r\n");
        }
        out
    }

    /// Serializes status line, headers (with `Content-Length` and
    /// `Connection: close`), and body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.head_bytes(false);
        out.extend_from_slice(self.body.as_slice());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Request, ParseError> {
        parse_request(s.as_bytes())
    }

    #[test]
    fn parses_a_plain_get() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\nX-A: b\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.query.is_empty());
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("x-a"), Some("b"));
        assert_eq!(req.header("missing"), None);
    }

    #[test]
    fn parses_query_parameters_with_decoding() {
        let req = parse("GET /estimate?exp=e1&trials=100&seed=7&x=a%20b+c HTTP/1.1\r\n").unwrap();
        assert_eq!(req.path, "/estimate");
        assert_eq!(req.query_param("exp"), Some("e1"));
        assert_eq!(req.query_param("trials"), Some("100"));
        assert_eq!(req.query_param("seed"), Some("7"));
        assert_eq!(req.query_param("x"), Some("a b c"));
        assert_eq!(req.query_param("nope"), None);
    }

    #[test]
    fn lenient_on_invalid_percent_escapes() {
        let req = parse("GET /p?k=%zz%2 HTTP/1.1\r\n").unwrap();
        assert_eq!(req.query_param("k"), Some("%zz%2"));
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for bad in [
            "",
            "GET\r\n",
            "GET /\r\n",
            "GET / HTTP/2\r\n",
            "GET / HTTP/1.1 extra\r\n",
            "G=T / HTTP/1.1\r\n",
            "GET nopath HTTP/1.1\r\n",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_oversized_and_overfull_heads() {
        let long_target = format!("GET /{} HTTP/1.1\r\n", "a".repeat(MAX_TARGET_BYTES));
        assert_eq!(parse(&long_target), Err(ParseError::BadTarget));
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        assert_eq!(parse(&many), Err(ParseError::TooManyHeaders));
        let huge = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert_eq!(parse_request(&huge), Err(ParseError::HeadTooLarge));
    }

    #[test]
    fn read_request_stops_at_the_blank_line() {
        let mut stream =
            std::io::Cursor::new(b"GET /x?a=1 HTTP/1.1\r\nHost: h\r\n\r\nBODY".to_vec());
        let req = read_request(&mut stream).unwrap();
        assert_eq!(req.path, "/x");
        assert_eq!(req.query_param("a"), Some("1"));
    }

    #[test]
    fn read_request_errors_on_truncation_and_oversize() {
        let mut truncated = std::io::Cursor::new(b"GET / HTTP/1.1\r\nHost".to_vec());
        assert_eq!(read_request(&mut truncated), Err(ParseError::Truncated));
        let mut huge = std::io::Cursor::new(vec![b'x'; MAX_HEAD_BYTES + 64]);
        assert_eq!(read_request(&mut huge), Err(ParseError::HeadTooLarge));
    }

    #[test]
    fn response_serialization_has_length_and_close() {
        let resp = Response::json(200, "{}\n").with_header("X-Cache", "hit");
        let bytes = resp.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n\r\n{}\n"));
        let err = Response::error(429, "overloaded");
        assert_eq!(err.status, 429);
        assert_eq!(err.reason(), "Too Many Requests");
        assert!(String::from_utf8(err.body.into_vec())
            .unwrap()
            .contains("overloaded"));
    }

    #[test]
    fn keep_alive_serialization_differs_only_in_connection() {
        let resp = Response::json(200, "{}\n");
        let close = String::from_utf8(resp.head_bytes(false)).unwrap();
        let keep = String::from_utf8(resp.head_bytes(true)).unwrap();
        assert!(close.ends_with("Connection: close\r\n\r\n"));
        assert!(keep.ends_with("Connection: keep-alive\r\n\r\n"));
        assert_eq!(
            close.replace("Connection: close", "Connection: keep-alive"),
            keep
        );
    }

    #[test]
    fn shared_and_owned_bodies_serialize_identically() {
        let bytes = b"{\"v\":1}\n".to_vec();
        let owned = Response::json(200, bytes.clone());
        let shared = Response::json(200, Arc::new(bytes));
        assert_eq!(owned.to_bytes(), shared.to_bytes());
        assert_eq!(owned.body, shared.body);
        assert_eq!(shared.body.len(), 8);
    }

    #[test]
    fn split_head_finds_each_pipelined_head_in_turn() {
        let buf = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nHost: x\r\n\r\ntail";
        let (head_len, consumed) = split_head(buf).unwrap();
        assert_eq!(&buf[..head_len], b"GET /a HTTP/1.1");
        let rest = &buf[consumed..];
        let (head2, consumed2) = split_head(rest).unwrap();
        assert_eq!(&rest[..head2], b"GET /b HTTP/1.1\r\nHost: x");
        assert_eq!(&rest[consumed2..], b"tail");
        assert_eq!(split_head(b"GET / HTTP/1.1\r\nHost"), None);
    }

    #[test]
    fn split_head_prefers_the_earlier_terminator() {
        // A lenient \n\n head queued before a strict \r\n\r\n head must
        // split at the \n\n, not swallow both requests into one head.
        let buf = b"GET /a HTTP/1.1\n\nGET /b HTTP/1.1\r\n\r\n";
        let (head_len, consumed) = split_head(buf).unwrap();
        assert_eq!(&buf[..head_len], b"GET /a HTTP/1.1");
        assert_eq!(consumed, head_len + 2);
    }

    #[test]
    fn keep_alive_detection_follows_version_and_header() {
        let req = |head: &str| parse_request(head.as_bytes()).unwrap();
        assert!(req("GET / HTTP/1.1\r\n").wants_keep_alive());
        assert!(!req("GET / HTTP/1.0\r\n").wants_keep_alive());
        assert!(!req("GET / HTTP/1.1\r\nConnection: close\r\n").wants_keep_alive());
        assert!(req("GET / HTTP/1.0\r\nConnection: keep-alive\r\n").wants_keep_alive());
        assert!(!req("GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n").wants_keep_alive());
        assert!(!req("GET / HTTP/1.1\r\nConnection: CLOSE\r\n").wants_keep_alive());
    }

    #[test]
    fn body_detection_flags_nonzero_length_and_chunked() {
        let req = |head: &str| parse_request(head.as_bytes()).unwrap();
        assert!(!req("GET / HTTP/1.1\r\n").has_body());
        assert!(!req("GET / HTTP/1.1\r\nContent-Length: 0\r\n").has_body());
        assert!(req("GET / HTTP/1.1\r\nContent-Length: 3\r\n").has_body());
        assert!(req("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n").has_body());
    }
}
