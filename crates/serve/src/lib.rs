#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `fair-serve` — a zero-dependency HTTP/1.1 estimation service over the
//! experiment registry.
//!
//! The batch entry point (`reproduce`) answers "run everything, write
//! records"; this crate answers *queries*: `GET
//! /estimate?exp=e5&trials=1000&seed=7` runs that one Monte-Carlo
//! estimation through the same deterministic machinery and returns the
//! canonical result document — **byte-identical** to what a batch run
//! records for the same point, whether the response was computed cold or
//! served from the cache.
//!
//! Layers (bottom-up):
//! - [`http`]: a defensive request parser / response serializer over
//!   `std` only; total on arbitrary bytes (fairlint S2 scope). Supplies
//!   the pipelining primitive ([`http::split_head`]) and copy-free
//!   shared response bodies ([`http::Body`]).
//! - [`cache`]: a sharded LRU of rendered bodies with single-flight
//!   deduplication — a thundering herd on one point computes once. The
//!   nonblocking [`cache::ShardedCache::get_if_ready`] peek serves the
//!   event loop's warm path.
//! - [`service`]: routing, parameter validation, the [`service::Backend`]
//!   trait the bench crate implements, and the `/metrics` document. The
//!   [`service::Verdict`] split (`Reply` inline vs `Offload` ticket)
//!   decides what runs on the loop and what goes to a worker.
//! - `event_loop` (internal): one shard of the serving core on
//!   [`fair_aio`] — readiness polling, HTTP/1.1 keep-alive and
//!   pipelining, vectored writes — with cold work on a bounded
//!   [`fair_simlab::WorkerPool`] (429 when the queue is full),
//!   per-request deadlines (503), and a coordinated drain-then-flush
//!   shutdown.
//! - [`server`]: the coordinator — binds one listener per event loop
//!   ([`ServerConfig::loops`], `SO_REUSEPORT` accept sharding with a
//!   dup-listener fallback), owns the shared worker pool, shutdown
//!   latch, and drain barrier, and aggregates per-loop `/metrics`
//!   counters.
//! - [`streaming`]: the chunked `GET /stream` endpoint — progressive
//!   estimation frames with CI-bounded early stop (`epsilon=`).
//! - [`client`]: a minimal blocking client for `fair-load` and tests.
//!
//! Estimation work is additionally keyed through the `fair-tiles` store
//! when one is configured ([`ServerConfig::tiles_dir`]): full 64-trial
//! tiles persist across requests *and* restarts, so growing `trials` for
//! a known `(exp, seed)` only computes the missing tail tiles.
//!
//! The crate depends only on `fair-simlab` (pool, JSON) and `fair-trace`
//! (metrics export); the experiment registry arrives through the
//! [`service::Backend`] trait, keeping `fair-serve` below `fair-bench` in
//! the dependency order.

pub mod cache;
pub mod client;
mod event_loop;
pub mod http;
pub mod server;
pub mod service;
pub mod stats;
pub mod streaming;

pub use cache::{Lookup, ShardedCache};
pub use client::{Conn, HttpReply};
pub use http::{Body, Request, Response};
pub use server::{AcceptSharding, Server, ServerConfig};
pub use service::{Backend, ProgressUpdate, Service, ServiceConfig};
pub use stats::ServerStats;
