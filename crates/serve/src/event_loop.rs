//! One event loop of the sharded serving core.
//!
//! Each [`EventLoop`] owns a full single-threaded serving stack: its own
//! `fair_aio::Poller`, listener (a `SO_REUSEPORT` group member or a dup of
//! one shared listener), connection slab, [`TimerWheel`], wake eventfd, and
//! completion queue. Nothing here is locked on the hot path — the only
//! state shared *between* loops is the result cache (sharded, single-flight
//! deduped), the tile store, the bounded [`WorkerPool`], and the shutdown
//! latch, all reached through [`Service`]. Even the `/metrics` counters are
//! loop-local blocks ([`Service::register_loop_stats`]) folded together at
//! snapshot time.
//!
//! The warm path never leaves the loop: parse a buffered head, probe the
//! result cache, serialize the response head, and gather head + shared
//! `Arc` body into one vectored write. Cold `/estimate`s and `/stream`
//! responses run on the shared pool (429 when the queue refuses,
//! per-request deadline 503s); a finished cold job pushes its response onto
//! *its* loop's completion queue and rings *that* loop's waker, so replies
//! always splice back into the connection's pipeline slot on the thread
//! that owns it — pipelined responses never reorder, sharded or not.
//!
//! Shutdown is a coordinated drain: every loop stops polling at the latch,
//! meets at the [`DrainBarrier`], one loop drains the shared pool, and then
//! each loop splices its own completions and flushes its connections with
//! bounded blocking writes.

use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fair_aio::{Event, Interest, Poller, TimerWheel, Token, Waker};
use fair_simlab::{SubmitError, WorkerPool};

use crate::http::{self, Body, ParseError, Request, Response};
use crate::server::ServerConfig;
use crate::service::{Service, Verdict};
use crate::stats::ServerStats;

/// How often the loop wakes to poll the shutdown latch and the wheel.
const LOOP_TICK: Duration = Duration::from_millis(10);
/// Timer wheel resolution — coarse on purpose; timeouts are seconds.
const WHEEL_TICK: Duration = Duration::from_millis(100);
const WHEEL_SLOTS: usize = 128;
/// Listener and waker get the two reserved tokens below this base.
const CONN_BASE: u64 = 2;
const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
/// Per-call read chunk; also bounds one event's read before yielding.
const READ_CHUNK: usize = 16 * 1024;
/// Reads per readiness event before yielding to other connections.
const READ_BURSTS: usize = 4;
/// Response buffers gathered into one vectored write.
const WRITEV_BATCH: usize = 32;
/// How long the drain phase will block flushing one connection's tail.
const DRAIN_WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// Slot generations travel in a token's high 32 bits, so only their low 32
/// bits survive the trip through the poller and the timer wheel. Every pack
/// and compare site goes through [`gen_tag`]: without the mask, a slab
/// generation ≥ 2^32 would alias an earlier token at pack time while
/// comparing unequal at check time — a stale timer could then kill a live
/// connection, and live events would be dropped as stale.
const GEN_MASK: u64 = 0xffff_ffff;

/// The 32-bit tag of a (monotonically growing, unbounded) slot generation.
fn gen_tag(gen: u64) -> u64 {
    gen & GEN_MASK
}

fn token_for(idx: usize, gen: u64) -> Token {
    Token((gen_tag(gen) << 32) | (idx as u64 + CONN_BASE))
}

fn split_token(token: Token) -> Option<(usize, u64)> {
    let low = token.0 & 0xffff_ffff;
    if low < CONN_BASE {
        return None;
    }
    Some(((low - CONN_BASE) as usize, token.0 >> 32))
}

/// A reusable rendezvous for the coordinated shutdown drain. Like
/// `std::sync::Barrier`, [`wait`](DrainBarrier::wait) blocks until every
/// party arrives and returns `true` for exactly one of them (the leader,
/// who drains the shared pool). Unlike std's, a party that never started —
/// a failed loop-thread spawn — can be withdrawn with
/// [`leave`](DrainBarrier::leave), so the surviving loops still drain
/// instead of deadlocking on an arrival that will never come.
pub(crate) struct DrainBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    parties: usize,
    arrived: usize,
    generation: u64,
    /// A `leave` completed the generation, so no waiter returned leader
    /// from the fast path; the first released waiter claims leadership.
    leader_pending: bool,
}

impl DrainBarrier {
    pub(crate) fn new(parties: usize) -> DrainBarrier {
        DrainBarrier {
            state: Mutex::new(BarrierState {
                parties: parties.max(1),
                arrived: 0,
                generation: 0,
                leader_pending: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until every party has arrived; `true` for exactly one caller.
    pub(crate) fn wait(&self) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.arrived += 1;
        if st.arrived >= st.parties {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            drop(st);
            self.cv.notify_all();
            return true;
        }
        let gen = st.generation;
        while st.generation == gen {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.leader_pending {
            st.leader_pending = false;
            return true;
        }
        false
    }

    /// Withdraws one party that will never arrive. If the remaining
    /// arrivals already cover the shrunken count, the generation completes
    /// and one released waiter becomes the leader.
    pub(crate) fn leave(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.parties = st.parties.saturating_sub(1).max(1);
        if st.arrived >= st.parties && st.arrived > 0 {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            st.leader_pending = true;
            drop(st);
            self.cv.notify_all();
        }
    }
}

/// One response in flight on the wire: serialized head plus the body
/// (owned or cache-shared), each with a write cursor.
struct OutBuf {
    head: Vec<u8>,
    head_pos: usize,
    body: Body,
    body_pos: usize,
}

impl OutBuf {
    fn done(&self) -> bool {
        self.head_pos >= self.head.len() && self.body_pos >= self.body.len()
    }
}

/// One request's slot in a connection's response pipeline. Slots serialize
/// in FIFO order; a `Busy` slot (cold job on the pool) blocks later ready
/// responses from flushing, which is exactly HTTP pipelining's ordering
/// contract.
enum Pending {
    Ready(Response, bool),
    Busy { job: u64, keep_alive: bool },
}

/// What routing decided for one parsed request.
enum Routed {
    Reply(Response),
    Offloaded { job: u64 },
    Stream(Box<Request>),
}

struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes (bounded: heads are capped and parsing
    /// drains every complete head the pipeline cap admits).
    buf: Vec<u8>,
    pending: VecDeque<Pending>,
    out: VecDeque<OutBuf>,
    /// Requests successfully parsed on this connection.
    parsed: u64,
    /// Peer sent FIN, a close-disposition request, or a parse error:
    /// stop reading and parsing; flush what is queued, then close.
    no_more_reads: bool,
    close_after_drain: bool,
    /// Interest currently registered with the poller.
    registered: Interest,
    last_activity: Instant,
    /// A `/stream` request parked until earlier pipelined responses
    /// drain, at which point the connection detaches to a worker.
    deferred_stream: Option<Box<Request>>,
}

struct Completion {
    token: Token,
    job: u64,
    resp: Response,
}

/// Everything a loop shares with (or receives from) the coordinator.
pub(crate) struct LoopSpec {
    /// This loop's listener: a reuseport group member, a dup of one shared
    /// listener, or (single-loop) the only listener.
    pub listener: TcpListener,
    pub service: Arc<Service>,
    pub config: ServerConfig,
    pub shutdown: Arc<AtomicBool>,
    /// The worker pool, shared across loops; drained once at shutdown by
    /// the barrier leader.
    pub pool: Arc<WorkerPool>,
    pub barrier: Arc<DrainBarrier>,
}

pub(crate) struct EventLoop {
    poller: Poller,
    waker: Waker,
    wheel: TimerWheel,
    listener: TcpListener,
    pool: Arc<WorkerPool>,
    service: Arc<Service>,
    /// This loop's own counter block — hot-path bumps never touch a cache
    /// line another loop writes. `/metrics` folds the blocks together.
    stats: Arc<ServerStats>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    barrier: Arc<DrainBarrier>,
    conns: Vec<Option<Conn>>,
    gens: Vec<u64>,
    free: Vec<usize>,
    completions: Arc<Mutex<Vec<Completion>>>,
    events: Vec<Event>,
    next_job: u64,
}

impl EventLoop {
    pub(crate) fn new(spec: LoopSpec) -> std::io::Result<EventLoop> {
        let poller = Poller::new()?;
        let waker = Waker::new()?;
        poller.register(spec.listener.as_fd(), LISTENER, Interest::READ)?;
        poller.register(waker.as_fd(), WAKER, Interest::READ.edge_triggered())?;
        let now = Instant::now();
        let stats = spec.service.register_loop_stats();
        Ok(EventLoop {
            poller,
            waker,
            wheel: TimerWheel::new(now, WHEEL_TICK, WHEEL_SLOTS),
            listener: spec.listener,
            pool: spec.pool,
            service: spec.service,
            stats,
            config: spec.config,
            shutdown: spec.shutdown,
            barrier: spec.barrier,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            completions: Arc::new(Mutex::new(Vec::new())),
            events: Vec::new(),
            next_job: 0,
        })
    }

    pub(crate) fn run(&mut self) -> std::io::Result<()> {
        let mut result = Ok(());
        while !self.shutdown.load(Ordering::SeqCst) {
            let mut events = std::mem::take(&mut self.events);
            if let Err(e) = self.poller.wait(Some(LOOP_TICK), &mut events) {
                self.events = events;
                if e.kind() == std::io::ErrorKind::Interrupted {
                    continue;
                }
                // A dead poller is fatal for the whole group: latch
                // shutdown so peer loops drain instead of leaving the
                // server half up.
                self.shutdown.store(true, Ordering::SeqCst);
                result = Err(e);
                break;
            }
            for i in 0..events.len() {
                let Some(ev) = events.get(i).copied() else {
                    break;
                };
                match ev.token {
                    LISTENER => self.accept_burst(),
                    WAKER => {
                        self.waker.drain();
                        self.apply_completions();
                    }
                    token => {
                        if let Some((idx, gen)) = split_token(token) {
                            self.conn_event(idx, gen, ev);
                        }
                    }
                }
            }
            self.events = events;
            // Completions can also land while the loop is mid-iteration;
            // a cheap lock probe per tick keeps cold latency at one tick
            // even if a wake edge coalesced into an already-drained batch.
            self.apply_completions();
            self.fire_timers();
        }
        self.drain();
        result
    }

    fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        self.pool.try_submit(job)
    }

    // ---- accept -------------------------------------------------------

    fn accept_burst(&mut self) {
        // Bounded burst so one accept storm cannot starve live conns.
        for _ in 0..256 {
            match self.listener.accept() {
                Ok((stream, _peer)) => self.install_conn(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn install_conn(&mut self, stream: TcpStream) {
        ServerStats::bump(&self.stats.accepted);
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let now = Instant::now();
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.conns.push(None);
                self.gens.push(0);
                self.conns.len() - 1
            }
        };
        let gen = self.gens.get(idx).copied().unwrap_or(0);
        let token = token_for(idx, gen);
        if self
            .poller
            .register(stream.as_fd(), token, Interest::READ)
            .is_err()
        {
            return;
        }
        let conn = Conn {
            stream,
            buf: Vec::new(),
            pending: VecDeque::new(),
            out: VecDeque::new(),
            parsed: 0,
            no_more_reads: false,
            close_after_drain: false,
            registered: Interest::READ,
            last_activity: now,
            deferred_stream: None,
        };
        if let Some(slot) = self.conns.get_mut(idx) {
            *slot = Some(conn);
        }
        self.wheel
            .arm(now, self.config.read_timeout, token, gen_tag(gen));
    }

    // ---- per-connection event handling --------------------------------

    fn conn_event(&mut self, idx: usize, gen: u64, ev: Event) {
        if self.gens.get(idx).copied().map(gen_tag) != Some(gen) {
            return; // stale event for a recycled slot
        }
        if ev.writable {
            self.conn_write(idx);
        }
        if ev.readable || ev.closed {
            self.conn_read(idx);
        }
        self.conn_pump(idx);
    }

    /// Reads whatever the socket has (bounded per event), appending to the
    /// connection's parse buffer.
    fn conn_read(&mut self, idx: usize) {
        let max_buffered = http::MAX_HEAD_BYTES.saturating_mul(2);
        let mut dead = false;
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
            if conn.no_more_reads {
                return;
            }
            let mut chunk = [0u8; READ_CHUNK];
            for _ in 0..READ_BURSTS {
                if conn.pending.len() >= self.config.max_pipeline || conn.buf.len() >= max_buffered
                {
                    break; // backpressure: stop pulling bytes
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.no_more_reads = true;
                        break;
                    }
                    Ok(n) => {
                        conn.buf
                            .extend_from_slice(chunk.get(..n).unwrap_or_default());
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.close_conn(idx);
        }
    }

    /// Parses every complete buffered head the pipeline cap admits, routes
    /// each, flushes ready responses to the write queue, writes, and
    /// re-syncs poller interest. The workhorse — called after reads, after
    /// completions, and after anything else that changes conn state.
    fn conn_pump(&mut self, idx: usize) {
        let arrival = Instant::now();
        loop {
            // Stage 1: pull one parsed request (or a parse failure) out of
            // the buffer under a short borrow.
            let parsed = {
                let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                    return;
                };
                if conn.close_after_drain
                    || conn.deferred_stream.is_some()
                    || conn.pending.len() >= self.config.max_pipeline
                {
                    None
                } else {
                    match http::split_head(&conn.buf) {
                        Some((head_len, consumed)) => {
                            let head: Vec<u8> =
                                conn.buf.get(..head_len).unwrap_or_default().to_vec();
                            conn.buf.drain(..consumed.min(conn.buf.len()));
                            conn.last_activity = arrival;
                            let result = http::parse_request(&head);
                            if result.is_ok() {
                                if conn.parsed >= 1 {
                                    ServerStats::bump(&self.stats.keepalive_reuses);
                                }
                                if !conn.pending.is_empty() || !conn.out.is_empty() {
                                    ServerStats::bump(&self.stats.pipelined_requests);
                                }
                                conn.parsed += 1;
                            }
                            Some(result)
                        }
                        None if conn.buf.len() >= http::MAX_HEAD_BYTES => {
                            conn.buf.clear();
                            Some(Err(ParseError::HeadTooLarge))
                        }
                        None => None,
                    }
                }
            };
            let Some(parsed) = parsed else {
                break;
            };
            // Stage 2: route without holding the connection borrow.
            match parsed {
                Ok(req) => {
                    let keep_alive = req.wants_keep_alive() && !req.has_body();
                    let gen = self.gens.get(idx).copied().unwrap_or(0);
                    let routed = self.route(idx, gen, req, arrival);
                    let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                        return;
                    };
                    match routed {
                        Routed::Reply(resp) => {
                            conn.pending.push_back(Pending::Ready(resp, keep_alive));
                        }
                        Routed::Offloaded { job } => {
                            conn.pending.push_back(Pending::Busy { job, keep_alive });
                        }
                        Routed::Stream(req) => {
                            // Park until earlier pipelined output drains,
                            // then the connection detaches to a worker.
                            conn.deferred_stream = Some(req);
                            conn.no_more_reads = true;
                        }
                    }
                    if !keep_alive {
                        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                            return;
                        };
                        conn.close_after_drain = true;
                        conn.no_more_reads = true;
                    }
                }
                Err(err) => {
                    let status = match err {
                        ParseError::HeadTooLarge => 431,
                        _ => 400,
                    };
                    self.stats.count_status(status);
                    let resp = Response::error(status, &err.to_string());
                    let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                        return;
                    };
                    conn.pending.push_back(Pending::Ready(resp, false));
                    conn.close_after_drain = true;
                    conn.no_more_reads = true;
                }
            }
        }
        self.flush_ready(idx);
        self.conn_write(idx);
        self.conn_maintain(idx);
    }

    /// Routes one request: deadline guard, `/stream` detach, warm-or-cold
    /// service verdict, pool submission with inline 429/503 on refusal.
    fn route(&mut self, idx: usize, gen: u64, req: Request, arrival: Instant) -> Routed {
        let deadline = self.config.deadline;
        if arrival.elapsed() > deadline {
            ServerStats::bump(&self.stats.deadline_expired);
            let resp = Response::error(503, "deadline expired before service")
                .with_header("Retry-After", "1");
            self.stats.count_status(resp.status);
            return Routed::Reply(resp);
        }
        if req.path == "/stream" {
            return Routed::Stream(Box::new(req));
        }
        match self.service.begin(&req) {
            Verdict::Reply(resp) => Routed::Reply(resp),
            Verdict::Offload(ticket) => {
                let job = self.next_job;
                self.next_job += 1;
                let token = token_for(idx, gen);
                let service = Arc::clone(&self.service);
                let completions = Arc::clone(&self.completions);
                let waker = self.waker.clone();
                let submitted = self.try_submit(move || {
                    let resp = if arrival.elapsed() > deadline {
                        // The job sat in the queue past its deadline:
                        // answer a bounded 503 instead of serving late.
                        ServerStats::bump(&service.stats.deadline_expired);
                        let resp = Response::error(503, "deadline expired before service")
                            .with_header("Retry-After", "1");
                        service.stats.count_status(resp.status);
                        resp
                    } else {
                        service.estimate_finish(ticket)
                    };
                    {
                        let mut queue = completions.lock().unwrap_or_else(|e| e.into_inner());
                        queue.push(Completion { token, job, resp });
                    }
                    // Guard dropped before ringing the loop.
                    waker.wake();
                });
                match submitted {
                    Ok(()) => Routed::Offloaded { job },
                    Err(SubmitError::QueueFull) => {
                        ServerStats::bump(&self.stats.rejected_queue_full);
                        let resp = Response::error(429, "server overloaded, retry later")
                            .with_header("Retry-After", "1");
                        self.stats.count_status(resp.status);
                        Routed::Reply(resp)
                    }
                    Err(SubmitError::ShuttingDown) => {
                        ServerStats::bump(&self.stats.rejected_shutdown);
                        let resp = Response::error(503, "server is shutting down");
                        self.stats.count_status(resp.status);
                        Routed::Reply(resp)
                    }
                }
            }
        }
    }

    /// Serializes the contiguous ready prefix of the pipeline into the
    /// write queue (head bytes built here; bodies ride as-is, shared
    /// cache bodies without a copy).
    fn flush_ready(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        while matches!(conn.pending.front(), Some(Pending::Ready(..))) {
            let Some(Pending::Ready(resp, keep_alive)) = conn.pending.pop_front() else {
                break;
            };
            let head = resp.head_bytes(keep_alive);
            conn.out.push_back(OutBuf {
                head,
                head_pos: 0,
                body: resp.body,
                body_pos: 0,
            });
        }
    }

    /// Writes as much queued output as the socket accepts, gathering up to
    /// [`WRITEV_BATCH`] responses per vectored write.
    fn conn_write(&mut self, idx: usize) {
        let mut dead = false;
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
            while !conn.out.is_empty() {
                let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(2 * WRITEV_BATCH);
                for ob in conn.out.iter().take(WRITEV_BATCH) {
                    let head_rest = ob.head.get(ob.head_pos..).unwrap_or_default();
                    if !head_rest.is_empty() {
                        slices.push(IoSlice::new(head_rest));
                    }
                    let body_rest = ob.body.as_slice().get(ob.body_pos..).unwrap_or_default();
                    if !body_rest.is_empty() {
                        slices.push(IoSlice::new(body_rest));
                    }
                }
                if slices.is_empty() {
                    conn.out.clear();
                    break;
                }
                match conn.stream.write_vectored(&slices) {
                    Ok(0) => break,
                    Ok(n) => {
                        advance_out(&mut conn.out, n);
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.close_conn(idx);
        }
    }

    /// Post-pump maintenance: detach a parked `/stream` once its turn
    /// comes, close fully-drained connections, and re-sync poller
    /// interest (read backpressure, write interest only while output is
    /// queued).
    fn conn_maintain(&mut self, idx: usize) {
        let (detach, close, desired) = {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            let drained = conn.pending.is_empty() && conn.out.is_empty();
            let detach = drained && conn.deferred_stream.is_some();
            let close = drained
                && !detach
                && (conn.close_after_drain || (conn.no_more_reads && conn.buf.is_empty()));
            let desired = Interest {
                readable: !conn.no_more_reads
                    && conn.pending.len() < self.config.max_pipeline
                    && conn.buf.len() < http::MAX_HEAD_BYTES.saturating_mul(2),
                writable: !conn.out.is_empty(),
                edge: false,
            };
            (detach, close, desired)
        };
        if detach {
            self.detach_stream(idx);
            return;
        }
        if close {
            self.close_conn(idx);
            return;
        }
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
            if desired != conn.registered {
                let token = token_for(idx, self.gens.get(idx).copied().unwrap_or(0));
                if self
                    .poller
                    .reregister(conn.stream.as_fd(), token, desired)
                    .is_ok()
                {
                    conn.registered = desired;
                }
            }
        }
    }

    /// Hands a `/stream` connection to the worker pool: the streaming
    /// handler writes chunked frames live while the estimation runs, which
    /// must not happen on the loop. The socket reverts to blocking mode
    /// and leaves the poller entirely; the worker closes it when done.
    fn detach_stream(&mut self, idx: usize) {
        let Some(mut conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        if let Some(g) = self.gens.get_mut(idx) {
            *g += 1;
        }
        self.free.push(idx);
        let _ = self.poller.deregister(conn.stream.as_fd());
        let Some(req) = conn.deferred_stream.take() else {
            return;
        };
        let _ = conn.stream.set_nonblocking(false);
        let _ = conn.stream.set_read_timeout(Some(self.config.read_timeout));
        let service = Arc::clone(&self.service);
        // `try_submit` consumes its closure even on failure, so the stream
        // rides in a shared slot the loop can take back to answer the
        // rejection itself.
        let slot = Arc::new(Mutex::new(Some(conn.stream)));
        let job_slot = Arc::clone(&slot);
        let submitted = self.try_submit(move || {
            let taken = job_slot.lock().unwrap_or_else(|e| e.into_inner()).take();
            if let Some(mut stream) = taken {
                crate::streaming::handle(&service, &mut stream, &req);
            }
        });
        if let Err(err) = submitted {
            let taken = slot.lock().unwrap_or_else(|e| e.into_inner()).take();
            let Some(mut stream) = taken else { return };
            let resp = match err {
                SubmitError::QueueFull => {
                    ServerStats::bump(&self.stats.rejected_queue_full);
                    Response::error(429, "server overloaded, retry later")
                        .with_header("Retry-After", "1")
                }
                SubmitError::ShuttingDown => {
                    ServerStats::bump(&self.stats.rejected_shutdown);
                    Response::error(503, "server is shutting down")
                }
            };
            self.stats.count_status(resp.status);
            // Head already parsed (no unread bytes to RST the reply away);
            // the socket is blocking again, so a plain write suffices.
            let _ = stream.write_all(&resp.to_bytes());
        }
    }

    // ---- completions and timers ---------------------------------------

    /// Splices finished cold responses back into their connections'
    /// pipeline slots and pumps those connections.
    fn apply_completions(&mut self) {
        let done = {
            let mut queue = self.completions.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *queue)
        };
        if done.is_empty() {
            return;
        }
        let mut touched: Vec<usize> = Vec::with_capacity(done.len());
        for completion in done {
            let Some((idx, gen)) = split_token(completion.token) else {
                continue;
            };
            if self.gens.get(idx).copied().map(gen_tag) != Some(gen) {
                continue; // connection died while the job ran
            }
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            for slot in conn.pending.iter_mut() {
                if let Pending::Busy { job, keep_alive } = slot {
                    if *job == completion.job {
                        *slot = Pending::Ready(completion.resp, *keep_alive);
                        conn.last_activity = Instant::now();
                        break;
                    }
                }
            }
            if !touched.contains(&idx) {
                touched.push(idx);
            }
        }
        for idx in touched {
            self.conn_pump(idx);
        }
    }

    /// Advances the wheel; fires close idle/stalled connections and
    /// re-arm live ones.
    fn fire_timers(&mut self) {
        let now = Instant::now();
        let mut fired: Vec<(Token, u64)> = Vec::new();
        self.wheel
            .advance(now, |token, gen| fired.push((token, gen)));
        for (token, gen) in fired {
            let Some((idx, token_gen)) = split_token(token) else {
                continue;
            };
            if self.gens.get(idx).copied().map(gen_tag) != Some(gen) || token_gen != gen {
                continue; // stale entry for a recycled slot
            }
            let (close, rearm) = {
                let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                    continue;
                };
                if !conn.pending.is_empty() {
                    // A cold job is in flight; its deadline bounds it.
                    // Stay patient and check again next period.
                    (false, self.config.keepalive_timeout)
                } else {
                    let idle = now.saturating_duration_since(conn.last_activity);
                    let limit = if !conn.out.is_empty() {
                        // Unread output: the client stopped draining.
                        self.config.keepalive_timeout
                    } else if conn.parsed == 0 || !conn.buf.is_empty() {
                        self.config.read_timeout
                    } else {
                        self.config.keepalive_timeout
                    };
                    if idle >= limit {
                        (true, limit)
                    } else {
                        (false, limit.saturating_sub(idle))
                    }
                }
            };
            if close {
                ServerStats::bump(&self.stats.conn_timeouts);
                self.close_conn(idx);
            } else {
                self.wheel.arm(now, rearm, token, gen);
            }
        }
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_fd());
        if let Some(g) = self.gens.get_mut(idx) {
            *g += 1;
        }
        self.free.push(idx);
        // `conn.stream` drops here, closing the socket.
    }

    // ---- shutdown -----------------------------------------------------

    /// Coordinated graceful drain. Every loop has stopped polling (the
    /// latch is set); they rendezvous so that *one* loop drains the shared
    /// pool — running every admitted job to completion — then each loop
    /// splices its own completions and flushes its connections' queued
    /// output with bounded blocking writes.
    fn drain(&mut self) {
        if self.barrier.wait() {
            self.pool.drain();
        }
        // Second rendezvous: no loop touches its completion queue until
        // every in-flight job has finished pushing into it.
        self.barrier.wait();
        self.apply_completions();
        for idx in 0..self.conns.len() {
            self.flush_ready(idx);
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            if !conn.out.is_empty() {
                let _ = conn.stream.set_nonblocking(false);
                let _ = conn.stream.set_write_timeout(Some(DRAIN_WRITE_TIMEOUT));
                for ob in conn.out.iter() {
                    let head_rest = ob.head.get(ob.head_pos..).unwrap_or_default();
                    if conn.stream.write_all(head_rest).is_err() {
                        break;
                    }
                    let body_rest = ob.body.as_slice().get(ob.body_pos..).unwrap_or_default();
                    if conn.stream.write_all(body_rest).is_err() {
                        break;
                    }
                }
                let _ = conn.stream.flush();
            }
            self.close_conn(idx);
        }
    }
}

/// Consumes `n` written bytes from the front of the write queue.
fn advance_out(out: &mut VecDeque<OutBuf>, mut n: usize) {
    while n > 0 {
        let Some(front) = out.front_mut() else {
            return;
        };
        let head_rest = front.head.len().saturating_sub(front.head_pos);
        let take = head_rest.min(n);
        front.head_pos += take;
        n -= take;
        if n > 0 {
            let body_rest = front.body.len().saturating_sub(front.body_pos);
            let take = body_rest.min(n);
            front.body_pos += take;
            n -= take;
        }
        if front.done() {
            out.pop_front();
        } else {
            return;
        }
    }
    while matches!(out.front(), Some(front) if front.done()) {
        out.pop_front();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip_index_and_generation() {
        for (idx, gen) in [(0usize, 0u64), (1, 1), (4096, 77), (0xfffffff, 0xffff_ffff)] {
            let token = token_for(idx, gen);
            assert_eq!(split_token(token), Some((idx, gen)));
        }
        assert_eq!(split_token(LISTENER), None);
        assert_eq!(split_token(WAKER), None);
    }

    #[test]
    fn token_generation_wraparound_stays_masked_and_consistent() {
        let wrap = 1u64 << 32;
        // Past 2^32 the packed generation is the 32-bit tag — round trips
        // must agree with `gen_tag`, not silently alias the slot index.
        for (idx, gen) in [(3usize, wrap), (3, wrap + 7), (0, u64::MAX)] {
            let token = token_for(idx, gen);
            assert_eq!(split_token(token), Some((idx, gen_tag(gen))));
            let (_, unpacked) = split_token(token).expect("conn token");
            assert!(unpacked <= GEN_MASK, "unpacked gen fits 32 bits");
        }
        // A slab generation past 2^32 still matches its own token…
        let slab_gen = wrap + 1;
        let live = token_for(5, slab_gen);
        assert_eq!(
            split_token(live).map(|(_, g)| g),
            Some(gen_tag(slab_gen)),
            "live token matches the masked slab generation"
        );
        // …and still rejects its predecessor's (the stale-timer case).
        let stale = token_for(5, slab_gen - 1);
        assert_ne!(
            split_token(stale).map(|(_, g)| g),
            Some(gen_tag(slab_gen)),
            "stale token from the previous generation must not match"
        );
    }

    #[test]
    fn drain_barrier_elects_one_leader_per_generation() {
        let barrier = Arc::new(DrainBarrier::new(4));
        for _ in 0..3 {
            let leaders: Vec<std::thread::JoinHandle<bool>> = (0..4)
                .map(|_| {
                    let b = Arc::clone(&barrier);
                    std::thread::spawn(move || b.wait())
                })
                .collect();
            let elected: usize = leaders
                .into_iter()
                .map(|h| usize::from(h.join().expect("barrier thread")))
                .sum();
            assert_eq!(elected, 1, "exactly one leader per generation");
        }
    }

    #[test]
    fn drain_barrier_releases_waiters_when_a_party_leaves() {
        let barrier = Arc::new(DrainBarrier::new(3));
        let waiters: Vec<std::thread::JoinHandle<bool>> = (0..2)
            .map(|_| {
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || b.wait())
            })
            .collect();
        // Give both waiters time to arrive, then withdraw the third party
        // (e.g. its thread failed to spawn): the generation must complete
        // and elect exactly one of the released waiters leader.
        std::thread::sleep(Duration::from_millis(50));
        barrier.leave();
        let elected: usize = waiters
            .into_iter()
            .map(|h| usize::from(h.join().expect("barrier thread")))
            .sum();
        assert_eq!(
            elected, 1,
            "a leave-completed generation still has one leader"
        );
    }

    #[test]
    fn advance_out_walks_heads_bodies_and_buffer_boundaries() {
        let buf = |head: &[u8], body: &[u8]| OutBuf {
            head: head.to_vec(),
            head_pos: 0,
            body: Body::Bytes(body.to_vec()),
            body_pos: 0,
        };
        let mut out: VecDeque<OutBuf> = [buf(b"HEAD1", b"body1"), buf(b"HEAD2", b"b2")]
            .into_iter()
            .collect();
        advance_out(&mut out, 3); // part of head 1
        assert_eq!(out.front().map(|f| f.head_pos), Some(3));
        advance_out(&mut out, 4); // rest of head 1 + 2 body bytes
        assert_eq!(out.front().map(|f| f.body_pos), Some(2));
        advance_out(&mut out, 3 + 5); // finish 1, head 2 spill
        assert_eq!(out.len(), 1);
        assert_eq!(out.front().map(|f| f.head_pos), Some(5));
        advance_out(&mut out, 2); // finish everything
        assert!(out.is_empty());
        advance_out(&mut out, 10); // over-advance on empty: no panic
    }
}
