//! The TCP accept loop: bounded worker pool, admission control, and
//! graceful shutdown.
//!
//! One request per connection (`Connection: close`), which keeps the
//! concurrency model trivial: a connection **is** a job. The accept loop
//! never executes work itself — it hands each accepted stream to the
//! [`WorkerPool`], and when the bounded queue refuses the job it writes
//! the `429`/`503` itself so overload is answered within the deadline
//! rather than by a hanging socket. Shutdown (the `POST /shutdown` latch
//! or [`Server::shutdown_handle`]) stops admissions, drains every
//! in-flight job, flushes a final metrics snapshot, and returns from
//! [`Server::run`].

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fair_simlab::{SubmitError, WorkerPool};

use crate::http::{read_request, ParseError, Response};
use crate::service::{Backend, Service, ServiceConfig};
use crate::stats::ServerStats;

/// Tunables for the accept loop and worker pool.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded job-queue capacity; beyond it requests get `429`.
    pub queue_cap: usize,
    /// Per-request deadline measured from accept; a job that waited in
    /// the queue past it is answered `503` instead of being served late.
    pub deadline: Duration,
    /// Socket read timeout while parsing the request head.
    pub read_timeout: Duration,
    /// Where to flush the final metrics snapshot on shutdown (optional).
    pub metrics_path: Option<PathBuf>,
    /// Directory for the persistent tile store. When set, `bind` installs
    /// a process-global `fair_tiles::Store` there, warms it from whatever
    /// the directory already holds, and the server flushes it after cold
    /// computes and on shutdown — so estimates survive restarts. `None`
    /// (the default) leaves whatever store is already installed untouched.
    pub tiles_dir: Option<PathBuf>,
    /// Service-layer tunables (defaults, caps, cache geometry).
    pub service: ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 64,
            deadline: Duration::from_secs(30),
            read_timeout: Duration::from_secs(5),
            metrics_path: None,
            tiles_dir: None,
            service: ServiceConfig::default(),
        }
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    local_addr: SocketAddr,
}

impl Server {
    /// Binds the listener and builds the service. The socket is
    /// nonblocking so the accept loop can poll the shutdown latch.
    pub fn bind(config: ServerConfig, backend: Arc<dyn Backend>) -> std::io::Result<Server> {
        if let Some(dir) = &config.tiles_dir {
            // Install-and-warm before the first request: every tile the
            // previous process flushed serves this one from disk.
            let store = fair_tiles::Store::persistent(dir);
            store.load();
            fair_tiles::cache::install(Arc::new(store));
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let service = Arc::new(Service::new(backend, config.service, Arc::clone(&shutdown)));
        Ok(Server {
            listener,
            service,
            config,
            shutdown,
            local_addr,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared service (stats access for embedding tests/tools).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// A latch that stops the server when stored `true` — the programmatic
    /// equivalent of `POST /shutdown`.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serves until shutdown is requested, then drains and returns.
    pub fn run(self) -> std::io::Result<()> {
        let pool = WorkerPool::new(self.config.workers, self.config.queue_cap);
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => self.dispatch(&pool, stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        // Graceful: stop accepting (loop exited), drain every admitted
        // job, then flush the final snapshots (metrics and warm tiles).
        pool.shutdown();
        self.flush_metrics();
        fair_tiles::cache::flush();
        Ok(())
    }

    fn dispatch(&self, pool: &WorkerPool, stream: TcpStream) {
        ServerStats::bump(&self.service.stats.accepted);
        let _ = stream.set_read_timeout(Some(self.config.read_timeout));
        let _ = stream.set_nodelay(true);
        let accepted_at = Instant::now();
        let deadline = self.config.deadline;
        let service = Arc::clone(&self.service);
        // `try_submit` consumes its closure even on failure, so the stream
        // rides in a shared slot the accept loop can take back to answer
        // the rejection itself.
        let slot = Arc::new(Mutex::new(Some(stream)));
        let job_slot = Arc::clone(&slot);
        let submitted = pool.try_submit(move || {
            let taken = job_slot.lock().unwrap_or_else(|e| e.into_inner()).take();
            if let Some(mut stream) = taken {
                handle_connection(&service, &mut stream, accepted_at, deadline);
            }
        });
        if let Err(err) = submitted {
            let taken = slot.lock().unwrap_or_else(|e| e.into_inner()).take();
            let Some(mut stream) = taken else { return };
            let resp = match err {
                SubmitError::QueueFull => {
                    ServerStats::bump(&self.service.stats.rejected_queue_full);
                    Response::error(429, "server overloaded, retry later")
                        .with_header("Retry-After", "1")
                }
                SubmitError::ShuttingDown => {
                    ServerStats::bump(&self.service.stats.rejected_shutdown);
                    Response::error(503, "server is shutting down")
                }
            };
            self.service.stats.count_status(resp.status);
            // Answer off the accept loop: the request head must be read
            // before the socket closes (dropping unread bytes RSTs the
            // response away), and that read can block up to the read
            // timeout — never stall accepts on a rejected client.
            std::thread::spawn(move || {
                let _ = read_request(&mut stream);
                let _ = stream.write_all(&resp.to_bytes());
            });
        }
    }

    fn flush_metrics(&self) {
        let Some(path) = &self.config.metrics_path else {
            return;
        };
        let body = self.service.metrics_document().render_pretty() + "\n";
        let _ = fair_tiles::atomic_write(path, body.as_bytes());
    }
}

/// Worker-side handling of one accepted connection: deadline check, head
/// parse, route, respond. Every failure is answered; nothing panics.
fn handle_connection(
    service: &Service,
    stream: &mut TcpStream,
    accepted_at: Instant,
    deadline: Duration,
) {
    // The head is read unconditionally (even for deadline rejections):
    // closing a socket with unread bytes sends RST, which can destroy the
    // response before the client reads it.
    let parsed = read_request(stream);
    let resp = if accepted_at.elapsed() > deadline {
        // The job sat in the queue past its deadline: answer a bounded
        // 503 instead of serving a response nobody is waiting for.
        ServerStats::bump(&service.stats.deadline_expired);
        let resp =
            Response::error(503, "deadline expired before service").with_header("Retry-After", "1");
        service.stats.count_status(resp.status);
        resp
    } else {
        match parsed {
            Ok(req) if req.path == "/stream" => {
                // Streaming writes its body live while the estimation
                // runs — it needs the socket, not a buffered Response.
                crate::streaming::handle(service, stream, &req);
                return;
            }
            Ok(req) => service.handle(&req),
            Err(err) => {
                let status = match err {
                    ParseError::HeadTooLarge => 431,
                    _ => 400,
                };
                service.stats.count_status(status);
                Response::error(status, &err.to_string())
            }
        }
    };
    let _ = stream.write_all(&resp.to_bytes());
    let _ = stream.flush();
}
