//! The serving coordinator: listener setup, loop sharding, shutdown.
//!
//! The actual per-connection machinery lives in [`crate::event_loop`]; this
//! module owns what is *shared* across the `loops` event loops it starts:
//! the listener group, the [`WorkerPool`] executing cold estimations, the
//! shutdown latch, and the drain barrier the loops rendezvous on at the
//! end. With `loops == 1` (the default, and the only sensible setting on a
//! one-core host) the loop runs inline on the caller's thread and the
//! server behaves exactly like its single-threaded predecessor.
//!
//! Accept sharding prefers `SO_REUSEPORT`: each loop binds its own
//! listener on the same address and the kernel hashes flows across the
//! group — no locks, no hand-off, no thundering herd. Where reuseport is
//! unavailable the loops fall back to nonblocking `try_clone` dups of one
//! shared listener; accept races then resolve via `WouldBlock`, which the
//! bounded accept burst already tolerates.
//!
//! Everything request-visible survives sharding unchanged: graceful drain
//! (latch → barrier → one pool drain → per-loop flush), inline 429/503
//! admission, keep-alive/pipelining in-order replies, and the served-bytes
//! byte-identity contract — the result cache, single-flight dedup, and
//! tile store are process-wide, so the same `(exp, trials, seed)` point
//! renders the same bytes no matter which loop answers it.

use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use fair_simlab::WorkerPool;

use crate::event_loop::{DrainBarrier, EventLoop, LoopSpec};
use crate::service::{Backend, Service, ServiceConfig};

/// Tunables for the event loops and worker pool.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Event loops to run (accept-sharded). Clamped to at least 1; the
    /// default of 1 keeps the single-threaded behavior.
    pub loops: usize,
    /// Worker threads executing cold estimations and streams (one pool,
    /// shared across all loops).
    pub workers: usize,
    /// Bounded job-queue capacity; beyond it cold requests get `429`.
    pub queue_cap: usize,
    /// Per-request deadline measured from arrival; a job that waited in
    /// the queue past it is answered `503` instead of being served late.
    pub deadline: Duration,
    /// How long a connection may sit mid-request-head (or before its
    /// first request) before the timer wheel closes it.
    pub read_timeout: Duration,
    /// How long an idle keep-alive connection (no request in flight, no
    /// unread bytes) is retained before the timer wheel closes it.
    pub keepalive_timeout: Duration,
    /// Maximum queued responses per connection before the loop stops
    /// reading from it (pipelining backpressure).
    pub max_pipeline: usize,
    /// Where to flush the final metrics snapshot on shutdown (optional).
    pub metrics_path: Option<PathBuf>,
    /// Directory for the persistent tile store. When set, `bind` installs
    /// a process-global `fair_tiles::Store` there, warms it from whatever
    /// the directory already holds, and the server flushes it after cold
    /// computes and on shutdown — so estimates survive restarts. `None`
    /// (the default) leaves whatever store is already installed untouched.
    pub tiles_dir: Option<PathBuf>,
    /// Service-layer tunables (defaults, caps, cache geometry).
    pub service: ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            loops: 1,
            workers: 4,
            queue_cap: 64,
            deadline: Duration::from_secs(30),
            read_timeout: Duration::from_secs(5),
            keepalive_timeout: Duration::from_secs(10),
            max_pipeline: 64,
            metrics_path: None,
            tiles_dir: None,
            service: ServiceConfig::default(),
        }
    }
}

/// How the listener group was built.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcceptSharding {
    /// One loop, one plain listener.
    Single,
    /// One `SO_REUSEPORT` listener per loop; the kernel shards accepts.
    Reuseport,
    /// Reuseport unavailable: nonblocking dups of one shared listener,
    /// with accept races resolved via `WouldBlock`.
    SharedDup,
}

impl AcceptSharding {
    /// Stable lowercase name (logged by `fair-serve`).
    pub fn name(self) -> &'static str {
        match self {
            AcceptSharding::Single => "single",
            AcceptSharding::Reuseport => "reuseport",
            AcceptSharding::SharedDup => "shared-dup",
        }
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listeners: Vec<TcpListener>,
    service: Arc<Service>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    local_addr: SocketAddr,
    sharding: AcceptSharding,
}

impl Server {
    /// Binds the listener group (one listener per loop) and builds the
    /// service. The sockets are nonblocking — the loops own them from
    /// here on.
    pub fn bind(config: ServerConfig, backend: Arc<dyn Backend>) -> std::io::Result<Server> {
        if let Some(dir) = &config.tiles_dir {
            // Install-and-warm before the first request: every tile the
            // previous process flushed serves this one from disk.
            let store = fair_tiles::Store::persistent(dir);
            store.load();
            fair_tiles::cache::install(Arc::new(store));
        }
        let loops = config.loops.max(1);
        let (listeners, sharding) = bind_listeners(&config.addr, loops)?;
        for listener in &listeners {
            listener.set_nonblocking(true)?;
        }
        let local_addr = listeners
            .first()
            .ok_or_else(|| std::io::Error::other("no listener bound"))?
            .local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let service = Arc::new(Service::new(backend, config.service, Arc::clone(&shutdown)));
        Ok(Server {
            listeners,
            service,
            config,
            shutdown,
            local_addr,
            sharding,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared service (stats access for embedding tests/tools).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// A latch that stops the server when stored `true` — the programmatic
    /// equivalent of `POST /shutdown`.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Number of event loops this server will run.
    pub fn loops(&self) -> usize {
        self.listeners.len()
    }

    /// How accepts are sharded across the loops.
    pub fn sharding(&self) -> AcceptSharding {
        self.sharding
    }

    /// Serves until shutdown is requested, then drains and returns. Loop 0
    /// runs on the calling thread; loops 1..N on named threads. The final
    /// metrics snapshot and tile flush happen once, after every loop has
    /// drained.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listeners,
            service,
            config,
            shutdown,
            ..
        } = self;
        let pool = Arc::new(WorkerPool::new(config.workers, config.queue_cap));
        let barrier = Arc::new(DrainBarrier::new(listeners.len()));
        // Build every loop before starting any: construction registers
        // descriptors with fresh pollers, so errors surface here instead
        // of killing a half-started group.
        let mut loops = Vec::with_capacity(listeners.len());
        for listener in listeners {
            loops.push(EventLoop::new(LoopSpec {
                listener,
                service: Arc::clone(&service),
                config: config.clone(),
                shutdown: Arc::clone(&shutdown),
                pool: Arc::clone(&pool),
                barrier: Arc::clone(&barrier),
            })?);
        }
        let mut loops = loops.into_iter();
        let Some(mut first) = loops.next() else {
            return Ok(());
        };
        let result = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, mut el) in loops.enumerate() {
                let spawned = std::thread::Builder::new()
                    .name(format!("fair-loop-{}", i + 1))
                    .spawn_scoped(scope, move || el.run());
                match spawned {
                    Ok(handle) => handles.push(handle),
                    Err(e) => {
                        // This loop will never arrive at the drain
                        // barrier; withdraw it so the others still drain,
                        // and stop the group — a half-capacity server was
                        // not what was asked for.
                        barrier.leave();
                        shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
                        let _ = e;
                    }
                }
            }
            let mut result = first.run();
            for handle in handles {
                match handle.join() {
                    Ok(r) => result = result.and(r),
                    Err(_) => {
                        result = result.and(Err(std::io::Error::other("event loop panicked")))
                    }
                }
            }
            result
        });
        // All loops have drained; the pool Arcs they held are gone.
        // Dropping ours joins the (already drained) workers.
        drop(pool);
        if let Some(path) = &config.metrics_path {
            let body = service.metrics_document().render_pretty() + "\n";
            let _ = fair_tiles::atomic_write(path, body.as_bytes());
        }
        fair_tiles::cache::flush();
        result
    }
}

/// Builds one listener per loop. A single loop gets a plain std listener;
/// multiple loops prefer a reuseport group (kernel accept sharding) and
/// fall back to `try_clone` dups of one shared listener where reuseport is
/// unavailable.
fn bind_listeners(addr: &str, loops: usize) -> std::io::Result<(Vec<TcpListener>, AcceptSharding)> {
    if loops <= 1 {
        return Ok((vec![TcpListener::bind(addr)?], AcceptSharding::Single));
    }
    match bind_reuseport_group(addr, loops) {
        Ok(listeners) => Ok((listeners, AcceptSharding::Reuseport)),
        Err(_) => {
            let first = TcpListener::bind(addr)?;
            let mut listeners = Vec::with_capacity(loops);
            for _ in 1..loops {
                listeners.push(first.try_clone()?);
            }
            listeners.insert(0, first);
            Ok((listeners, AcceptSharding::SharedDup))
        }
    }
}

/// Binds `loops` reuseport listeners on `addr`. The first bind resolves an
/// ephemeral port; the rest join the group on the resolved address.
fn bind_reuseport_group(addr: &str, loops: usize) -> std::io::Result<Vec<TcpListener>> {
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::other(format!("address {addr:?} did not resolve")))?;
    let first = fair_aio::net::reuseport_listener(sock_addr)?;
    let resolved = first.local_addr()?;
    let mut listeners = Vec::with_capacity(loops);
    listeners.push(first);
    for _ in 1..loops {
        listeners.push(fair_aio::net::reuseport_listener(resolved)?);
    }
    Ok(listeners)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_names_are_stable() {
        assert_eq!(AcceptSharding::Single.name(), "single");
        assert_eq!(AcceptSharding::Reuseport.name(), "reuseport");
        assert_eq!(AcceptSharding::SharedDup.name(), "shared-dup");
    }

    #[test]
    fn bind_listeners_shards_by_loop_count() {
        let (single, mode) = bind_listeners("127.0.0.1:0", 1).expect("bind 1");
        assert_eq!(single.len(), 1);
        assert_eq!(mode, AcceptSharding::Single);

        let (group, mode) = bind_listeners("127.0.0.1:0", 3).expect("bind 3");
        assert_eq!(group.len(), 3);
        assert!(
            matches!(mode, AcceptSharding::Reuseport | AcceptSharding::SharedDup),
            "multi-loop bind uses a sharded mode, got {mode:?}"
        );
        let port = group
            .first()
            .map(|l| l.local_addr().expect("addr").port())
            .expect("first listener");
        assert_ne!(port, 0);
        for listener in &group {
            assert_eq!(listener.local_addr().expect("addr").port(), port);
        }
    }
}
