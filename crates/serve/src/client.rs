//! A minimal blocking HTTP/1.1 client over `std::net::TcpStream` —
//! just enough for `fair-load`, CI smoke checks, and the e2e tests to
//! talk to a `fair-serve` instance without any external dependency.
//!
//! Two modes:
//! - One-shot ([`get`] / [`post`] / [`request`]): sends `Connection:
//!   close`, so a reply is simply "everything until EOF" split at the
//!   first blank line. Streaming replies (`/stream`) arrive with
//!   `Transfer-Encoding: chunked`; the parser strips the chunk framing
//!   so [`HttpReply::body`] is always the logical payload.
//! - Persistent ([`Conn`]): keep-alive requests on one socket, including
//!   pipelined batches ([`Conn::send_many`]); replies are framed by
//!   `Content-Length` and leftover bytes carry over between reads.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP reply.
#[derive(Clone, Debug)]
pub struct HttpReply {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Body bytes (everything after the blank line).
    pub body: Vec<u8>,
}

impl HttpReply {
    /// First header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issues `GET <target>` against `addr` and reads the full reply.
pub fn get(addr: SocketAddr, target: &str) -> std::io::Result<HttpReply> {
    request(addr, "GET", target, Duration::from_secs(30))
}

/// Issues `POST <target>` against `addr` and reads the full reply.
pub fn post(addr: SocketAddr, target: &str) -> std::io::Result<HttpReply> {
    request(addr, "POST", target, Duration::from_secs(30))
}

/// Issues one request with an explicit socket timeout.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    timeout: Duration,
) -> std::io::Result<HttpReply> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let head = format!("{method} {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

/// A persistent keep-alive connection to one server.
///
/// Requests go out with `Connection: keep-alive` semantics (HTTP/1.1
/// default); [`recv`](Conn::recv) frames each reply by its
/// `Content-Length` header, so the socket stays usable for the next
/// request. [`send_many`](Conn::send_many) writes a whole pipelined batch
/// in one syscall; call `recv` once per request, in order. Not suitable
/// for `/stream` (chunked replies close the connection) — use the
/// one-shot [`request`] for those.
pub struct Conn {
    stream: TcpStream,
    addr: SocketAddr,
    /// Bytes read past the end of the previous reply.
    buf: Vec<u8>,
}

impl Conn {
    /// Connects with `timeout` applied to connect, reads, and writes.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Conn> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            addr,
            buf: Vec::new(),
        })
    }

    /// Sends one `GET <target>` without waiting for the reply.
    pub fn send(&mut self, target: &str) -> std::io::Result<()> {
        let head = format!(
            "GET {target} HTTP/1.1\r\nHost: {addr}\r\n\r\n",
            addr = self.addr
        );
        self.stream.write_all(head.as_bytes())
    }

    /// Pipelines a batch: every request head in one write. The server
    /// answers them in order; call [`recv`](Conn::recv) once per target.
    pub fn send_many(&mut self, targets: &[&str]) -> std::io::Result<()> {
        let mut batch = String::new();
        for target in targets {
            batch.push_str(&format!(
                "GET {target} HTTP/1.1\r\nHost: {addr}\r\n\r\n",
                addr = self.addr
            ));
        }
        self.stream.write_all(batch.as_bytes())
    }

    /// Reads exactly one `Content-Length`-framed reply, keeping any bytes
    /// past it for the next call.
    pub fn recv(&mut self) -> std::io::Result<HttpReply> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            self.fill()?;
        };
        let (status, headers) = parse_reply_head(self.buf.get(..head_end).unwrap_or_default())?;
        let content_length: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad("persistent reply lacks a Content-Length"))?;
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            self.fill()?;
        }
        let body = self
            .buf
            .get(body_start..body_start + content_length)
            .unwrap_or_default()
            .to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(HttpReply {
            status,
            headers,
            body,
        })
    }

    fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-reply",
            ));
        }
        self.buf
            .extend_from_slice(chunk.get(..n).unwrap_or_default());
        Ok(())
    }
}

/// Parses a reply head (status line + headers, no terminator).
fn parse_reply_head(head: &[u8]) -> std::io::Result<(u16, Vec<(String, String)>)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let head = String::from_utf8_lossy(head);
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty reply"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| {
            line.split_once(':')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        })
        .collect();
    Ok((status, headers))
}

fn parse_reply(raw: &[u8]) -> std::io::Result<HttpReply> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("reply has no head terminator"))?;
    let (status, headers) = parse_reply_head(raw.get(..head_end).unwrap_or_default())?;
    let wire = raw.get(head_end + 4..).unwrap_or_default();
    let chunked = headers.iter().any(|(k, v)| {
        k.eq_ignore_ascii_case("transfer-encoding") && v.eq_ignore_ascii_case("chunked")
    });
    let body = if chunked {
        dechunk(wire)
    } else {
        wire.to_vec()
    };
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

/// Strips chunked-transfer framing: hex size line, payload, CRLF, repeated
/// until the terminal zero-size chunk. Lenient on malformed framing — the
/// decoded prefix is returned rather than an error, so a stream cut
/// mid-chunk still yields every complete frame received.
fn dechunk(wire: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(wire.len());
    let mut pos = 0usize;
    loop {
        let rest = match wire.get(pos..) {
            Some(r) if !r.is_empty() => r,
            _ => return body,
        };
        let Some(line_end) = rest.windows(2).position(|w| w == b"\r\n") else {
            return body;
        };
        let size_line = String::from_utf8_lossy(&rest[..line_end]);
        // Chunk extensions (`;` suffix) are allowed by the grammar.
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let Ok(size) = usize::from_str_radix(size_hex, 16) else {
            return body;
        };
        if size == 0 {
            return body;
        }
        let data_start = pos + line_end + 2;
        let Some(data) = wire.get(data_start..data_start + size) else {
            return body;
        };
        body.extend_from_slice(data);
        pos = data_start + size + 2; // skip the chunk's trailing CRLF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_reply() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nX-Cache: hit\r\n\r\n{\"a\":1}\n";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("x-cache"), Some("hit"));
        assert_eq!(reply.text(), "{\"a\":1}\n");
    }

    #[test]
    fn rejects_malformed_replies() {
        assert!(parse_reply(b"not http").is_err());
        assert!(parse_reply(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    #[test]
    fn dechunks_streaming_replies() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
                    Transfer-Encoding: chunked\r\n\r\n\
                    b\r\n{\"a\":true}\n\r\n7\r\n{\"b\":1}\r\n0\r\n\r\n";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.text(), "{\"a\":true}\n{\"b\":1}");
    }

    #[test]
    fn truncated_chunk_stream_keeps_complete_frames() {
        // Cut mid-chunk: the complete first chunk survives, the torn
        // second one is dropped.
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                    5\r\nhello\r\nff\r\ntorn";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.text(), "hello");
        // Garbage size line: decoded prefix only, no panic.
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                    5\r\nhello\r\nzz\r\nx\r\n0\r\n\r\n";
        assert_eq!(parse_reply(raw).unwrap().text(), "hello");
    }
}
