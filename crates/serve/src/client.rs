//! A minimal blocking HTTP/1.1 client over `std::net::TcpStream` —
//! just enough for `fair-load`, CI smoke checks, and the e2e tests to
//! talk to a `fair-serve` instance without any external dependency.
//!
//! The server always answers `Connection: close`, so a reply is simply
//! "everything until EOF" split at the first blank line.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP reply.
#[derive(Clone, Debug)]
pub struct HttpReply {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Body bytes (everything after the blank line).
    pub body: Vec<u8>,
}

impl HttpReply {
    /// First header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issues `GET <target>` against `addr` and reads the full reply.
pub fn get(addr: SocketAddr, target: &str) -> std::io::Result<HttpReply> {
    request(addr, "GET", target, Duration::from_secs(30))
}

/// Issues `POST <target>` against `addr` and reads the full reply.
pub fn post(addr: SocketAddr, target: &str) -> std::io::Result<HttpReply> {
    request(addr, "POST", target, Duration::from_secs(30))
}

/// Issues one request with an explicit socket timeout.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    timeout: Duration,
) -> std::io::Result<HttpReply> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let head = format!("{method} {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

fn parse_reply(raw: &[u8]) -> std::io::Result<HttpReply> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("reply has no head terminator"))?;
    let head = String::from_utf8_lossy(raw.get(..head_end).unwrap_or_default());
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty reply"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers = lines
        .filter_map(|line| {
            line.split_once(':')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        })
        .collect();
    let body = raw.get(head_end + 4..).unwrap_or_default().to_vec();
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_reply() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nX-Cache: hit\r\n\r\n{\"a\":1}\n";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("x-cache"), Some("hit"));
        assert_eq!(reply.text(), "{\"a\":1}\n");
    }

    #[test]
    fn rejects_malformed_replies() {
        assert!(parse_reply(b"not http").is_err());
        assert!(parse_reply(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
