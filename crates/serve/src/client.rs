//! A minimal blocking HTTP/1.1 client over `std::net::TcpStream` —
//! just enough for `fair-load`, CI smoke checks, and the e2e tests to
//! talk to a `fair-serve` instance without any external dependency.
//!
//! Two modes:
//! - One-shot ([`get`] / [`post`] / [`request`]): sends `Connection:
//!   close`, so a reply is simply "everything until EOF" split at the
//!   first blank line. Streaming replies (`/stream`) arrive with
//!   `Transfer-Encoding: chunked`; the parser strips the chunk framing
//!   so [`HttpReply::body`] is always the logical payload.
//! - Persistent ([`Conn`]): keep-alive requests on one socket, including
//!   pipelined batches ([`Conn::send_many`]); replies are framed by
//!   `Content-Length` (or decoded incrementally by [`Conn::recv_chunked`]
//!   for chunked streams) and leftover bytes carry over between reads.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP reply.
#[derive(Clone, Debug)]
pub struct HttpReply {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Body bytes (everything after the blank line).
    pub body: Vec<u8>,
}

impl HttpReply {
    /// First header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issues `GET <target>` against `addr` and reads the full reply.
pub fn get(addr: SocketAddr, target: &str) -> std::io::Result<HttpReply> {
    request(addr, "GET", target, Duration::from_secs(30))
}

/// Issues `POST <target>` against `addr` and reads the full reply.
pub fn post(addr: SocketAddr, target: &str) -> std::io::Result<HttpReply> {
    request(addr, "POST", target, Duration::from_secs(30))
}

/// Issues one request with an explicit socket timeout.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    timeout: Duration,
) -> std::io::Result<HttpReply> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let head = format!("{method} {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

/// A persistent keep-alive connection to one server.
///
/// Requests go out with `Connection: keep-alive` semantics (HTTP/1.1
/// default); [`recv`](Conn::recv) frames each reply by its
/// `Content-Length` header, so the socket stays usable for the next
/// request. [`send_many`](Conn::send_many) writes a whole pipelined batch
/// in one syscall; call `recv` once per request, in order — or
/// [`recv_chunked`](Conn::recv_chunked) when the next reply is a
/// `Transfer-Encoding: chunked` stream (`/stream`).
pub struct Conn {
    stream: TcpStream,
    addr: SocketAddr,
    /// Bytes read past the end of the previous reply.
    buf: Vec<u8>,
}

impl Conn {
    /// Connects with `timeout` applied to connect, reads, and writes.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Conn> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            addr,
            buf: Vec::new(),
        })
    }

    /// Sends one `GET <target>` without waiting for the reply.
    pub fn send(&mut self, target: &str) -> std::io::Result<()> {
        let head = format!(
            "GET {target} HTTP/1.1\r\nHost: {addr}\r\n\r\n",
            addr = self.addr
        );
        self.stream.write_all(head.as_bytes())
    }

    /// Pipelines a batch: every request head in one write. The server
    /// answers them in order; call [`recv`](Conn::recv) once per target.
    pub fn send_many(&mut self, targets: &[&str]) -> std::io::Result<()> {
        let mut batch = String::new();
        for target in targets {
            batch.push_str(&format!(
                "GET {target} HTTP/1.1\r\nHost: {addr}\r\n\r\n",
                addr = self.addr
            ));
        }
        self.stream.write_all(batch.as_bytes())
    }

    /// Reads exactly one `Content-Length`-framed reply, keeping any bytes
    /// past it for the next call.
    pub fn recv(&mut self) -> std::io::Result<HttpReply> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            self.fill()?;
        };
        let (status, headers) = parse_reply_head(self.buf.get(..head_end).unwrap_or_default())?;
        let content_length: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad("persistent reply lacks a Content-Length"))?;
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            self.fill()?;
        }
        let body = self
            .buf
            .get(body_start..body_start + content_length)
            .unwrap_or_default()
            .to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(HttpReply {
            status,
            headers,
            body,
        })
    }

    /// Reads exactly one `Transfer-Encoding: chunked` reply — the framing
    /// `/stream` uses — decoding incrementally through a [`Dechunker`], so
    /// the reply ends exactly at its terminal chunk rather than at EOF.
    /// That makes it usable as the *last* reply of a pipelined batch:
    /// earlier `Content-Length` replies are [`recv`](Conn::recv)'d first
    /// and the stream's frames are consumed in order after them. Lenient
    /// on a mid-stream close: every complete frame received is returned,
    /// matching the one-shot [`request`] path.
    pub fn recv_chunked(&mut self) -> std::io::Result<HttpReply> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            self.fill()?;
        };
        let (status, headers) = parse_reply_head(self.buf.get(..head_end).unwrap_or_default())?;
        let chunked = headers.iter().any(|(k, v)| {
            k.eq_ignore_ascii_case("transfer-encoding") && v.eq_ignore_ascii_case("chunked")
        });
        if !chunked {
            return Err(bad("reply is not chunked; use recv for framed replies"));
        }
        self.buf.drain(..head_end + 4);
        let mut decoder = Dechunker::new();
        let mut body = Vec::new();
        loop {
            let consumed = decoder.push(&self.buf, &mut body);
            self.buf.drain(..consumed);
            if decoder.done() {
                break;
            }
            match self.fill() {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e),
            }
        }
        Ok(HttpReply {
            status,
            headers,
            body,
        })
    }

    fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-reply",
            ));
        }
        self.buf
            .extend_from_slice(chunk.get(..n).unwrap_or_default());
        Ok(())
    }
}

/// Parses a reply head (status line + headers, no terminator).
fn parse_reply_head(head: &[u8]) -> std::io::Result<(u16, Vec<(String, String)>)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let head = String::from_utf8_lossy(head);
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty reply"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| {
            line.split_once(':')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        })
        .collect();
    Ok((status, headers))
}

fn parse_reply(raw: &[u8]) -> std::io::Result<HttpReply> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("reply has no head terminator"))?;
    let (status, headers) = parse_reply_head(raw.get(..head_end).unwrap_or_default())?;
    let wire = raw.get(head_end + 4..).unwrap_or_default();
    let chunked = headers.iter().any(|(k, v)| {
        k.eq_ignore_ascii_case("transfer-encoding") && v.eq_ignore_ascii_case("chunked")
    });
    let body = if chunked {
        dechunk(wire)
    } else {
        wire.to_vec()
    };
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

/// A size line (plus any chunk extensions) longer than this is treated as
/// malformed framing; real size lines are a few bytes.
const MAX_SIZE_LINE: usize = 256;

enum ChunkState {
    /// Accumulating a size line (hex count, optional `;ext` chunk
    /// extensions, CRLF terminator) — possibly across several feeds.
    Size,
    /// Collecting the current chunk's payload; `remaining` bytes to go.
    Data { remaining: usize },
    /// Skipping the CRLF that closes a chunk's payload.
    Skip { left: usize },
    /// Saw the terminal zero-size chunk: consuming trailer lines until the
    /// blank line that ends the message, so a keep-alive socket is left
    /// positioned at the next reply.
    Trailer,
    /// The message (or decoding, on bad framing) is over.
    Done,
}

/// An incremental chunked-transfer decoder.
///
/// Feed it wire bytes in arbitrary pieces with [`push`](Dechunker::push);
/// every chunk that *completes* is appended to the caller's output. The
/// decoder carries its state across feeds, so a size line torn at a read
/// boundary (`"1a;ex"` now, `"t=1\r\n…"` later) or a payload spread over
/// many reads decodes exactly as if the stream had arrived whole — the
/// property the one-shot [`dechunk`] wrapper can never exercise on its own.
///
/// Lenient by design, like the rest of this client: chunk extensions after
/// `;` are skipped, malformed framing ends decoding (keeping the decoded
/// prefix) instead of erroring, and a stream cut mid-chunk yields every
/// complete frame received — torn chunks are buffered internally and only
/// flushed once their full payload has arrived.
pub struct Dechunker {
    state: ChunkState,
    line: Vec<u8>,
    chunk: Vec<u8>,
}

impl Default for Dechunker {
    fn default() -> Dechunker {
        Dechunker::new()
    }
}

impl Dechunker {
    /// A decoder at the start of a chunked body.
    pub fn new() -> Dechunker {
        Dechunker {
            state: ChunkState::Size,
            line: Vec::new(),
            chunk: Vec::new(),
        }
    }

    /// Whether the message is over: the terminal chunk and its trailer
    /// section were consumed, or framing was unrecoverably malformed.
    pub fn done(&self) -> bool {
        matches!(self.state, ChunkState::Done)
    }

    /// Feeds `input`, appending every chunk that completes to `out`.
    /// Returns how many input bytes were consumed — always the full input
    /// unless decoding finished partway through it.
    pub fn push(&mut self, input: &[u8], out: &mut Vec<u8>) -> usize {
        let mut pos = 0usize;
        while pos < input.len() {
            match self.state {
                ChunkState::Done => break,
                ChunkState::Size => {
                    let rest = input.get(pos..).unwrap_or_default();
                    match rest.iter().position(|b| *b == b'\n') {
                        Some(nl) => {
                            self.line
                                .extend_from_slice(rest.get(..nl).unwrap_or_default());
                            pos += nl + 1;
                            self.start_chunk();
                        }
                        None => {
                            // The size line is torn at this read boundary;
                            // buffer what we have and resume on the next
                            // feed (bounded — garbage lines cap out).
                            self.line.extend_from_slice(rest);
                            pos = input.len();
                            if self.line.len() > MAX_SIZE_LINE {
                                self.state = ChunkState::Done;
                            }
                        }
                    }
                }
                ChunkState::Data { remaining } => {
                    let avail = input.len() - pos;
                    let take = remaining.min(avail);
                    self.chunk
                        .extend_from_slice(input.get(pos..pos + take).unwrap_or_default());
                    pos += take;
                    if take == remaining {
                        // Chunk complete: only now does it reach the
                        // output, so truncation drops torn chunks whole.
                        out.append(&mut self.chunk);
                        self.state = ChunkState::Skip { left: 2 };
                    } else {
                        self.state = ChunkState::Data {
                            remaining: remaining - take,
                        };
                    }
                }
                ChunkState::Skip { left } => {
                    let avail = input.len() - pos;
                    let take = left.min(avail);
                    pos += take;
                    if take == left {
                        self.state = ChunkState::Size;
                    } else {
                        self.state = ChunkState::Skip { left: left - take };
                    }
                }
                ChunkState::Trailer => {
                    let rest = input.get(pos..).unwrap_or_default();
                    match rest.iter().position(|b| *b == b'\n') {
                        Some(nl) => {
                            self.line
                                .extend_from_slice(rest.get(..nl).unwrap_or_default());
                            pos += nl + 1;
                            // A blank line (bare CRLF) closes the trailer
                            // section; anything else is a trailer header
                            // we skip.
                            if self.line.iter().all(|b| *b == b'\r') {
                                self.state = ChunkState::Done;
                            }
                            self.line.clear();
                        }
                        None => {
                            self.line.extend_from_slice(rest);
                            pos = input.len();
                            if self.line.len() > MAX_SIZE_LINE {
                                self.state = ChunkState::Done;
                            }
                        }
                    }
                }
            }
        }
        pos
    }

    /// Parses the accumulated size line and transitions accordingly.
    fn start_chunk(&mut self) {
        let size_line = String::from_utf8_lossy(&self.line);
        // Chunk extensions (`;` suffix) are allowed by the grammar; the
        // size is everything before the first `;`, sans whitespace/CR.
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let state = match usize::from_str_radix(size_hex, 16) {
            // Terminal chunk: swallow the trailer section too, leaving a
            // keep-alive socket at the next reply's first byte.
            Ok(0) => ChunkState::Trailer,
            // Bad framing: stop immediately, keeping the decoded prefix.
            Err(_) => ChunkState::Done,
            Ok(size) => ChunkState::Data { remaining: size },
        };
        self.line.clear();
        self.chunk.clear();
        self.state = state;
    }
}

/// Strips chunked-transfer framing: hex size line, payload, CRLF, repeated
/// until the terminal zero-size chunk. Lenient on malformed framing — the
/// decoded prefix is returned rather than an error, so a stream cut
/// mid-chunk still yields every complete frame received. One-shot wrapper
/// over the incremental [`Dechunker`].
fn dechunk(wire: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(wire.len());
    let mut decoder = Dechunker::new();
    decoder.push(wire, &mut body);
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_reply() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nX-Cache: hit\r\n\r\n{\"a\":1}\n";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("x-cache"), Some("hit"));
        assert_eq!(reply.text(), "{\"a\":1}\n");
    }

    #[test]
    fn rejects_malformed_replies() {
        assert!(parse_reply(b"not http").is_err());
        assert!(parse_reply(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    #[test]
    fn dechunks_streaming_replies() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
                    Transfer-Encoding: chunked\r\n\r\n\
                    b\r\n{\"a\":true}\n\r\n7\r\n{\"b\":1}\r\n0\r\n\r\n";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.text(), "{\"a\":true}\n{\"b\":1}");
    }

    #[test]
    fn dechunks_size_lines_with_chunk_extensions() {
        let wire = b"5;ext=1\r\nhello\r\n6 ; a=\"b\" \r\n world\r\n0;last\r\n\r\n";
        assert_eq!(dechunk(wire), b"hello world");
    }

    #[test]
    fn incremental_feed_matches_one_shot_at_every_split_point() {
        // Splitting anywhere — mid size line, mid extension, mid payload,
        // mid trailing CRLF — must decode identically to the whole wire.
        let wire: &[u8] = b"b;x=y\r\n{\"a\":true}\n\r\n7\r\n{\"b\":1}\r\n1a\r\nabcdefghijklmnopqrstuvwxyz\r\n0\r\n\r\n";
        let whole = dechunk(wire);
        assert_eq!(whole, b"{\"a\":true}\n{\"b\":1}abcdefghijklmnopqrstuvwxyz");
        for split in 0..=wire.len() {
            let mut decoder = Dechunker::new();
            let mut out = Vec::new();
            let consumed = decoder.push(wire.get(..split).unwrap_or_default(), &mut out);
            assert_eq!(consumed, split, "prefix fully consumed at split {split}");
            decoder.push(wire.get(split..).unwrap_or_default(), &mut out);
            assert_eq!(out, whole, "split at byte {split} diverged");
            assert!(decoder.done(), "terminal chunk reached at split {split}");
        }
    }

    #[test]
    fn byte_at_a_time_feed_decodes_and_stops_at_terminal_chunk() {
        let wire = b"3\r\nabc\r\n0\r\n\r\ntrailing-garbage";
        let mut decoder = Dechunker::new();
        let mut out = Vec::new();
        let mut consumed = 0usize;
        for b in wire {
            let n = decoder.push(std::slice::from_ref(b), &mut out);
            consumed += n;
            if decoder.done() {
                break;
            }
        }
        assert_eq!(out, b"abc");
        assert!(decoder.done());
        // The terminal chunk's size line ends decoding; bytes past it are
        // left for the caller (the keep-alive carryover buffer).
        assert!(consumed <= wire.len() - b"trailing-garbage".len() + 1);
    }

    #[test]
    fn oversized_size_line_ends_decoding_instead_of_buffering_forever() {
        let mut decoder = Dechunker::new();
        let mut out = Vec::new();
        let garbage = vec![b'f'; 4096];
        decoder.push(&garbage, &mut out);
        assert!(decoder.done());
        assert!(out.is_empty());
    }

    #[test]
    fn truncated_chunk_stream_keeps_complete_frames() {
        // Cut mid-chunk: the complete first chunk survives, the torn
        // second one is dropped.
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                    5\r\nhello\r\nff\r\ntorn";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.text(), "hello");
        // Garbage size line: decoded prefix only, no panic.
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                    5\r\nhello\r\nzz\r\nx\r\n0\r\n\r\n";
        assert_eq!(parse_reply(raw).unwrap().text(), "hello");
    }
}
