//! `GET /stream` — progressive estimation over chunked transfer encoding.
//!
//! This file is inside fairlint's S2 scope (it handles untrusted request
//! parameters), so every path is total — no `unwrap`/`expect`/`panic!`.
//!
//! Unlike `/estimate`, a streaming response is written *while the
//! computation runs*: the backend's adaptive path emits a progress frame
//! (running mean + 95% half-width) after every tile batch, each frame goes
//! out as one `application/x-ndjson` chunk, and the final chunk carries
//! the wrapper document — the adaptive accounting plus the result for the
//! trials actually spent. The stop rule (`ci <= epsilon`) lives in
//! `fair-core`; this layer only validates parameters and frames bytes.
//!
//! Streaming responses bypass the result cache (the body depends on the
//! live convergence trajectory, and adaptive results are keyed by epsilon,
//! not just the point), but they share the tile store: tiles computed
//! while streaming warm every later request, and vice versa.

use std::io::Write;

use fair_simlab::json::Json;

use crate::http::{Request, Response};
use crate::service::{parse_seed, parse_trials, ProgressUpdate, Service};
use crate::stats::ServerStats;

/// Handles one `/stream` request end to end on `conn` (the connection
/// layer routes here *before* the normal request path — a streaming body
/// needs the live socket). Counts the request and its status itself.
pub fn handle(service: &Service, conn: &mut dyn Write, req: &Request) {
    ServerStats::bump(&service.stats.requests);
    match validate(service, req) {
        Ok(params) => run_stream(service, conn, params),
        Err(resp) => {
            service.stats.count_status(resp.status);
            let _ = conn.write_all(&resp.to_bytes());
            let _ = conn.flush();
        }
    }
}

struct StreamParams {
    exp: String,
    trials: usize,
    seed: u64,
    epsilon: f64,
}

fn validate(service: &Service, req: &Request) -> Result<StreamParams, Response> {
    if req.method != "GET" {
        return Err(Response::error(405, "use GET /stream"));
    }
    let exp = match req.query_param("exp") {
        Some(e) if !e.is_empty() => e.to_string(),
        _ => {
            return Err(Response::error(
                400,
                "missing required query parameter `exp`",
            ))
        }
    };
    let config = service.config();
    let trials = parse_trials(req, config.default_trials, config.max_trials)?;
    let seed = parse_seed(req, config.default_seed)?;
    let epsilon = match req.query_param("epsilon") {
        None => 0.0,
        Some(raw) => match raw.parse::<f64>() {
            Ok(e) if e.is_finite() && e >= 0.0 => e,
            Ok(e) => {
                return Err(Response::error(
                    400,
                    &format!("epsilon={e} must be finite and non-negative"),
                ))
            }
            Err(err) => return Err(Response::error(400, &format!("bad epsilon={raw:?}: {err}"))),
        },
    };
    if !service.knows_experiment(&exp) {
        return Err(Response::error(404, &format!("unknown experiment `{exp}`")));
    }
    Ok(StreamParams {
        exp,
        trials,
        seed,
        epsilon,
    })
}

fn run_stream(service: &Service, conn: &mut dyn Write, params: StreamParams) {
    ServerStats::bump(&service.stats.streams);
    service.stats.count_status(200);
    let head = "HTTP/1.1 200 OK\r\n\
                Content-Type: application/x-ndjson\r\n\
                Transfer-Encoding: chunked\r\n\
                Connection: close\r\n\r\n";
    if conn.write_all(head.as_bytes()).is_err() {
        return;
    }
    let mut early = false;
    let result = {
        let early = &mut early;
        let frame_conn = &mut *conn;
        let mut emit = move |update: ProgressUpdate| {
            if update.done && update.trials < update.requested {
                *early = true;
            }
            let line = frame_json(&update).render() + "\n";
            let _ = write_chunk(frame_conn, line.as_bytes());
        };
        service.backend().estimate_progressive(
            &params.exp,
            params.trials,
            params.seed,
            params.epsilon,
            &mut emit,
        )
    };
    match result {
        Some(doc) => {
            let _ = write_chunk(conn, doc.as_bytes());
        }
        None => {
            let _ = write_chunk(conn, b"{\"error\":\"progressive estimation failed\"}\n");
        }
    }
    let _ = conn.write_all(b"0\r\n\r\n");
    let _ = conn.flush();
    if early {
        ServerStats::bump(&service.stats.stream_early_stops);
    }
    // Streamed tiles are as warm as served ones: persist them.
    fair_tiles::cache::flush();
}

fn frame_json(update: &ProgressUpdate) -> Json {
    Json::obj()
        .field("scenario", Json::str(&update.scenario))
        .field("requested", Json::num(update.requested as f64))
        .field("trials", Json::num(update.trials as f64))
        .field("mean", Json::Num(update.mean))
        .field("ci", Json::Num(update.ci))
        .field("done", Json::Bool(update.done))
        .canonical()
}

/// One chunked-transfer chunk: hex size line, payload, CRLF. Flushed so
/// the client observes progress frames as they happen, not at close.
fn write_chunk(conn: &mut dyn Write, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(conn, "{:x}\r\n", data.len())?;
    conn.write_all(data)?;
    conn.write_all(b"\r\n")?;
    conn.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Backend;
    use crate::service::ServiceConfig;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    struct StreamingMock;

    impl Backend for StreamingMock {
        fn experiments(&self) -> Vec<(String, String)> {
            vec![("e1".to_string(), "mock".to_string())]
        }
        fn estimate(&self, _exp: &str, _trials: usize, _seed: u64) -> Option<String> {
            None
        }
        fn estimate_progressive(
            &self,
            exp: &str,
            trials: usize,
            _seed: u64,
            epsilon: f64,
            emit: &mut dyn FnMut(ProgressUpdate),
        ) -> Option<String> {
            if exp != "e1" {
                return None;
            }
            // Two frames: one in-flight, one converged early.
            for (t, done) in [(256usize, false), (512, true)] {
                emit(ProgressUpdate {
                    scenario: "mock/scenario".into(),
                    requested: trials,
                    trials: t,
                    mean: 0.5,
                    ci: if done { epsilon } else { 2.0 * epsilon },
                    done,
                });
            }
            Some("{\"adaptive\":{},\"result\":{}}\n".to_string())
        }
    }

    fn service() -> Service {
        Service::new(
            Arc::new(StreamingMock),
            ServiceConfig::default(),
            Arc::new(AtomicBool::new(false)),
        )
    }

    fn stream_get(svc: &Service, target: &str) -> Vec<u8> {
        let head = format!("GET {target} HTTP/1.1\r\n");
        let req = crate::http::parse_request(head.as_bytes()).expect("test request parses");
        let mut out = Vec::new();
        handle(svc, &mut out, &req);
        out
    }

    #[test]
    fn streams_frames_then_wrapper_then_terminal_chunk() {
        let svc = service();
        let raw = stream_get(&svc, "/stream?exp=e1&trials=1000&seed=7&epsilon=0.05");
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("\"trials\":256"));
        assert!(text.contains("\"done\":true"));
        assert!(text.contains("\"adaptive\""));
        assert!(text.ends_with("0\r\n\r\n"), "terminal chunk: {text:?}");
        // The early-converged mock (512 < 1000) ticks the counter.
        assert_eq!(
            svc.stats
                .stream_early_stops
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        assert_eq!(
            svc.stats.streams.load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn rejects_bad_parameters_without_streaming() {
        let svc = service();
        for (target, code) in [
            ("/stream", "400"),
            ("/stream?exp=unknown", "404"),
            ("/stream?exp=e1&epsilon=nope", "400"),
            ("/stream?exp=e1&epsilon=-0.5", "400"),
            ("/stream?exp=e1&epsilon=inf", "400"),
            ("/stream?exp=e1&trials=0", "400"),
        ] {
            let raw = stream_get(&svc, target);
            let text = String::from_utf8_lossy(&raw);
            assert!(
                text.starts_with(&format!("HTTP/1.1 {code}")),
                "{target} → {text}"
            );
            assert!(!text.contains("chunked"), "{target} must not stream");
        }
        let req = crate::http::parse_request(b"POST /stream HTTP/1.1\r\n").expect("parses");
        let mut out = Vec::new();
        handle(&svc, &mut out, &req);
        assert!(String::from_utf8_lossy(&out).starts_with("HTTP/1.1 405"));
    }
}
