//! Route handling: the estimation service behind the HTTP layer.
//!
//! This file is inside fairlint's S2 scope (it handles untrusted request
//! parameters), so every path is total — no `unwrap`/`expect`/`panic!`.
//!
//! The contract that matters here is **byte identity**: `/estimate`
//! responses are produced by the [`Backend`] (which renders the same
//! canonical result document batch runs persist), cached as immutable
//! `Arc<Vec<u8>>` bodies, and served pointer-for-pointer on hits — so the
//! cold path, the warm path, and the batch record agree byte for byte.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use fair_simlab::json::Json;
use fair_simlab::proto_json;

use crate::cache::{Lookup, ShardedCache};
use crate::http::{Request, Response};
use crate::stats::ServerStats;

/// What the service needs from the experiment registry. Implemented by
/// `fair-bench` (which owns the static E1–E17 registry plus the
/// scenario-derived `s_*` entries compiled from `scenarios/*.toml`);
/// kept as a trait so this crate stays below the bench crate in the
/// dependency order and tests can substitute deterministic mock backends.
pub trait Backend: Send + Sync + 'static {
    /// The runnable experiments as `(id, title)` pairs.
    fn experiments(&self) -> Vec<(String, String)>;

    /// Runs the estimation at `(exp, trials, seed)` and returns the
    /// rendered canonical result document (the exact bytes to serve),
    /// or `None` if the experiment is unknown or the run failed.
    fn estimate(&self, exp: &str, trials: usize, seed: u64) -> Option<String>;

    /// Runs the estimation adaptively: every `estimate()` call inside the
    /// experiment stops once its 95% half-width reaches `epsilon` (or its
    /// budget runs out), invoking `emit` with a progress frame per tile
    /// batch. Returns the final wrapper document (adaptive accounting plus
    /// the result for the trials actually spent), or `None` on failure.
    /// The default implementation reports "unsupported" by returning
    /// `None` without emitting.
    fn estimate_progressive(
        &self,
        _exp: &str,
        _trials: usize,
        _seed: u64,
        _epsilon: f64,
        _emit: &mut dyn FnMut(ProgressUpdate),
    ) -> Option<String> {
        None
    }
}

/// One progress frame of an adaptive estimation, as surfaced to HTTP
/// streaming consumers (mirrors `fair_core::progressive::Update` without
/// depending on `fair-core` — serve stays below it in the crate order).
#[derive(Clone, Debug, PartialEq)]
pub struct ProgressUpdate {
    /// Scenario name of the reporting `estimate()` call.
    pub scenario: String,
    /// Trials that call was asked for.
    pub requested: usize,
    /// Trials tallied so far.
    pub trials: usize,
    /// Running mean payoff.
    pub mean: f64,
    /// Running 95% confidence half-width.
    pub ci: f64,
    /// Whether this is the call's final frame.
    pub done: bool,
}

/// Tunables for the service layer.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Trials when the request omits `trials`.
    pub default_trials: usize,
    /// Largest accepted `trials` value (admission control: one request
    /// cannot monopolize the worker pool with an unbounded run).
    pub max_trials: usize,
    /// Seed when the request omits `seed`.
    pub default_seed: u64,
    /// Result-cache capacity in entries.
    pub cache_entries: usize,
    /// Result-cache shard count.
    pub cache_shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            default_trials: 200,
            max_trials: 100_000,
            default_seed: 0xfa1e,
            cache_entries: 128,
            cache_shards: 8,
        }
    }
}

/// The service's verdict on one parsed request, split for the event loop:
/// cheap routes, errors, and warm cache hits produce a [`Response`] right
/// away (served inline on the loop); a cold `/estimate` yields a
/// [`ComputeTicket`] to run on a worker via
/// [`Service::estimate_finish`].
pub enum Verdict {
    /// Answer immediately; the status is already tallied.
    Reply(Response),
    /// Run the estimation off-loop, then finish the ticket.
    Offload(ComputeTicket),
}

/// A validated cold `/estimate` awaiting worker-side computation.
pub struct ComputeTicket {
    key: String,
    exp: String,
    trials: usize,
    seed: u64,
}

/// The routing core: owns the backend, the result cache, the tallies, and
/// the shutdown latch. Shared across worker threads behind an `Arc`.
pub struct Service {
    backend: Arc<dyn Backend>,
    config: ServiceConfig,
    cache: ShardedCache,
    /// Registered experiment ids, snapshotted at construction — the
    /// registry (static core plus the scenario-derived entries, both
    /// fixed for the process lifetime) never changes after startup, and
    /// the warm path must not rebuild the full `(id, title)` listing per
    /// request just to validate `exp`.
    known: Vec<String>,
    /// Shared server tallies: everything counted on this service's own
    /// paths (requests, statuses, cache flavors) plus worker-side bumps.
    /// Event loops keep their loop-local counters in separate blocks (see
    /// [`register_loop_stats`](Service::register_loop_stats)); `/metrics`
    /// folds all blocks together.
    pub stats: Arc<ServerStats>,
    /// Per-event-loop counter blocks, registered once per loop at startup.
    loop_stats: Mutex<Vec<Arc<ServerStats>>>,
    shutdown: Arc<AtomicBool>,
}

impl Service {
    /// Builds a service over `backend`. `shutdown` is the latch the accept
    /// loop polls; `POST /shutdown` sets it.
    pub fn new(
        backend: Arc<dyn Backend>,
        config: ServiceConfig,
        shutdown: Arc<AtomicBool>,
    ) -> Service {
        let known = backend
            .experiments()
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        Service {
            backend,
            cache: ShardedCache::new(config.cache_entries, config.cache_shards),
            config,
            known,
            stats: Arc::new(ServerStats::default()),
            loop_stats: Mutex::new(Vec::new()),
            shutdown,
        }
    }

    /// Registers and returns a fresh per-loop counter block. Each event
    /// loop bumps its own block on the hot path — no cache line ping-pong
    /// between cores — and [`stats_snapshot`](Service::stats_snapshot)
    /// folds every block into one tally surface on demand.
    pub fn register_loop_stats(&self) -> Arc<ServerStats> {
        let stats = Arc::new(ServerStats::default());
        self.loop_stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&stats));
        stats
    }

    /// Number of per-loop counter blocks registered (the live loop count).
    pub fn registered_loops(&self) -> usize {
        self.loop_stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// One aggregated tally snapshot: the shared block plus every
    /// registered per-loop block, counter-for-counter summed.
    pub fn stats_snapshot(&self) -> ServerStats {
        let loops = self.loop_stats.lock().unwrap_or_else(|e| e.into_inner());
        ServerStats::merged(std::iter::once(&*self.stats).chain(loops.iter().map(Arc::as_ref)))
    }

    /// Whether shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The experiment backend (the streaming endpoint drives it directly —
    /// progressive responses are not cacheable bodies).
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// The service tunables (streaming shares the parameter envelope).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Whether `exp` is a registered experiment id.
    pub fn knows_experiment(&self, exp: &str) -> bool {
        self.known.iter().any(|id| id == exp)
    }

    /// Handles one parsed request, counting it and its response status.
    /// Blocking entry point: a cold `/estimate` computes right here (and
    /// may wait on another caller's single-flight).
    pub fn handle(&self, req: &Request) -> Response {
        match self.begin(req) {
            Verdict::Reply(resp) => resp,
            Verdict::Offload(ticket) => self.estimate_finish(ticket),
        }
    }

    /// First half of request handling, cheap enough for the event loop:
    /// counts the request, routes everything except a cold `/estimate` to
    /// a finished (status-tallied) response, and returns a ticket for the
    /// cold path. The warm probe is [`ShardedCache::get_if_ready`] — a
    /// pending single-flight is treated as cold so the loop never blocks.
    pub fn begin(&self, req: &Request) -> Verdict {
        ServerStats::bump(&self.stats.requests);
        if req.path == "/estimate" && req.method == "GET" {
            self.estimate_begin(req)
        } else {
            let resp = self.route(req);
            self.stats.count_status(resp.status);
            Verdict::Reply(resp)
        }
    }

    fn route(&self, req: &Request) -> Response {
        match req.path.as_str() {
            "/healthz" => get_only(req, |_| Response::json(200, "{\"status\":\"ok\"}\n")),
            "/experiments" => get_only(req, |_| self.experiments()),
            // GET /estimate is intercepted by `begin`; only other methods
            // fall through to here.
            "/estimate" => Response::error(405, "use GET /estimate"),
            "/metrics" => get_only(req, |_| self.metrics()),
            "/shutdown" => {
                if req.method == "POST" {
                    self.request_shutdown()
                } else {
                    Response::error(405, "use POST /shutdown")
                }
            }
            other => Response::error(404, &format!("no route {other}")),
        }
    }

    fn experiments(&self) -> Response {
        let items = self
            .backend
            .experiments()
            .into_iter()
            .map(|(id, title)| {
                Json::obj()
                    .field("id", Json::str(id))
                    .field("title", Json::str(title))
            })
            .collect();
        let doc = Json::obj()
            .field("default_seed", Json::num(self.config.default_seed as f64))
            .field(
                "default_trials",
                Json::num(self.config.default_trials as f64),
            )
            .field("max_trials", Json::num(self.config.max_trials as f64))
            .field("experiments", Json::Arr(items));
        Response::json(200, doc.canonical().render_pretty() + "\n")
    }

    /// Tallies and returns a response (the `Reply` finisher).
    fn counted(&self, resp: Response) -> Response {
        self.stats.count_status(resp.status);
        resp
    }

    fn estimate_begin(&self, req: &Request) -> Verdict {
        let exp = match req.query_param("exp") {
            Some(e) if !e.is_empty() => e.to_string(),
            _ => {
                return Verdict::Reply(self.counted(Response::error(
                    400,
                    "missing required query parameter `exp`",
                )))
            }
        };
        let trials = match parse_trials(req, self.config.default_trials, self.config.max_trials) {
            Ok(t) => t,
            Err(resp) => return Verdict::Reply(self.counted(resp)),
        };
        let seed = match parse_seed(req, self.config.default_seed) {
            Ok(s) => s,
            Err(resp) => return Verdict::Reply(self.counted(resp)),
        };
        if !self.knows_experiment(&exp) {
            return Verdict::Reply(
                self.counted(Response::error(404, &format!("unknown experiment `{exp}`"))),
            );
        }
        // The canonical point key: defaults applied, fixed field order —
        // `?trials=100&exp=e1` and `?exp=e1&trials=100&seed=<default>`
        // coalesce to one cache entry and one computation.
        let key = format!("exp={exp}&seed={seed}&trials={trials}");
        if let Some(bytes) = self.cache.get_if_ready(&key) {
            ServerStats::bump(&self.stats.cache_hits);
            return Verdict::Reply(
                self.counted(Response::json(200, bytes).with_header("X-Cache", "hit")),
            );
        }
        Verdict::Offload(ComputeTicket {
            key,
            exp,
            trials,
            seed,
        })
    }

    /// Second half of a cold `/estimate`: computes (or joins a
    /// single-flight, or finds the value another caller just cached) and
    /// builds the tallied response. Blocking — run on a worker, never on
    /// the event loop.
    pub fn estimate_finish(&self, ticket: ComputeTicket) -> Response {
        let ComputeTicket {
            key,
            exp,
            trials,
            seed,
        } = ticket;
        let backend = Arc::clone(&self.backend);
        let lookup = self.cache.get_or_compute(&key, move || {
            backend
                .estimate(&exp, trials, seed)
                .map(String::into_bytes)
                .ok_or_else(|| "estimation failed".to_string())
        });
        let (bytes, flavor, counter) = match &lookup {
            Lookup::Hit(b) => (b, "hit", &self.stats.cache_hits),
            Lookup::Computed(b) => (b, "miss", &self.stats.cache_misses),
            Lookup::Waited(b) => (b, "wait", &self.stats.cache_waits),
            Lookup::Failed(e) => return self.counted(Response::error(500, e)),
        };
        if matches!(lookup, Lookup::Computed(_)) {
            // A cold compute may have minted new tiles; persist them now
            // so a later restart serves this point warm from disk.
            fair_tiles::cache::flush();
        }
        ServerStats::bump(counter);
        self.counted(Response::json(200, Arc::clone(bytes)).with_header("X-Cache", flavor))
    }

    /// The `/metrics` document: server tallies, cache occupancy, and the
    /// live per-protocol trace counters. Also what the server flushes to
    /// disk as its final snapshot on graceful shutdown.
    pub fn metrics_document(&self) -> Json {
        let protocols = fair_trace::metrics::snapshot();
        Json::obj()
            .field("cache_entries", Json::num(self.cache.len() as f64))
            .field("loops", Json::num(self.registered_loops().max(1) as f64))
            .field(
                "protocols",
                Json::Arr(protocols.iter().map(proto_json).collect()),
            )
            .field("server", self.stats_snapshot().to_json())
            .field("tiles", tiles_json())
            .canonical()
    }

    fn metrics(&self) -> Response {
        Response::json(200, self.metrics_document().render_pretty() + "\n")
    }

    fn request_shutdown(&self) -> Response {
        ServerStats::bump(&self.stats.shutdown_requests);
        self.shutdown.store(true, Ordering::SeqCst);
        Response::json(200, "{\"status\":\"shutting down\"}\n")
    }
}

/// The tile-store block of `/metrics`: hit/miss/insert counters plus
/// occupancy, or `null` when no store is installed.
fn tiles_json() -> Json {
    let Some(stats) = fair_tiles::cache::snapshot() else {
        return Json::Null;
    };
    Json::obj()
        .field("hits", Json::num(stats.hits as f64))
        .field("misses", Json::num(stats.misses as f64))
        .field("inserts", Json::num(stats.inserts as f64))
        .field("loaded_records", Json::num(stats.loaded_records as f64))
        .field("skipped_records", Json::num(stats.skipped_records as f64))
        .field("flushed_files", Json::num(stats.flushed_files as f64))
        .field("groups", Json::num(stats.groups as f64))
        .field("entries", Json::num(stats.entries as f64))
}

fn get_only(req: &Request, f: impl FnOnce(&Request) -> Response) -> Response {
    if req.method == "GET" {
        f(req)
    } else {
        Response::error(405, &format!("use GET {}", req.path))
    }
}

pub(crate) fn parse_trials(req: &Request, default: usize, max: usize) -> Result<usize, Response> {
    let raw = match req.query_param("trials") {
        None => return Ok(default),
        Some(raw) => raw,
    };
    match raw.parse::<usize>() {
        Ok(v) if (1..=max).contains(&v) => Ok(v),
        Ok(v) => Err(Response::error(
            400,
            &format!("trials={v} out of range [1, {max}]"),
        )),
        Err(e) => Err(Response::error(400, &format!("bad trials={raw:?}: {e}"))),
    }
}

pub(crate) fn parse_seed(req: &Request, default: u64) -> Result<u64, Response> {
    let raw = match req.query_param("seed") {
        None => return Ok(default),
        Some(raw) => raw,
    };
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse::<u64>(),
    };
    parsed.map_err(|e| Response::error(400, &format!("bad seed={raw:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::parse_request;
    use std::sync::atomic::AtomicUsize;

    struct MockBackend {
        calls: AtomicUsize,
    }

    impl Backend for MockBackend {
        fn experiments(&self) -> Vec<(String, String)> {
            vec![("e1".to_string(), "mock experiment".to_string())]
        }

        fn estimate(&self, exp: &str, trials: usize, seed: u64) -> Option<String> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            if exp != "e1" {
                return None;
            }
            Some(format!(
                "{{\"exp\":\"{exp}\",\"seed\":{seed},\"trials\":{trials}}}\n"
            ))
        }
    }

    fn service() -> Service {
        Service::new(
            Arc::new(MockBackend {
                calls: AtomicUsize::new(0),
            }),
            ServiceConfig::default(),
            Arc::new(AtomicBool::new(false)),
        )
    }

    fn get(svc: &Service, target: &str) -> Response {
        let head = format!("GET {target} HTTP/1.1\r\n");
        svc.handle(&parse_request(head.as_bytes()).expect("test request parses"))
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let svc = service();
        assert_eq!(get(&svc, "/healthz").status, 200);
        assert_eq!(get(&svc, "/nope").status, 404);
        let post = parse_request(b"POST /healthz HTTP/1.1\r\n").expect("parses");
        assert_eq!(svc.handle(&post).status, 405);
    }

    #[test]
    fn experiments_lists_the_registry() {
        let svc = service();
        let resp = get(&svc, "/experiments");
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body.into_vec()).expect("utf8 body");
        assert!(body.contains("\"e1\""));
        assert!(body.contains("mock experiment"));
    }

    #[test]
    fn estimate_defaults_cache_and_normalize_keys() {
        let svc = service();
        let cold = get(&svc, "/estimate?exp=e1&trials=100&seed=7");
        assert_eq!(cold.status, 200);
        assert_eq!(
            cold.headers
                .iter()
                .find(|(k, _)| k == "X-Cache")
                .map(|(_, v)| v.as_str()),
            Some("miss")
        );
        // Same point, different parameter order and hex seed: a hit, byte-identical.
        let warm = get(&svc, "/estimate?seed=0x7&exp=e1&trials=100");
        assert_eq!(warm.status, 200);
        assert_eq!(
            warm.headers
                .iter()
                .find(|(k, _)| k == "X-Cache")
                .map(|(_, v)| v.as_str()),
            Some("hit")
        );
        assert_eq!(cold.body, warm.body);
        assert_eq!(svc.stats.cache_misses.load(Ordering::Relaxed), 1);
        assert_eq!(svc.stats.cache_hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn estimate_rejects_bad_parameters() {
        let svc = service();
        assert_eq!(get(&svc, "/estimate").status, 400);
        assert_eq!(get(&svc, "/estimate?exp=e1&trials=zero").status, 400);
        assert_eq!(get(&svc, "/estimate?exp=e1&trials=0").status, 400);
        assert_eq!(get(&svc, "/estimate?exp=e1&trials=999999999").status, 400);
        assert_eq!(get(&svc, "/estimate?exp=e1&seed=-3").status, 400);
        assert_eq!(get(&svc, "/estimate?exp=unknown").status, 404);
    }

    #[test]
    fn metrics_exposes_tallies_and_shutdown_sets_the_latch() {
        let latch = Arc::new(AtomicBool::new(false));
        let svc = Service::new(
            Arc::new(MockBackend {
                calls: AtomicUsize::new(0),
            }),
            ServiceConfig::default(),
            Arc::clone(&latch),
        );
        get(&svc, "/estimate?exp=e1");
        let resp = get(&svc, "/metrics");
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body.into_vec()).expect("utf8 body");
        assert!(body.contains("\"cache_misses\": 1"));
        assert!(body.contains("\"cache_entries\": 1"));
        assert!(!svc.shutting_down());
        let post = parse_request(b"POST /shutdown HTTP/1.1\r\n").expect("parses");
        assert_eq!(svc.handle(&post).status, 200);
        assert!(svc.shutting_down());
        assert!(latch.load(Ordering::SeqCst));
    }
}
