//! Lock-free server tallies exported on `/metrics`.
//!
//! All counters are relaxed `AtomicU64`s: they are operational telemetry,
//! not part of the deterministic result surface, so ordering between them
//! does not matter — only that each increment lands exactly once.

use std::sync::atomic::{AtomicU64, Ordering};

use fair_simlab::json::Json;

/// Monotonic counters describing one server's lifetime.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Requests fully parsed.
    pub requests: AtomicU64,
    /// Responses by status class we actually emit.
    pub status_200: AtomicU64,
    /// Client errors (400/405/431): malformed requests, bad parameters.
    pub status_400: AtomicU64,
    /// Unknown routes or experiments.
    pub status_404: AtomicU64,
    /// Admission-control rejections (queue full).
    pub status_429: AtomicU64,
    /// Server errors (500/503): shutting down, deadline expired, failures.
    pub status_503: AtomicU64,
    /// Estimate served straight from the cache.
    pub cache_hits: AtomicU64,
    /// Estimate computed cold.
    pub cache_misses: AtomicU64,
    /// Estimate shared via single-flight wait.
    pub cache_waits: AtomicU64,
    /// Jobs bounced because the worker queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Jobs bounced because shutdown had begun.
    pub rejected_shutdown: AtomicU64,
    /// Requests whose per-request deadline expired before service.
    pub deadline_expired: AtomicU64,
    /// `POST /shutdown` requests honoured.
    pub shutdown_requests: AtomicU64,
    /// `/stream` responses started.
    pub streams: AtomicU64,
    /// Streamed estimations that converged before their trial budget.
    pub stream_early_stops: AtomicU64,
    /// Requests served on a reused (keep-alive) connection — every fully
    /// parsed request after a connection's first.
    pub keepalive_reuses: AtomicU64,
    /// Requests parsed while an earlier response on the same connection
    /// was still queued or being written (HTTP pipelining).
    pub pipelined_requests: AtomicU64,
    /// Connections closed by the idle/read timeout wheel.
    pub conn_timeouts: AtomicU64,
}

impl ServerStats {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the status code of an emitted response.
    pub fn count_status(&self, status: u16) {
        let counter = match status {
            200 => &self.status_200,
            400..=403 | 405..=428 | 430..=499 => &self.status_400,
            404 => &self.status_404,
            429 => &self.status_429,
            _ => &self.status_503,
        };
        Self::bump(counter);
    }

    /// Renders every counter as a (sorted-key) JSON object.
    pub fn to_json(&self) -> Json {
        let read = |c: &AtomicU64| Json::num(c.load(Ordering::Relaxed) as f64);
        Json::Obj(vec![
            ("accepted".into(), read(&self.accepted)),
            ("cache_hits".into(), read(&self.cache_hits)),
            ("cache_misses".into(), read(&self.cache_misses)),
            ("cache_waits".into(), read(&self.cache_waits)),
            ("conn_timeouts".into(), read(&self.conn_timeouts)),
            ("deadline_expired".into(), read(&self.deadline_expired)),
            ("keepalive_reuses".into(), read(&self.keepalive_reuses)),
            ("pipelined_requests".into(), read(&self.pipelined_requests)),
            (
                "rejected_queue_full".into(),
                read(&self.rejected_queue_full),
            ),
            ("rejected_shutdown".into(), read(&self.rejected_shutdown)),
            ("requests".into(), read(&self.requests)),
            ("shutdown_requests".into(), read(&self.shutdown_requests)),
            ("status_200".into(), read(&self.status_200)),
            ("status_400".into(), read(&self.status_400)),
            ("status_404".into(), read(&self.status_404)),
            ("status_429".into(), read(&self.status_429)),
            ("status_503".into(), read(&self.status_503)),
            ("stream_early_stops".into(), read(&self.stream_early_stops)),
            ("streams".into(), read(&self.streams)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_counting_routes_to_the_right_counter() {
        let s = ServerStats::default();
        s.count_status(200);
        s.count_status(200);
        s.count_status(400);
        s.count_status(405);
        s.count_status(404);
        s.count_status(429);
        s.count_status(503);
        assert_eq!(s.status_200.load(Ordering::Relaxed), 2);
        assert_eq!(s.status_400.load(Ordering::Relaxed), 2);
        assert_eq!(s.status_404.load(Ordering::Relaxed), 1);
        assert_eq!(s.status_429.load(Ordering::Relaxed), 1);
        assert_eq!(s.status_503.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn json_export_has_sorted_keys() {
        let s = ServerStats::default();
        ServerStats::bump(&s.cache_hits);
        let rendered = s.to_json().render();
        let doc = fair_simlab::json::parse(&rendered).expect("self-rendered json parses");
        match doc {
            Json::Obj(fields) => {
                assert!(fields.windows(2).all(|w| w[0].0 < w[1].0), "keys sorted");
                assert_eq!(fields.len(), 19);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
