//! Lock-free server tallies exported on `/metrics`.
//!
//! All counters are relaxed `AtomicU64`s: they are operational telemetry,
//! not part of the deterministic result surface, so ordering between them
//! does not matter — only that each increment lands exactly once.

use std::sync::atomic::{AtomicU64, Ordering};

use fair_simlab::json::Json;

/// Monotonic counters describing one server's lifetime.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Requests fully parsed.
    pub requests: AtomicU64,
    /// Responses by status class we actually emit.
    pub status_200: AtomicU64,
    /// Client errors (400/405/431): malformed requests, bad parameters.
    pub status_400: AtomicU64,
    /// Unknown routes or experiments.
    pub status_404: AtomicU64,
    /// Admission-control rejections (queue full).
    pub status_429: AtomicU64,
    /// Server errors (500/503): shutting down, deadline expired, failures.
    pub status_503: AtomicU64,
    /// Estimate served straight from the cache.
    pub cache_hits: AtomicU64,
    /// Estimate computed cold.
    pub cache_misses: AtomicU64,
    /// Estimate shared via single-flight wait.
    pub cache_waits: AtomicU64,
    /// Jobs bounced because the worker queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Jobs bounced because shutdown had begun.
    pub rejected_shutdown: AtomicU64,
    /// Requests whose per-request deadline expired before service.
    pub deadline_expired: AtomicU64,
    /// `POST /shutdown` requests honoured.
    pub shutdown_requests: AtomicU64,
    /// `/stream` responses started.
    pub streams: AtomicU64,
    /// Streamed estimations that converged before their trial budget.
    pub stream_early_stops: AtomicU64,
    /// Requests served on a reused (keep-alive) connection — every fully
    /// parsed request after a connection's first.
    pub keepalive_reuses: AtomicU64,
    /// Requests parsed while an earlier response on the same connection
    /// was still queued or being written (HTTP pipelining).
    pub pipelined_requests: AtomicU64,
    /// Connections closed by the idle/read timeout wheel.
    pub conn_timeouts: AtomicU64,
}

impl ServerStats {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Every counter, in `to_json` key order — the single list that keeps
    /// [`absorb`](ServerStats::absorb) and the JSON export in lockstep.
    fn all(&self) -> [&AtomicU64; 19] {
        [
            &self.accepted,
            &self.cache_hits,
            &self.cache_misses,
            &self.cache_waits,
            &self.conn_timeouts,
            &self.deadline_expired,
            &self.keepalive_reuses,
            &self.pipelined_requests,
            &self.rejected_queue_full,
            &self.rejected_shutdown,
            &self.requests,
            &self.shutdown_requests,
            &self.status_200,
            &self.status_400,
            &self.status_404,
            &self.status_429,
            &self.status_503,
            &self.stream_early_stops,
            &self.streams,
        ]
    }

    /// Adds every counter of `other` into `self`.
    pub fn absorb(&self, other: &ServerStats) {
        for (mine, theirs) in self.all().into_iter().zip(other.all()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Sums every counter across `parts` into a fresh snapshot — how
    /// `/metrics` folds per-event-loop counter blocks (plus the shared
    /// service block) into the single tally surface tests and dashboards
    /// see, without any cross-core contention on the hot paths.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a ServerStats>) -> ServerStats {
        let acc = ServerStats::default();
        for part in parts {
            acc.absorb(part);
        }
        acc
    }

    /// Records the status code of an emitted response.
    pub fn count_status(&self, status: u16) {
        let counter = match status {
            200 => &self.status_200,
            400..=403 | 405..=428 | 430..=499 => &self.status_400,
            404 => &self.status_404,
            429 => &self.status_429,
            _ => &self.status_503,
        };
        Self::bump(counter);
    }

    /// Renders every counter as a (sorted-key) JSON object.
    pub fn to_json(&self) -> Json {
        let read = |c: &AtomicU64| Json::num(c.load(Ordering::Relaxed) as f64);
        Json::Obj(vec![
            ("accepted".into(), read(&self.accepted)),
            ("cache_hits".into(), read(&self.cache_hits)),
            ("cache_misses".into(), read(&self.cache_misses)),
            ("cache_waits".into(), read(&self.cache_waits)),
            ("conn_timeouts".into(), read(&self.conn_timeouts)),
            ("deadline_expired".into(), read(&self.deadline_expired)),
            ("keepalive_reuses".into(), read(&self.keepalive_reuses)),
            ("pipelined_requests".into(), read(&self.pipelined_requests)),
            (
                "rejected_queue_full".into(),
                read(&self.rejected_queue_full),
            ),
            ("rejected_shutdown".into(), read(&self.rejected_shutdown)),
            ("requests".into(), read(&self.requests)),
            ("shutdown_requests".into(), read(&self.shutdown_requests)),
            ("status_200".into(), read(&self.status_200)),
            ("status_400".into(), read(&self.status_400)),
            ("status_404".into(), read(&self.status_404)),
            ("status_429".into(), read(&self.status_429)),
            ("status_503".into(), read(&self.status_503)),
            ("stream_early_stops".into(), read(&self.stream_early_stops)),
            ("streams".into(), read(&self.streams)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_counting_routes_to_the_right_counter() {
        let s = ServerStats::default();
        s.count_status(200);
        s.count_status(200);
        s.count_status(400);
        s.count_status(405);
        s.count_status(404);
        s.count_status(429);
        s.count_status(503);
        assert_eq!(s.status_200.load(Ordering::Relaxed), 2);
        assert_eq!(s.status_400.load(Ordering::Relaxed), 2);
        assert_eq!(s.status_404.load(Ordering::Relaxed), 1);
        assert_eq!(s.status_429.load(Ordering::Relaxed), 1);
        assert_eq!(s.status_503.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn merged_snapshot_sums_every_counter() {
        let a = ServerStats::default();
        let b = ServerStats::default();
        ServerStats::bump(&a.accepted);
        ServerStats::bump(&a.keepalive_reuses);
        a.count_status(200);
        ServerStats::bump(&b.accepted);
        ServerStats::bump(&b.streams);
        b.count_status(429);
        let merged = ServerStats::merged([&a, &b]);
        assert_eq!(merged.accepted.load(Ordering::Relaxed), 2);
        assert_eq!(merged.keepalive_reuses.load(Ordering::Relaxed), 1);
        assert_eq!(merged.streams.load(Ordering::Relaxed), 1);
        assert_eq!(merged.status_200.load(Ordering::Relaxed), 1);
        assert_eq!(merged.status_429.load(Ordering::Relaxed), 1);
        // The merge covers the whole export surface: summing the rendered
        // numbers field by field matches rendering the merge.
        let (ja, jb, jm) = (a.to_json().render(), b.to_json().render(), merged.to_json());
        let parse = |s: &str| match fair_simlab::json::parse(s) {
            Ok(Json::Obj(fields)) => fields,
            other => panic!("expected object, got {other:?}"),
        };
        let (fa, fb) = (parse(&ja), parse(&jb));
        let summed: Vec<(String, Json)> = fa
            .into_iter()
            .zip(fb)
            .map(|((ka, va), (kb, vb))| {
                assert_eq!(ka, kb);
                match (va, vb) {
                    (Json::Num(x), Json::Num(y)) => (ka, Json::num(x + y)),
                    other => panic!("expected numbers, got {other:?}"),
                }
            })
            .collect();
        assert_eq!(Json::Obj(summed).render(), jm.render());
    }

    #[test]
    fn json_export_has_sorted_keys() {
        let s = ServerStats::default();
        ServerStats::bump(&s.cache_hits);
        let rendered = s.to_json().render();
        let doc = fair_simlab::json::parse(&rendered).expect("self-rendered json parses");
        match doc {
            Json::Obj(fields) => {
                assert!(fields.windows(2).all(|w| w[0].0 < w[1].0), "keys sorted");
                assert_eq!(fields.len(), 19);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
