//! The engine's trace vocabulary: what happened, encoded as plain
//! integers so events are `Copy`, comparable, and renderable without any
//! reference to the protocol's generic message type.

/// The source of a traced message (mirrors the engine's `Endpoint`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Src {
    /// A party, by id.
    Party(usize),
    /// A hybrid functionality, by id.
    Func(usize),
    /// The adversary's dedicated interface.
    Adversary,
}

impl core::fmt::Display for Src {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Src::Party(p) => write!(f, "p{p}"),
            Src::Func(x) => write!(f, "f{x}"),
            Src::Adversary => write!(f, "adv"),
        }
    }
}

/// The destination of a traced message (mirrors the engine's
/// `Destination`; a broadcast is traced once, before fan-out).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Dst {
    /// A party, by id.
    Party(usize),
    /// A hybrid functionality, by id.
    Func(usize),
    /// The adversary's dedicated interface.
    Adversary,
    /// The consistent broadcast channel (delivered to every party).
    Broadcast,
}

impl core::fmt::Display for Dst {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Dst::Party(p) => write!(f, "p{p}"),
            Dst::Func(x) => write!(f, "f{x}"),
            Dst::Adversary => write!(f, "adv"),
            Dst::Broadcast => write!(f, "*"),
        }
    }
}

/// One engine event. Emitted by `fair_runtime`'s engine through a
/// [`crate::Tracer`] at round boundaries, message sends, functionality
/// invocations, corruptions, and output delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A new synchronous round began.
    RoundStart {
        /// 0-based round number.
        round: usize,
    },
    /// A message was released into the network (broadcasts count once).
    Send {
        /// Sender endpoint.
        from: Src,
        /// Destination endpoint.
        to: Dst,
        /// Message size: the byte length of the message's debug
        /// rendering — a deterministic wire-size proxy (the workspace has
        /// no serialization layer).
        len: usize,
    },
    /// A functionality consumed a non-empty batch of messages.
    FuncCall {
        /// Functionality id.
        func: usize,
        /// Round of the invocation.
        round: usize,
        /// Number of messages consumed.
        msgs: usize,
    },
    /// A party fell under adversarial control (round 0 covers initial
    /// corruptions).
    Corrupt {
        /// The corrupted party.
        party: usize,
        /// Round of the corruption.
        round: usize,
    },
    /// An honest party's output was delivered at the end of execution.
    Output {
        /// The party.
        party: usize,
        /// Whether the output was ⊥ (the party aborted empty-handed).
        bot: bool,
    },
    /// The execution ended.
    End {
        /// Rounds actually executed.
        rounds: usize,
    },
}

impl TraceEvent {
    /// Renders the event as one deterministic transcript line.
    pub fn render(&self) -> String {
        match *self {
            TraceEvent::RoundStart { round } => format!("round {round}"),
            TraceEvent::Send { from, to, len } => format!("send from={from} to={to} len={len}"),
            TraceEvent::FuncCall { func, round, msgs } => {
                format!("func f{func} round={round} msgs={msgs}")
            }
            TraceEvent::Corrupt { party, round } => format!("corrupt p{party} round={round}"),
            TraceEvent::Output { party, bot } => format!("output p{party} bot={bot}"),
            TraceEvent::End { rounds } => format!("end rounds={rounds}"),
        }
    }
}

/// Byte length of a value's `Debug` rendering, computed through a
/// counting writer — no allocation, deterministic for the derived `Debug`
/// impls protocol messages use. The engine's wire-size proxy.
pub fn debug_len<M: core::fmt::Debug>(msg: &M) -> usize {
    use core::fmt::Write;
    struct Count(usize);
    impl core::fmt::Write for Count {
        fn write_str(&mut self, s: &str) -> core::fmt::Result {
            self.0 += s.len();
            Ok(())
        }
    }
    let mut w = Count(0);
    let _ = write!(w, "{msg:?}");
    w.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_are_stable() {
        assert_eq!(TraceEvent::RoundStart { round: 3 }.render(), "round 3");
        assert_eq!(
            TraceEvent::Send {
                from: Src::Party(0),
                to: Dst::Broadcast,
                len: 9
            }
            .render(),
            "send from=p0 to=* len=9"
        );
        assert_eq!(
            TraceEvent::Send {
                from: Src::Func(1),
                to: Dst::Adversary,
                len: 2
            }
            .render(),
            "send from=f1 to=adv len=2"
        );
        assert_eq!(
            TraceEvent::FuncCall {
                func: 0,
                round: 2,
                msgs: 4
            }
            .render(),
            "func f0 round=2 msgs=4"
        );
        assert_eq!(
            TraceEvent::Corrupt { party: 1, round: 0 }.render(),
            "corrupt p1 round=0"
        );
        assert_eq!(
            TraceEvent::Output {
                party: 0,
                bot: true
            }
            .render(),
            "output p0 bot=true"
        );
        assert_eq!(TraceEvent::End { rounds: 7 }.render(), "end rounds=7");
    }

    #[test]
    fn debug_len_matches_format() {
        assert_eq!(debug_len(&42u64), format!("{:?}", 42u64).len());
        let v = vec![1u8, 2, 3];
        assert_eq!(debug_len(&v), format!("{v:?}").len());
    }
}
