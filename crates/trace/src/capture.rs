//! The process-global transcript collector.
//!
//! The estimator's hot path cannot thread a capture handle through every
//! call site (scenarios, tiles, worker closures), so capture is a small
//! process-global switched on around a recording run: `begin` installs a
//! filter, the estimator asks [`active`] (one relaxed atomic load — the
//! only cost trials pay when capture is off) and then [`wants`] per trial
//! seed, submits finished transcripts, and [`end`] returns everything
//! collected and disarms the collector.
//!
//! Determinism: [`CaptureFilter::Seeds`] selects trials by their seed, a
//! pure function of the trial index, so it collects the same transcripts
//! under any worker count. [`CaptureFilter::FirstN`] depends on trial
//! completion order and is only deterministic under `jobs = 1`; the
//! `fair-trace record` CLI forces single-job scheduling for exactly this
//! reason.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::transcript::Transcript;

/// Default ring-buffer capacity for captured transcripts (events kept per
/// trial before eviction).
pub const DEFAULT_RING: usize = 4096;

/// Which trials to capture.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaptureFilter {
    /// The first `n` trials to finish (deterministic only under one job).
    FirstN(usize),
    /// Trials with exactly these seeds (deterministic under any jobs).
    Seeds(BTreeSet<u64>),
}

struct State {
    filter: CaptureFilter,
    seen: BTreeSet<u64>,
    transcripts: Vec<Transcript>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static RING_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_RING);
static STATE: Mutex<Option<State>> = Mutex::new(None);

fn state() -> std::sync::MutexGuard<'static, Option<State>> {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms the collector with a filter and per-trial ring capacity,
/// discarding anything a previous run left behind.
pub fn begin(filter: CaptureFilter, ring_capacity: usize) {
    let mut guard = state();
    *guard = Some(State {
        filter,
        seen: BTreeSet::new(),
        transcripts: Vec::new(),
    });
    RING_CAP.store(ring_capacity, Ordering::Relaxed);
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Whether a capture is in progress — the estimator's per-trial fast
/// check.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// The ring capacity captured transcripts should use.
pub fn ring_capacity() -> usize {
    RING_CAP.load(Ordering::Relaxed)
}

/// Whether the active capture wants the trial with this seed. Each seed is
/// claimed at most once (`FirstN` also stops after `n` claims).
pub fn wants(seed: u64) -> bool {
    let mut guard = state();
    let Some(st) = guard.as_mut() else {
        return false;
    };
    let want = match &st.filter {
        CaptureFilter::FirstN(n) => st.seen.len() < *n && !st.seen.contains(&seed),
        CaptureFilter::Seeds(set) => set.contains(&seed) && !st.seen.contains(&seed),
    };
    if want {
        st.seen.insert(seed);
    }
    want
}

/// Submits a finished transcript (dropped silently if no capture is
/// active).
pub fn submit(t: Transcript) {
    if let Some(st) = state().as_mut() {
        st.transcripts.push(t);
    }
}

/// Disarms the collector and returns the captured transcripts sorted by
/// seed (submission order is schedule-dependent; seed order is not).
pub fn end() -> Vec<Transcript> {
    ACTIVE.store(false, Ordering::Relaxed);
    let mut out = match state().take() {
        Some(st) => st.transcripts,
        None => Vec::new(),
    };
    out.sort_by_key(|t| t.seed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ExecStats;

    fn transcript(seed: u64) -> Transcript {
        Transcript {
            seed,
            stats: ExecStats::default(),
            dropped: 0,
            events: Vec::new(),
        }
    }

    // One test fn: the collector is process-global and the test harness
    // runs #[test] fns concurrently.
    #[test]
    fn capture_lifecycle() {
        // Inactive: nothing wanted, submissions dropped.
        assert!(!active());
        assert!(!wants(1));
        submit(transcript(1));
        assert!(end().is_empty());

        // FirstN claims each seed once, up to n.
        begin(CaptureFilter::FirstN(2), 16);
        assert!(active());
        assert_eq!(ring_capacity(), 16);
        assert!(wants(10));
        assert!(!wants(10), "a seed is claimed at most once");
        assert!(wants(7));
        assert!(!wants(3), "FirstN stops after n claims");
        submit(transcript(10));
        submit(transcript(7));
        let got = end();
        assert!(!active());
        assert_eq!(
            got.iter().map(|t| t.seed).collect::<Vec<_>>(),
            vec![7, 10],
            "end() returns transcripts sorted by seed"
        );

        // Seeds filter selects by membership, independent of order.
        begin(CaptureFilter::Seeds([4u64, 8].into_iter().collect()), 0);
        assert!(!wants(5));
        assert!(wants(8));
        assert!(wants(4));
        assert!(!wants(8));
        submit(transcript(8));
        submit(transcript(4));
        assert_eq!(end().iter().map(|t| t.seed).collect::<Vec<_>>(), vec![4, 8]);
    }
}
