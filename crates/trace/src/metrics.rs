//! Deterministic per-protocol metrics: integer counters and histograms
//! of rounds, messages, bytes, corruptions, and aborts, keyed by scenario
//! name.
//!
//! Mirrors `fair-simlab`'s integer-tally discipline so the exported
//! summaries are **bit-identical for every `--jobs` value**: estimators
//! accumulate one [`ProtoBatch`] per scheduler tile (one mutex touch per
//! ~64 trials, never per trial) and submit it here; batch merges are
//! commutative integer additions plus sample-multiset unions, and
//! [`drain`] sorts every sample batch before taking order statistics —
//! so no observable output depends on which worker ran which tile.
//!
//! Collection is off by default; the recorded experiment runner enables
//! it around each experiment and drains [`ProtoSummary`] rows into the
//! structured JSON records afterwards.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::event::TraceEvent;
use crate::stats::QuantileSummary;

/// Integer counters for one protocol execution, absorbed from the event
/// stream by a [`crate::RecordingTracer`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rounds executed (from the `End` event).
    pub rounds: u64,
    /// Messages released into the network (broadcasts count once).
    pub msgs: u64,
    /// Total message bytes (debug-render length proxy).
    pub bytes: u64,
    /// Functionality invocations that consumed at least one message.
    pub func_calls: u64,
    /// Corruptions (initial and adaptive).
    pub corruptions: u64,
    /// Honest outputs delivered.
    pub outputs: u64,
    /// Honest outputs that were ⊥ (aborts).
    pub bots: u64,
}

impl ExecStats {
    /// Folds one event into the counters.
    pub fn absorb(&mut self, e: &TraceEvent) {
        match *e {
            TraceEvent::RoundStart { .. } => {}
            TraceEvent::Send { len, .. } => {
                self.msgs += 1;
                self.bytes += len as u64;
            }
            TraceEvent::FuncCall { .. } => self.func_calls += 1,
            TraceEvent::Corrupt { .. } => self.corruptions += 1,
            TraceEvent::Output { bot, .. } => {
                self.outputs += 1;
                if bot {
                    self.bots += 1;
                }
            }
            TraceEvent::End { rounds } => self.rounds = rounds as u64,
        }
    }
}

/// One tile's worth of per-protocol observations — the mergeable unit
/// estimators accumulate locally and submit once per tile.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProtoBatch {
    /// Trials observed.
    pub trials: u64,
    /// Total corruptions across the batch.
    pub corruptions: u64,
    /// Total functionality invocations across the batch.
    pub func_calls: u64,
    /// Trials in which some honest party ended with ⊥.
    pub aborts: u64,
    /// Per-trial round counts.
    pub rounds: Vec<u64>,
    /// Per-trial message counts.
    pub msgs: Vec<u64>,
    /// Per-trial byte totals.
    pub bytes: Vec<u64>,
}

impl ProtoBatch {
    /// Records one finished trial.
    pub fn record(&mut self, s: &ExecStats) {
        self.trials += 1;
        self.corruptions += s.corruptions;
        self.func_calls += s.func_calls;
        if s.bots > 0 {
            self.aborts += 1;
        }
        self.rounds.push(s.rounds);
        self.msgs.push(s.msgs);
        self.bytes.push(s.bytes);
    }

    /// Merges another batch into this one (commutative up to sample
    /// order, which [`drain`] erases by sorting).
    pub fn merge(&mut self, mut other: ProtoBatch) {
        self.trials += other.trials;
        self.corruptions += other.corruptions;
        self.func_calls += other.func_calls;
        self.aborts += other.aborts;
        self.rounds.append(&mut other.rounds);
        self.msgs.append(&mut other.msgs);
        self.bytes.append(&mut other.bytes);
    }
}

/// The drained, exportable summary of one protocol's metrics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoSummary {
    /// Scenario name (the protocol × strategy label).
    pub name: String,
    /// Trials observed.
    pub trials: u64,
    /// Total corruptions.
    pub corruptions: u64,
    /// Total functionality invocations.
    pub func_calls: u64,
    /// Trials in which some honest party ended with ⊥.
    pub aborts: u64,
    /// Distribution of per-trial round counts.
    pub rounds: QuantileSummary,
    /// Distribution of per-trial message counts.
    pub msgs: QuantileSummary,
    /// Distribution of per-trial byte totals.
    pub bytes: QuantileSummary,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static STORE: Mutex<BTreeMap<String, ProtoBatch>> = Mutex::new(BTreeMap::new());

fn store() -> std::sync::MutexGuard<'static, BTreeMap<String, ProtoBatch>> {
    STORE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether per-protocol metrics are being collected.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on/off and clears all accumulated state.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
    store().clear();
}

/// Submits one tile's batch under a scenario name. No-op unless
/// collection is enabled.
pub fn record_batch(name: &str, batch: ProtoBatch) {
    if !enabled() || batch.trials == 0 {
        return;
    }
    let mut guard = store();
    match guard.get_mut(name) {
        Some(acc) => acc.merge(batch),
        None => {
            guard.insert(name.to_string(), batch);
        }
    }
}

/// Drains everything collected so far into per-protocol summaries,
/// sorted by name. The output is a pure function of the recorded trial
/// multiset — identical for every worker count.
pub fn drain() -> Vec<ProtoSummary> {
    summarize(std::mem::take(&mut *store()))
}

/// Summarizes everything collected so far **without draining** — the
/// live export behind `fair-serve`'s `/metrics` endpoint, which must be
/// able to report accumulated per-protocol counters while the server
/// keeps collecting across requests.
pub fn snapshot() -> Vec<ProtoSummary> {
    summarize(store().clone())
}

fn summarize(batches: BTreeMap<String, ProtoBatch>) -> Vec<ProtoSummary> {
    batches
        .into_iter()
        .map(|(name, b)| ProtoSummary {
            name,
            trials: b.trials,
            corruptions: b.corruptions,
            func_calls: b.func_calls,
            aborts: b.aborts,
            rounds: QuantileSummary::from_samples(b.rounds),
            msgs: QuantileSummary::from_samples(b.msgs),
            bytes: QuantileSummary::from_samples(b.bytes),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(rounds: u64, msgs: u64, bytes: u64, bots: u64) -> ExecStats {
        ExecStats {
            rounds,
            msgs,
            bytes,
            func_calls: 1,
            corruptions: 1,
            outputs: 2,
            bots,
        }
    }

    #[test]
    fn disabled_collection_is_a_no_op() {
        set_enabled(false);
        let mut b = ProtoBatch::default();
        b.record(&stats(3, 5, 50, 0));
        record_batch("x", b);
        assert!(drain().is_empty());
    }

    #[test]
    fn merge_order_does_not_change_the_summary() {
        let mut b1 = ProtoBatch::default();
        b1.record(&stats(3, 5, 50, 0));
        b1.record(&stats(9, 2, 20, 1));
        let mut b2 = ProtoBatch::default();
        b2.record(&stats(6, 7, 70, 0));

        set_enabled(true);
        record_batch("pi", b1.clone());
        record_batch("pi", b2.clone());
        let ab = drain();

        set_enabled(true);
        record_batch("pi", b2);
        record_batch("pi", b1);
        let ba = drain();
        set_enabled(false);

        assert_eq!(ab, ba);
        assert_eq!(ab.len(), 1);
        let p = &ab[0];
        assert_eq!(
            (p.trials, p.aborts, p.corruptions, p.func_calls),
            (3, 1, 3, 3)
        );
        assert_eq!((p.rounds.min, p.rounds.max, p.rounds.total), (3, 9, 18));
        assert_eq!(p.msgs.total, 14);
        assert_eq!(p.bytes.total, 140);
    }

    #[test]
    fn snapshot_reports_without_draining() {
        let mut b = ProtoBatch::default();
        b.record(&stats(3, 5, 50, 0));
        set_enabled(true);
        record_batch("pi", b.clone());
        let snap = snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].trials, 1);
        // The store still holds the batch: a later batch accumulates on
        // top of it, and drain sees both.
        record_batch("pi", b);
        let drained = drain();
        assert_eq!(drained[0].trials, 2);
        assert!(snapshot().is_empty());
        set_enabled(false);
    }

    #[test]
    fn absorb_folds_every_event_kind() {
        use crate::event::{Dst, Src};
        let mut s = ExecStats::default();
        s.absorb(&TraceEvent::RoundStart { round: 0 });
        s.absorb(&TraceEvent::Send {
            from: Src::Party(0),
            to: Dst::Func(0),
            len: 4,
        });
        s.absorb(&TraceEvent::FuncCall {
            func: 0,
            round: 0,
            msgs: 1,
        });
        s.absorb(&TraceEvent::Corrupt { party: 1, round: 0 });
        s.absorb(&TraceEvent::Output {
            party: 0,
            bot: true,
        });
        s.absorb(&TraceEvent::End { rounds: 2 });
        assert_eq!(
            s,
            ExecStats {
                rounds: 2,
                msgs: 1,
                bytes: 4,
                func_calls: 1,
                corruptions: 1,
                outputs: 1,
                bots: 1,
            }
        );
    }
}
