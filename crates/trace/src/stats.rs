//! Shared deterministic quantile code.
//!
//! Percentile indices are computed in exact integer arithmetic (basis
//! points over `count − 1`, rounding half up). The float formulation it
//! replaces — `round((count − 1) as f64 * p)` — silently depended on the
//! binary representation of `p`: `0.99` is not exactly representable, so
//! `50 × 0.99` evaluates to `49.499…` and rounds to 49 where the exact
//! value `49.5` rounds to 50. Integer basis points make the index a pure
//! function of `(count, percentile)` with no representation hazard, which
//! is what lets both simlab's latency summaries and the trace histograms
//! claim bit-identical output for any scheduling.

/// Basis points for the median.
pub const P50: u32 = 5_000;
/// Basis points for the 99th percentile.
pub const P99: u32 = 9_900;

/// The index of the `bp`-basis-point order statistic among `count` sorted
/// samples: `round((count − 1) · bp / 10000)`, half rounding up, in exact
/// integer arithmetic. Returns 0 for an empty batch (callers guard).
pub fn percentile_index(count: usize, bp: u32) -> usize {
    debug_assert!(bp <= 10_000, "basis points exceed 100%");
    if count == 0 {
        return 0;
    }
    ((count - 1) * bp as usize + 5_000) / 10_000
}

/// An integer five-number summary (plus total) of a sample batch.
///
/// Built from per-trial integer observations (rounds, messages, bytes);
/// the samples are sorted before the order statistics are taken, so the
/// summary depends only on the sample *multiset* — never on the order
/// tiles were merged in, i.e. never on the worker count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QuantileSummary {
    /// Number of samples.
    pub count: usize,
    /// Sum of all samples.
    pub total: u64,
    /// Smallest sample.
    pub min: u64,
    /// Median (order statistic at [`percentile_index`]`(count, P50)`).
    pub p50: u64,
    /// 99th percentile (order statistic at [`percentile_index`]`(count, P99)`).
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl QuantileSummary {
    /// Summarizes a batch of samples (all-zero summary when empty).
    pub fn from_samples(mut samples: Vec<u64>) -> QuantileSummary {
        if samples.is_empty() {
            return QuantileSummary::default();
        }
        samples.sort_unstable();
        let count = samples.len();
        QuantileSummary {
            count,
            total: samples.iter().sum(),
            min: samples[0],
            p50: samples[percentile_index(count, P50)],
            p99: samples[percentile_index(count, P99)],
            max: samples[count - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_exact_on_the_halfway_case() {
        // 51 samples: (51-1)·0.99 = 49.5 exactly; the float formulation
        // computed 49.499… (0.99 is not representable) and picked 49.
        assert_eq!(percentile_index(51, P99), 50);
        // The pinned legacy cases are unchanged.
        assert_eq!(percentile_index(100, P50), 50);
        assert_eq!(percentile_index(100, P99), 98);
    }

    #[test]
    fn empty_batch_summary_is_all_zero() {
        assert_eq!(percentile_index(0, P50), 0);
        assert_eq!(
            QuantileSummary::from_samples(vec![]),
            QuantileSummary::default()
        );
    }

    #[test]
    fn one_element_batch_is_that_element_everywhere() {
        assert_eq!(percentile_index(1, P50), 0);
        assert_eq!(percentile_index(1, P99), 0);
        let s = QuantileSummary::from_samples(vec![7]);
        assert_eq!((s.count, s.total), (1, 7));
        assert_eq!((s.min, s.p50, s.p99, s.max), (7, 7, 7, 7));
    }

    #[test]
    fn two_element_batch_rounds_the_median_up() {
        // index round(1·0.5) = round(0.5) = 1 (half rounds up).
        assert_eq!(percentile_index(2, P50), 1);
        assert_eq!(percentile_index(2, P99), 1);
        let s = QuantileSummary::from_samples(vec![10, 2]);
        assert_eq!((s.min, s.p50, s.p99, s.max), (2, 10, 10, 10));
        assert_eq!(s.total, 12);
    }

    #[test]
    fn sixty_four_element_batch_matches_order_statistics() {
        // One simlab tile: indices round(63·0.5)=32 (31.5 up), round(63·0.99)=62.
        assert_eq!(percentile_index(64, P50), 32);
        assert_eq!(percentile_index(64, P99), 62);
        // Samples 1..=64 in reversed order: sorting makes value = index+1.
        let s = QuantileSummary::from_samples((1..=64).rev().collect());
        assert_eq!(s.count, 64);
        assert_eq!((s.min, s.p50, s.p99, s.max), (1, 33, 63, 64));
        assert_eq!(s.total, 64 * 65 / 2);
    }

    #[test]
    fn summary_is_order_independent() {
        let a = QuantileSummary::from_samples(vec![5, 1, 9, 1, 3]);
        let b = QuantileSummary::from_samples(vec![1, 1, 3, 5, 9]);
        assert_eq!(a, b);
    }
}
