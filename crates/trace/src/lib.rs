#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `fair-trace` — the observability subsystem of the `fair-protocols`
//! workspace: engine event tracing, per-trial transcript record/replay,
//! and deterministic per-protocol metrics.
//!
//! Every quantitative claim the reproduction checks is measured by running
//! protocols through `fair_runtime`'s engine; this crate opens that black
//! box without compromising the two properties the experiment suite is
//! built on — determinism (bit-identical results for any `--jobs` count)
//! and a zero-cost disabled path. The pieces:
//!
//! * [`tracer`] — the [`Tracer`] trait the engine emits [`TraceEvent`]s
//!   through. The default [`NoopTracer`] sets `ENABLED = false`, a
//!   compile-time constant, so every emission site in the engine folds
//!   away: the untraced engine allocates nothing and pays ~zero overhead.
//! * [`transcript`] — ring-buffered per-trial event transcripts keyed by
//!   the splitmix64 trial seed, with a deterministic text rendering and a
//!   first-divergence diff. Because a trial is a pure function of its
//!   seed, a transcript can be re-derived at any time from
//!   `(experiment, seed)` and byte-compared against a recording —
//!   extending simlab's determinism guarantee from final tallies down to
//!   individual engine events.
//! * [`capture`] — the process-global transcript collector the estimator
//!   consults per trial (one relaxed atomic load when disabled).
//! * [`metrics`] — per-protocol integer counters and histograms (rounds,
//!   messages, bytes, corruptions, aborts) merged commutatively from
//!   per-tile batches, so exported summaries are bit-identical for every
//!   worker count.
//! * [`stats`] — the shared integer-arithmetic quantile code (also used
//!   by `fair-simlab`'s latency summaries).
//!
//! The crate is zero-dependency (std only) and sits below the runtime so
//! every layer of the workspace can use it.

pub mod capture;
pub mod event;
pub mod metrics;
pub mod stats;
pub mod tracer;
pub mod transcript;

pub use event::{debug_len, Dst, Src, TraceEvent};
pub use metrics::{ExecStats, ProtoBatch, ProtoSummary};
pub use stats::{percentile_index, QuantileSummary};
pub use tracer::{NoopTracer, RecordingTracer, Tracer};
pub use transcript::{diff_text, Diff, Transcript};
