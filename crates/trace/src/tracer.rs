//! The [`Tracer`] trait and its two canonical implementations: the
//! statically-dispatched no-op (the engine's default) and the recording
//! tracer that feeds transcripts and metrics.

use std::collections::VecDeque;

use crate::event::TraceEvent;
use crate::metrics::ExecStats;
use crate::transcript::Transcript;

/// A sink for engine events.
///
/// The engine is generic over the tracer and guards every emission site
/// with `if T::ENABLED`, a compile-time constant — with [`NoopTracer`]
/// (the plain `execute` path) all tracing code folds away: no event is
/// constructed, no set is cloned, no message is measured.
pub trait Tracer {
    /// Whether this tracer observes events. `false` turns every emission
    /// site into dead code at monomorphization time.
    const ENABLED: bool = true;

    /// Receives one event.
    fn event(&mut self, e: &TraceEvent);
}

/// The do-nothing tracer behind the plain `execute` path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _: &TraceEvent) {}
}

/// A tracer that aggregates per-execution [`ExecStats`] and (optionally)
/// keeps the most recent events in a bounded ring buffer.
///
/// With ring capacity 0 it is a pure counter — the metrics path. With a
/// positive capacity it retains the last `capacity` events (evicting the
/// oldest and counting them as `dropped`), which bounds transcript memory
/// on runaway executions while keeping the interesting tail.
#[derive(Clone, Debug, Default)]
pub struct RecordingTracer {
    stats: ExecStats,
    capacity: usize,
    dropped: u64,
    ring: VecDeque<TraceEvent>,
}

impl RecordingTracer {
    /// A stats-only tracer (no event retention).
    pub fn new() -> RecordingTracer {
        RecordingTracer::default()
    }

    /// A tracer retaining the last `capacity` events.
    pub fn with_ring(capacity: usize) -> RecordingTracer {
        RecordingTracer {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(1024)),
            ..RecordingTracer::default()
        }
    }

    /// The per-execution counters accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Finalizes into a [`Transcript`] keyed by the trial seed.
    pub fn into_transcript(self, seed: u64) -> Transcript {
        Transcript {
            seed,
            stats: self.stats,
            dropped: self.dropped,
            events: self.ring.into_iter().collect(),
        }
    }
}

impl Tracer for RecordingTracer {
    fn event(&mut self, e: &TraceEvent) {
        self.stats.absorb(e);
        if self.capacity > 0 {
            if self.ring.len() == self.capacity {
                self.ring.pop_front();
                self.dropped += 1;
            }
            self.ring.push_back(*e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dst, Src};

    fn send(len: usize) -> TraceEvent {
        TraceEvent::Send {
            from: Src::Party(0),
            to: Dst::Party(1),
            len,
        }
    }

    #[test]
    fn noop_tracer_is_statically_disabled() {
        // Read through a generic fn so the flags are checked the way the
        // engine reads them (and clippy sees a non-constant assertion).
        fn enabled<T: Tracer>(_: &T) -> bool {
            T::ENABLED
        }
        assert!(!enabled(&NoopTracer));
        assert!(enabled(&RecordingTracer::new()));
    }

    #[test]
    fn recording_tracer_counts_and_rings() {
        let mut t = RecordingTracer::with_ring(2);
        for i in 0..5 {
            t.event(&send(i));
        }
        t.event(&TraceEvent::End { rounds: 3 });
        let stats = t.stats();
        assert_eq!(stats.msgs, 5);
        assert_eq!(stats.bytes, 10); // 0+1+2+3+4
        assert_eq!(stats.rounds, 3);
        let tr = t.into_transcript(0xabcd);
        // Capacity 2: only the last two events survive; four were evicted.
        assert_eq!(tr.events, vec![send(4), TraceEvent::End { rounds: 3 }]);
        assert_eq!(tr.dropped, 4);
        assert_eq!(tr.seed, 0xabcd);
    }

    #[test]
    fn stats_only_tracer_retains_no_events() {
        let mut t = RecordingTracer::new();
        t.event(&send(10));
        let tr = t.into_transcript(1);
        assert!(tr.events.is_empty());
        assert_eq!(tr.dropped, 0);
        assert_eq!(tr.stats.msgs, 1);
    }
}
