//! Per-trial transcripts: the recorded event stream of one engine
//! execution, keyed by its splitmix64 trial seed, with a deterministic
//! text rendering and a first-divergence diff.
//!
//! Because every trial is a pure function of its seed, a transcript is
//! re-derivable at any time: replay runs the same `(experiment, seed)`
//! pair through the engine with a fresh recording tracer and byte-compares
//! the renderings. An empty diff extends simlab's determinism guarantee
//! from final tallies down to individual engine events.

use crate::metrics::ExecStats;
use crate::TraceEvent;

/// The recorded event stream of one trial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transcript {
    /// The splitmix64 trial seed that generated this execution.
    pub seed: u64,
    /// Aggregate counters over the *entire* execution (including events
    /// evicted from the ring).
    pub stats: ExecStats,
    /// Events evicted from the ring buffer (0 when the ring never filled).
    pub dropped: u64,
    /// The retained events, oldest first.
    pub events: Vec<TraceEvent>,
}

impl Transcript {
    /// Renders the transcript as deterministic text: a seed line, a stats
    /// line, a dropped line, then one line per retained event. This is the
    /// byte representation `record`/`replay`/`diff` compare.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("seed 0x{:016x}\n", self.seed));
        let s = &self.stats;
        out.push_str(&format!(
            "stats rounds={} msgs={} bytes={} funcs={} corruptions={} outputs={} bots={}\n",
            s.rounds, s.msgs, s.bytes, s.func_calls, s.corruptions, s.outputs, s.bots
        ));
        out.push_str(&format!("dropped {}\n", self.dropped));
        for e in &self.events {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }
}

/// The first divergence between two texts, as 1-based line coordinates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diff {
    /// 1-based number of the first differing line.
    pub line: usize,
    /// That line on the left side (empty if the left side ended).
    pub left: String,
    /// That line on the right side (empty if the right side ended).
    pub right: String,
}

impl core::fmt::Display for Diff {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "first divergence at line {}", self.line)?;
        writeln!(f, "- {}", self.left)?;
        write!(f, "+ {}", self.right)
    }
}

/// Compares two renderings line by line; `None` means byte-identical.
pub fn diff_text(a: &str, b: &str) -> Option<Diff> {
    if a == b {
        return None;
    }
    let mut left = a.lines();
    let mut right = b.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (left.next(), right.next()) {
            (Some(l), Some(r)) if l == r => continue,
            (l, r) => {
                return Some(Diff {
                    line,
                    left: l.unwrap_or_default().to_string(),
                    right: r.unwrap_or_default().to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dst, Src};

    fn sample() -> Transcript {
        Transcript {
            seed: 0xdead_beef,
            stats: ExecStats {
                rounds: 2,
                msgs: 1,
                bytes: 4,
                func_calls: 0,
                corruptions: 1,
                outputs: 2,
                bots: 1,
            },
            dropped: 0,
            events: vec![
                TraceEvent::Corrupt { party: 1, round: 0 },
                TraceEvent::RoundStart { round: 0 },
                TraceEvent::Send {
                    from: Src::Party(0),
                    to: Dst::Party(1),
                    len: 4,
                },
                TraceEvent::End { rounds: 2 },
            ],
        }
    }

    #[test]
    fn render_is_pinned() {
        assert_eq!(
            sample().render(),
            "seed 0x00000000deadbeef\n\
             stats rounds=2 msgs=1 bytes=4 funcs=0 corruptions=1 outputs=2 bots=1\n\
             dropped 0\n\
             corrupt p1 round=0\n\
             round 0\n\
             send from=p0 to=p1 len=4\n\
             end rounds=2\n"
        );
    }

    #[test]
    fn identical_texts_have_no_diff() {
        let r = sample().render();
        assert_eq!(diff_text(&r, &r), None);
    }

    #[test]
    fn diff_reports_the_first_divergent_line() {
        let a = sample();
        let mut b = sample();
        b.events[2] = TraceEvent::Send {
            from: Src::Party(0),
            to: Dst::Party(1),
            len: 5,
        };
        let d = diff_text(&a.render(), &b.render()).unwrap();
        // Lines 1–3 are the header; events start at line 4.
        assert_eq!(d.line, 6);
        assert_eq!(d.left, "send from=p0 to=p1 len=4");
        assert_eq!(d.right, "send from=p0 to=p1 len=5");
    }

    #[test]
    fn diff_reports_truncation() {
        let a = sample();
        let mut b = sample();
        b.events.pop();
        let d = diff_text(&a.render(), &b.render()).unwrap();
        assert_eq!(d.line, 7);
        assert_eq!(d.left, "end rounds=2");
        assert_eq!(d.right, "");
    }
}
