//! The serving layer's central contract, end-to-end over the real
//! registry: for a fixed `(experiment, params, trials, seed)` the served
//! JSON is **byte-identical** to the batch run's deterministic result
//! document — on the cold path and on the cached path.

use std::sync::Arc;
use std::time::Duration;

use fair_bench::servecli::{rendered_result, run_load, ExperimentBackend, LoadOptions};
use fair_serve::{client, Server, ServerConfig};

fn boot() -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server =
        Server::bind(ServerConfig::default(), Arc::new(ExperimentBackend)).expect("ephemeral bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn stop(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    assert_eq!(
        client::post(addr, "/shutdown").expect("reachable").status,
        200
    );
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn served_bytes_equal_batch_record_bytes_cold_and_cached() {
    let (addr, handle) = boot();
    let (exp, trials, seed) = ("e1", 25, 7u64);

    // The batch side: the result document a `reproduce` run records.
    let (_, record) =
        fair_bench::runner::run_recorded(exp, trials, seed).expect("known experiment");
    let batch = record.result_json().render_pretty() + "\n";
    // Registry determinism: an independent run renders the same bytes.
    assert_eq!(rendered_result(exp, trials, seed).expect("known"), batch);

    let target = format!("/estimate?exp={exp}&trials={trials}&seed={seed}");
    let cold = client::get(addr, &target).expect("cold");
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-cache"), Some("miss"));
    assert_eq!(
        String::from_utf8_lossy(&cold.body),
        batch,
        "cold served bytes == batch record bytes"
    );

    let warm = client::get(addr, &target).expect("warm");
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body, "cached bytes == cold bytes");
    stop(addr, handle);
}

#[test]
fn scenario_derived_experiments_serve_byte_identical_to_batch() {
    // The scenario leg of the registry honors the same contract as the
    // static entries: listed on /experiments, served cold and cached,
    // byte-identical to the batch runner's result document.
    let (addr, handle) = boot();
    let (exp, trials, seed) = ("s_deposit_coin", 25, 7u64);

    let listing = client::get(addr, "/experiments").expect("listing");
    assert_eq!(listing.status, 200);
    assert!(
        String::from_utf8_lossy(&listing.body).contains(exp),
        "scenario id listed on /experiments"
    );

    let (_, record) =
        fair_bench::runner::run_recorded(exp, trials, seed).expect("compiled scenario");
    let batch = record.result_json().render_pretty() + "\n";
    assert_eq!(rendered_result(exp, trials, seed).expect("known"), batch);

    let target = format!("/estimate?exp={exp}&trials={trials}&seed={seed}");
    let cold = client::get(addr, &target).expect("cold");
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-cache"), Some("miss"));
    assert_eq!(
        String::from_utf8_lossy(&cold.body),
        batch,
        "cold served scenario bytes == batch record bytes"
    );

    let warm = client::get(addr, &target).expect("warm");
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body, "cached scenario bytes == cold bytes");
    stop(addr, handle);
}

#[test]
fn load_generator_measures_a_live_server() {
    let (addr, handle) = boot();
    let opts = LoadOptions {
        addr,
        clients: 2,
        points: 3,
        repeat: 2,
        exp: "e1".to_string(),
        trials: 10,
        ..LoadOptions::default()
    };
    let report = run_load(&opts);
    assert_eq!(report.mode, "oneshot");
    assert_eq!(report.errors, 0, "no request failed");
    assert_eq!(report.total_requests, 3 + 2 * 2 * 3);
    assert_eq!(
        report.warm_hits, report.warm_requests,
        "warm phase all cached"
    );
    assert!(report.warm_rps > 0.0);
    assert!(
        report.cold_ns.p50 >= report.warm_ns.p50,
        "cache is not slower"
    );

    // The same point set over persistent pipelined connections: still
    // zero errors, still all cached (the cache was warmed above).
    let persistent = LoadOptions {
        connections: 2,
        pipeline: 3,
        ..opts.clone()
    };
    let report = run_load(&persistent);
    assert_eq!(report.mode, "persistent");
    assert_eq!(report.errors, 0, "no request failed on keep-alive path");
    assert_eq!(
        report.warm_hits, report.warm_requests,
        "persistent warm phase all cached"
    );

    // Open loop at a modest offered rate: every scheduled request is
    // answered, and the achieved rate is positive.
    let openloop = LoadOptions {
        connections: 2,
        rate: 200.0,
        ..opts
    };
    let report = run_load(&openloop);
    assert_eq!(report.mode, "openloop");
    assert_eq!(report.errors, 0, "no request failed in open loop");
    assert!(report.warm_rps > 0.0);
    assert!((report.offered_rps - 200.0).abs() < 1e-9);
    stop(addr, handle);
}

#[test]
fn pipelined_warm_bytes_equal_fresh_connection_bytes() {
    // The pipelining byte-identity contract over the REAL registry: N
    // warm requests pipelined down one keep-alive connection return
    // exactly the bytes N fresh-connection requests return — which are
    // themselves the batch runner's deterministic result documents.
    let (addr, handle) = boot();
    let points: Vec<(usize, u64)> = vec![(20, 1), (20, 2), (25, 3), (20, 1), (25, 3)];
    let targets: Vec<String> = points
        .iter()
        .map(|(trials, seed)| format!("/estimate?exp=e1&trials={trials}&seed={seed}"))
        .collect();

    let fresh: Vec<Vec<u8>> = targets
        .iter()
        .map(|t| {
            let reply = client::get(addr, t).expect("fresh connection");
            assert_eq!(reply.status, 200);
            reply.body
        })
        .collect();

    let mut conn =
        fair_serve::Conn::connect(addr, Duration::from_secs(30)).expect("persistent connect");
    let refs: Vec<&str> = targets.iter().map(String::as_str).collect();
    conn.send_many(&refs).expect("pipelined batch");
    for (i, ((trials, seed), fresh_body)) in points.iter().zip(&fresh).enumerate() {
        let reply = conn.recv().expect("in-order reply");
        assert_eq!(reply.status, 200, "reply {i}");
        assert_eq!(reply.header("x-cache"), Some("hit"), "reply {i} cached");
        assert_eq!(&reply.body, fresh_body, "pipelined bytes, reply {i}");
        let batch = rendered_result("e1", *trials, *seed).expect("known");
        assert_eq!(
            String::from_utf8_lossy(&reply.body),
            batch,
            "pipelined bytes == batch record bytes, reply {i}"
        );
    }
    stop(addr, handle);
}

#[test]
fn overloaded_live_server_sheds_load_within_bounds() {
    // Tiny pool + nontrivial estimations: concurrent distinct points must
    // yield some 429s, every connection answered promptly.
    let config = ServerConfig {
        workers: 1,
        queue_cap: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind(config, Arc::new(ExperimentBackend)).expect("ephemeral bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());

    let replies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..10)
            .map(|i| {
                scope.spawn(move || {
                    let target = format!("/estimate?exp=e2&trials=800&seed={i}");
                    let t0 = std::time::Instant::now();
                    let reply = client::get(addr, &target).expect("answered");
                    (reply, t0.elapsed())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    let ok = replies.iter().filter(|(r, _)| r.status == 200).count();
    let rejected = replies.iter().filter(|(r, _)| r.status == 429).count();
    assert_eq!(
        ok + rejected,
        replies.len(),
        "only 200 or 429 under overload"
    );
    assert!(rejected >= 1, "the bounded queue shed load");
    // Rejections are bounded: answered fast, not after the queue drains.
    for (reply, elapsed) in &replies {
        if reply.status == 429 {
            assert!(
                *elapsed < Duration::from_secs(5),
                "429 answered within bounds, took {elapsed:?}"
            );
        }
    }
    stop(addr, handle);
}
