//! The serving layer's central contract, end-to-end over the real
//! registry: for a fixed `(experiment, params, trials, seed)` the served
//! JSON is **byte-identical** to the batch run's deterministic result
//! document — on the cold path and on the cached path.

use std::sync::Arc;
use std::time::Duration;

use fair_bench::servecli::{rendered_result, run_load, ExperimentBackend, LoadOptions};
use fair_serve::{client, Server, ServerConfig};

fn boot() -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server =
        Server::bind(ServerConfig::default(), Arc::new(ExperimentBackend)).expect("ephemeral bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn stop(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    assert_eq!(
        client::post(addr, "/shutdown").expect("reachable").status,
        200
    );
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn served_bytes_equal_batch_record_bytes_cold_and_cached() {
    let (addr, handle) = boot();
    let (exp, trials, seed) = ("e1", 25, 7u64);

    // The batch side: the result document a `reproduce` run records.
    let (_, record) =
        fair_bench::runner::run_recorded(exp, trials, seed).expect("known experiment");
    let batch = record.result_json().render_pretty() + "\n";
    // Registry determinism: an independent run renders the same bytes.
    assert_eq!(rendered_result(exp, trials, seed).expect("known"), batch);

    let target = format!("/estimate?exp={exp}&trials={trials}&seed={seed}");
    let cold = client::get(addr, &target).expect("cold");
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-cache"), Some("miss"));
    assert_eq!(
        String::from_utf8_lossy(&cold.body),
        batch,
        "cold served bytes == batch record bytes"
    );

    let warm = client::get(addr, &target).expect("warm");
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body, "cached bytes == cold bytes");
    stop(addr, handle);
}

#[test]
fn load_generator_measures_a_live_server() {
    let (addr, handle) = boot();
    let opts = LoadOptions {
        addr,
        clients: 2,
        points: 3,
        repeat: 2,
        exp: "e1".to_string(),
        trials: 10,
    };
    let report = run_load(&opts);
    assert_eq!(report.errors, 0, "no request failed");
    assert_eq!(report.total_requests, 3 + 2 * 2 * 3);
    assert_eq!(
        report.warm_hits, report.warm_requests,
        "warm phase all cached"
    );
    assert!(report.warm_rps > 0.0);
    assert!(
        report.cold_ns.p50 >= report.warm_ns.p50,
        "cache is not slower"
    );
    stop(addr, handle);
}

#[test]
fn overloaded_live_server_sheds_load_within_bounds() {
    // Tiny pool + nontrivial estimations: concurrent distinct points must
    // yield some 429s, every connection answered promptly.
    let config = ServerConfig {
        workers: 1,
        queue_cap: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind(config, Arc::new(ExperimentBackend)).expect("ephemeral bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());

    let replies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..10)
            .map(|i| {
                scope.spawn(move || {
                    let target = format!("/estimate?exp=e2&trials=800&seed={i}");
                    let t0 = std::time::Instant::now();
                    let reply = client::get(addr, &target).expect("answered");
                    (reply, t0.elapsed())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    let ok = replies.iter().filter(|(r, _)| r.status == 200).count();
    let rejected = replies.iter().filter(|(r, _)| r.status == 429).count();
    assert_eq!(
        ok + rejected,
        replies.len(),
        "only 200 or 429 under overload"
    );
    assert!(rejected >= 1, "the bounded queue shed load");
    // Rejections are bounded: answered fast, not after the queue drains.
    for (reply, elapsed) in &replies {
        if reply.status == 429 {
            assert!(
                *elapsed < Duration::from_secs(5),
                "429 answered within bounds, took {elapsed:?}"
            );
        }
    }
    stop(addr, handle);
}
