//! The tracing no-op guard (ISSUE satellite): threading a `Tracer`
//! through `runtime::engine` must never change an execution's outcome.
//! For the two canonical record/replay targets — the Blum coin toss and a
//! small Gordon–Katz AND instance — the plain `execute` entry point, an
//! explicit `NoopTracer`, and a full `RecordingTracer` must produce
//! byte-identical `ExecutionResult`s across many seeds.

use std::sync::Arc;

use fair_protocols::coin_toss::coin_toss_instance;
use fair_protocols::gordon_katz::{gk_instance, AbortRule, GkAttack, GkConfig, ValueSampler};
use fair_protocols::opt2::TwoPartyFn;
use fair_runtime::{execute, execute_traced, Passive, Value};
use fair_trace::{NoopTracer, RecordingTracer};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn gk_config() -> GkConfig {
    let bit: ValueSampler = Arc::new(|rng: &mut StdRng| Value::Scalar(rng.random_range(0..2)));
    let and_fn: TwoPartyFn = Arc::new(|a: &Value, b: &Value| {
        Value::Scalar((a.as_scalar().unwrap_or(0) & 1) & (b.as_scalar().unwrap_or(0) & 1))
    });
    GkConfig::poly_domain(and_fn, 2, 2, Arc::clone(&bit), bit)
}

/// Runs one trial three ways from the same seed and returns the three
/// debug renderings of the results (the strongest equality available:
/// outputs, abort flags, and rounds used all land in `Debug`).
fn three_ways<M, F>(seed: u64, build: F) -> [String; 3]
where
    M: Clone + std::fmt::Debug,
    F: Fn(&mut StdRng) -> (fair_runtime::Instance<M>, usize),
{
    let run_plain = || {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, max_rounds) = build(&mut rng);
        execute(inst, &mut Passive, &mut rng, max_rounds).expect("plain execution succeeds")
    };
    let run_noop = || {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, max_rounds) = build(&mut rng);
        execute_traced(inst, &mut Passive, &mut rng, max_rounds, &mut NoopTracer)
            .expect("no-op traced execution succeeds")
    };
    let run_recording = || {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, max_rounds) = build(&mut rng);
        let mut tracer = RecordingTracer::new();
        let result = execute_traced(inst, &mut Passive, &mut rng, max_rounds, &mut tracer)
            .expect("recording traced execution succeeds");
        assert!(tracer.stats().rounds > 0, "recording saw the execution");
        result
    };
    [
        format!("{:?}", run_plain()),
        format!("{:?}", run_noop()),
        format!("{:?}", run_recording()),
    ]
}

#[test]
fn coin_toss_outcomes_are_tracer_independent() {
    for seed in 0..32u64 {
        let [plain, noop, recording] = three_ways(seed, |rng| (coin_toss_instance(rng), 10));
        assert_eq!(plain, noop, "seed {seed}: NoopTracer changed the outcome");
        assert_eq!(
            plain, recording,
            "seed {seed}: RecordingTracer changed the outcome"
        );
    }
}

#[test]
fn gordon_katz_outcomes_are_tracer_independent() {
    let cfg = gk_config();
    let max_rounds = 3 * cfg.m + 20;
    for seed in 0..16u64 {
        let [plain, noop, recording] = three_ways(seed, |rng| {
            let x1 = Value::Scalar(rng.random_range(0..2));
            let x2 = Value::Scalar(rng.random_range(0..2));
            (gk_instance("gk", cfg.clone(), [x1, x2]), max_rounds)
        });
        assert_eq!(plain, noop, "seed {seed}: NoopTracer changed the outcome");
        assert_eq!(
            plain, recording,
            "seed {seed}: RecordingTracer changed the outcome"
        );
    }
}

/// Adversarial executions too: the Gordon–Katz abort attack exercises the
/// corruption and abort emission sites, which must also be observe-only.
#[test]
fn adversarial_gordon_katz_outcomes_are_tracer_independent() {
    let cfg = gk_config();
    let max_rounds = 3 * cfg.m + 20;
    for seed in 0..16u64 {
        let build = |rng: &mut StdRng| {
            let x1 = Value::Scalar(rng.random_range(0..2));
            let x2 = Value::Scalar(rng.random_range(0..2));
            (gk_instance("gk", cfg.clone(), [x1, x2]), max_rounds)
        };
        let plain = {
            let mut rng = StdRng::seed_from_u64(seed);
            let (inst, mr) = build(&mut rng);
            let mut adv = GkAttack::new(AbortRule::AtRound(1));
            format!(
                "{:?}",
                execute(inst, &mut adv, &mut rng, mr).expect("plain execution succeeds")
            )
        };
        let traced = {
            let mut rng = StdRng::seed_from_u64(seed);
            let (inst, mr) = build(&mut rng);
            let mut adv = GkAttack::new(AbortRule::AtRound(1));
            let mut tracer = RecordingTracer::new();
            format!(
                "{:?}",
                execute_traced(inst, &mut adv, &mut rng, mr, &mut tracer)
                    .expect("traced execution succeeds")
            )
        };
        assert_eq!(
            plain, traced,
            "seed {seed}: tracing changed the attack outcome"
        );
    }
}
