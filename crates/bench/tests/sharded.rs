//! Cross-loop invariants of the sharded serving core, end-to-end over the
//! real experiment registry: the loop count is a pure throughput knob.
//! Whatever `--loops` is set to, the same `(exp, trials, seed)` point
//! serves the same bytes — equal to the batch runner's deterministic
//! result document — cold, warm, and pipelined; and a pipelined batch
//! that ends in a `/stream` detach still answers strictly in order.

use std::sync::Arc;
use std::time::Duration;

use fair_bench::servecli::{rendered_result, ExperimentBackend};
use fair_serve::{client, Server, ServerConfig};
use fair_simlab::json::{self, Json};

fn boot(
    loops: usize,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let config = ServerConfig {
        loops,
        ..ServerConfig::default()
    };
    let server = Server::bind(config, Arc::new(ExperimentBackend)).expect("ephemeral bind");
    assert_eq!(server.loops(), loops.max(1));
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn stop(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    assert_eq!(
        client::post(addr, "/shutdown").expect("reachable").status,
        200
    );
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn served_bytes_identical_across_loop_counts_and_to_batch() {
    // Each point's reference bytes come from the batch runner; every
    // sharded configuration must serve exactly them, cold and warm.
    let points: Vec<(usize, u64)> = vec![(20, 1), (25, 2), (30, 3)];
    let batch: Vec<String> = points
        .iter()
        .map(|(trials, seed)| rendered_result("e1", *trials, *seed).expect("known experiment"))
        .collect();

    let mut served: Vec<Vec<Vec<u8>>> = Vec::new();
    for loops in [1usize, 2, 4] {
        let (addr, handle) = boot(loops);
        let mut bodies = Vec::new();
        for ((trials, seed), reference) in points.iter().zip(&batch) {
            let target = format!("/estimate?exp=e1&trials={trials}&seed={seed}");
            // Fresh connections: under reuseport sharding each may land
            // on a different loop — the bytes must not care.
            let cold = client::get(addr, &target).expect("cold");
            assert_eq!(cold.status, 200, "loops={loops} {target}");
            assert_eq!(
                String::from_utf8_lossy(&cold.body),
                *reference,
                "loops={loops}: cold bytes == batch bytes for {target}"
            );
            let warm = client::get(addr, &target).expect("warm");
            assert_eq!(warm.status, 200);
            assert_eq!(
                warm.body, cold.body,
                "loops={loops}: warm bytes == cold bytes for {target}"
            );
            bodies.push(cold.body);
        }
        // The /metrics snapshot aggregates every loop's counters and
        // reports the loop count itself.
        let metrics = client::get(addr, "/metrics").expect("metrics");
        let doc = json::parse(&metrics.text()).expect("metrics JSON");
        assert_eq!(
            json::get(&doc, "loops"),
            Some(&Json::Num(loops as f64)),
            "metrics reports the loop count"
        );
        stop(addr, handle);
        served.push(bodies);
    }

    for bodies in &served[1..] {
        assert_eq!(
            bodies, &served[0],
            "served bytes are identical across loop counts"
        );
    }
}

#[test]
fn pipelined_batch_ending_in_stream_detach_stays_in_order_when_sharded() {
    let (addr, handle) = boot(2);
    let points: Vec<(usize, u64)> = vec![(20, 4), (25, 5), (20, 6)];
    let mut targets: Vec<String> = points
        .iter()
        .map(|(trials, seed)| format!("/estimate?exp=e1&trials={trials}&seed={seed}"))
        .collect();
    targets.push("/stream?exp=e1&trials=20&seed=4".to_string());

    let mut conn = fair_serve::Conn::connect(addr, Duration::from_secs(30)).expect("connect");
    let refs: Vec<&str> = targets.iter().map(String::as_str).collect();
    conn.send_many(&refs).expect("pipelined batch");

    // The estimate replies come back strictly in order — each body is the
    // batch document for *its* point, so any reordering would mismatch.
    for (i, (trials, seed)) in points.iter().enumerate() {
        let reply = conn.recv().expect("in-order reply");
        assert_eq!(reply.status, 200, "reply {i}");
        let reference = rendered_result("e1", *trials, *seed).expect("known");
        assert_eq!(
            String::from_utf8_lossy(&reply.body),
            reference,
            "pipelined reply {i} is the batch document for its own point"
        );
    }

    // The stream is last: the loop flushes the queued replies, then
    // detaches the socket to a worker that streams chunked frames and a
    // final result document.
    let stream = conn.recv_chunked().expect("streamed tail reply");
    assert_eq!(stream.status, 200);
    assert_eq!(
        stream
            .header("transfer-encoding")
            .map(str::to_ascii_lowercase),
        Some("chunked".to_string())
    );
    let text = stream.text();
    let first_frame = text.lines().next().expect("at least one frame");
    let frame = json::parse(first_frame).expect("frame is JSON");
    assert!(
        json::get(&frame, "trials").is_some(),
        "progress frame carries a trial count: {first_frame}"
    );
    assert!(
        text.contains("\"adaptive\"") && text.contains("\"result\""),
        "stream ends with the final result document"
    );
    stop(addr, handle);
}
