//! End-to-end transcript replay (ISSUE satellite, next to
//! `determinism.rs`): recorded `(target, seed)` pairs must replay to
//! byte-identical transcripts, and — because trial seeds are pure
//! functions of the trial index — the replay must not care how many
//! worker threads re-execute the run.

use fair_bench::runner::BASE_SEED;
use fair_bench::tracecli::{record, replay_file, trace_files};
use fair_simlab::with_jobs;

/// One test function on purpose: `fair_trace::capture` is process-global,
/// and the harness runs `#[test]` functions of one binary concurrently.
#[test]
fn recorded_transcripts_replay_identically_under_any_job_count() {
    let dir = std::env::temp_dir().join(format!("fair-trace-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Ten (target, seed) pairs across both protocol targets; the trial
    // counts span several scheduler tiles.
    let mut recorded = record("exp_coin_toss", 70, 6, BASE_SEED, &dir).expect("record coin toss");
    recorded.extend(record("exp_gordon_katz", 40, 4, BASE_SEED, &dir).expect("record gordon katz"));
    assert_eq!(recorded.len(), 10, "ten sampled (target, seed) pairs");

    let listed = trace_files(&dir, None).expect("list trace files");
    assert_eq!(listed.len(), 10);

    for path in &recorded {
        for jobs in [1usize, 4] {
            let diff = with_jobs(jobs, || replay_file(path).expect("replay runs"));
            assert!(
                diff.is_none(),
                "{} diverged under jobs={jobs}:\n{}",
                path.display(),
                diff.expect("diff present")
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
