//! Restart persistence, end to end: a `fair-serve` instance with a tile
//! directory computes a point, a *new* instance on the same directory
//! serves the same point warm from disk — byte-identical — and the
//! `/metrics` tile counters expose exactly which tiles were reused.
//!
//! Own binary on purpose: `ServerConfig::tiles_dir` installs the
//! process-global tile store, which must not leak into the other serve
//! integration suites.

use std::sync::{Arc, Mutex, MutexGuard};

use fair_bench::servecli::{rendered_result, ExperimentBackend};
use fair_serve::{client, Server, ServerConfig};
use fair_simlab::json::{self, Json};

/// Both tests install process-global tile stores; serialize them.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fair-tiles-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(
    dir: &std::path::Path,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let config = ServerConfig {
        tiles_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    };
    let server = Server::bind(config, Arc::new(ExperimentBackend)).expect("ephemeral bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn stop(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    assert_eq!(
        client::post(addr, "/shutdown").expect("reachable").status,
        200
    );
    handle.join().expect("server thread").expect("clean exit");
}

/// The `tiles` block of `/metrics`, parsed.
fn tile_counter(addr: std::net::SocketAddr, key: &str) -> f64 {
    let metrics = client::get(addr, "/metrics").expect("metrics reachable");
    assert_eq!(metrics.status, 200);
    let doc = json::parse(&String::from_utf8_lossy(&metrics.body)).expect("metrics is JSON");
    let tiles = json::get(&doc, "tiles").expect("tiles block present");
    match json::get(tiles, key) {
        Some(Json::Num(n)) => *n,
        other => panic!("tiles.{key} missing or non-numeric: {other:?}"),
    }
}

#[test]
fn restarted_server_serves_warm_from_disk_byte_identical() {
    let _guard = lock();
    let dir = temp_dir("restart");
    let (exp, seed) = ("e2", 11u64);

    // Batch baselines with no store installed: what `reproduce` records.
    fair_tiles::cache::uninstall();
    let batch_640 = rendered_result(exp, 640, seed).expect("e2 exists");
    let batch_2000 = rendered_result(exp, 2000, seed).expect("e2 exists");

    // First server: cold 640, then grow the same point to 2000 — only
    // the missing tail tiles are computed.
    let (addr, handle) = boot(&dir);
    let t640 = format!("/estimate?exp={exp}&trials=640&seed={seed}");
    let t2000 = format!("/estimate?exp={exp}&trials=2000&seed={seed}");

    let cold = client::get(addr, &t640).expect("cold 640");
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-cache"), Some("miss"));
    assert_eq!(String::from_utf8_lossy(&cold.body), batch_640);

    let grown = client::get(addr, &t2000).expect("grown 2000");
    assert_eq!(
        grown.header("x-cache"),
        Some("miss"),
        "a bigger budget is a different result-cache point"
    );
    assert_eq!(String::from_utf8_lossy(&grown.body), batch_2000);

    // Per estimate stream: 640 = 10 full tiles (all cold), 2000 looks up
    // 31 and finds the first 10 — so hits:misses is 10:31 regardless of
    // how many streams the experiment runs.
    let hits = tile_counter(addr, "hits");
    let misses = tile_counter(addr, "misses");
    assert!(hits > 0.0, "the grown request reused tiles");
    assert!(
        (hits * 31.0 - misses * 10.0).abs() < 0.5,
        "640→2000 computes only tiles 10..31 per stream (hits={hits}, misses={misses})"
    );
    stop(addr, handle);

    // Second server, same directory: the result cache is per-process
    // (miss), but every full tile comes back from disk — the body is
    // byte-identical to the pre-restart response.
    let (addr, handle) = boot(&dir);
    assert!(
        tile_counter(addr, "loaded_records") > 0.0,
        "restart warmed the store from disk"
    );
    let warm = client::get(addr, &t2000).expect("warm 2000");
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-cache"), Some("miss"));
    assert_eq!(
        warm.body, grown.body,
        "disk-warm restart serves byte-identical results"
    );
    assert_eq!(
        tile_counter(addr, "misses"),
        0.0,
        "the restarted server recomputed no full tile"
    );
    assert!(tile_counter(addr, "hits") > 0.0);
    stop(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_endpoint_emits_frames_and_warms_the_shared_store() {
    let _guard = lock();
    let dir = temp_dir("stream");
    let (addr, handle) = boot(&dir);

    // A huge budget with a loose epsilon: the adaptive stopper must quit
    // early, and the wrapper must say so.
    let reply = client::get(addr, "/stream?exp=e2&trials=10000&seed=3&epsilon=0.2")
        .expect("stream reachable");
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("transfer-encoding"), Some("chunked"));
    let text = reply.text();
    assert!(
        text.contains("\"done\":true"),
        "final frame present: {text}"
    );

    // The body is NDJSON frames (compact, one per line) followed by the
    // pretty-printed wrapper document, whose first line is a lone `{`.
    let mut frames = Vec::new();
    let mut wrapper = String::new();
    for line in text.lines() {
        if !wrapper.is_empty() || line == "{" {
            wrapper.push_str(line);
            wrapper.push('\n');
        } else {
            frames.push(line);
        }
    }
    assert!(!frames.is_empty(), "at least one progress frame streamed");
    for line in &frames {
        let frame = json::parse(line).expect("frame is JSON");
        for key in ["scenario", "requested", "trials", "mean", "ci", "done"] {
            assert!(json::get(&frame, key).is_some(), "frame has {key}: {line}");
        }
    }

    let doc = json::parse(&wrapper).expect("wrapper is JSON");
    let adaptive = json::get(&doc, "adaptive").expect("adaptive block");
    let used = match json::get(adaptive, "trials_used") {
        Some(Json::Num(n)) => *n,
        other => panic!("trials_used missing: {other:?}"),
    };
    let requested = match json::get(adaptive, "trials_requested") {
        Some(Json::Num(n)) => *n,
        other => panic!("trials_requested missing: {other:?}"),
    };
    assert!(
        used < requested,
        "epsilon=0.2 stops well before 10000 trials (used {used} of {requested})"
    );
    assert!(
        json::get(&doc, "result").is_some(),
        "wrapper carries the result"
    );

    // Streaming shares the tile store: the run minted tiles, and the
    // early-stop counter ticked.
    assert!(tile_counter(addr, "inserts") > 0.0);
    let metrics = client::get(addr, "/metrics").expect("metrics");
    let mdoc = json::parse(&String::from_utf8_lossy(&metrics.body)).expect("metrics JSON");
    let server_block = json::get(&mdoc, "server").expect("server block");
    assert_eq!(
        json::get(server_block, "streams"),
        Some(&Json::Num(1.0)),
        "one stream served"
    );
    assert_eq!(
        json::get(server_block, "stream_early_stops"),
        Some(&Json::Num(1.0)),
        "it stopped early"
    );
    stop(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}
