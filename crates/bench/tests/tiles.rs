//! Tile-store integration over the real registry: growing the trial
//! budget for a fixed `(exp, seed)` must reuse every full 64-trial tile
//! already computed and still render **byte-identical** result documents
//! — for any worker count, across flush/reload cycles, and after on-disk
//! corruption.
//!
//! These tests live in their own binary: the tile cache is process-global
//! (`fair_tiles::cache::install`), and a store left installed would
//! perturb the other serve/bench integration suites.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use fair_bench::servecli::rendered_result;

/// All tests mutate the process-global store and the jobs knob; serialize
/// them.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fair-tiles-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const PREFIXES: [usize; 3] = [64, 640, 2000];

#[test]
fn merged_tile_results_are_byte_identical_to_fresh_runs() {
    let _guard = lock();
    let (exp, seed) = ("e2", 0x7eedu64);

    // Fresh baselines: no store installed, every run computes everything.
    fair_tiles::cache::uninstall();
    let mut fresh = BTreeMap::new();
    for trials in PREFIXES {
        fresh.insert(
            trials,
            rendered_result(exp, trials, seed).expect("e2 exists"),
        );
    }

    for jobs in [1usize, 4] {
        fair_simlab::set_jobs(jobs);
        let store = Arc::new(fair_tiles::Store::in_memory());
        fair_tiles::cache::install(Arc::clone(&store));
        for trials in PREFIXES {
            let body = rendered_result(exp, trials, seed).expect("e2 exists");
            assert_eq!(
                &body,
                fresh.get(&trials).expect("baseline"),
                "trials={trials} jobs={jobs}: cached-tile bytes == fresh bytes"
            );
        }
        fair_tiles::cache::uninstall();

        // Per estimate stream: 64 trials = 1 full tile (1 miss), 640 adds
        // 9 (1 hit), 2000 adds 21 more plus a partial tail that is never
        // cached (10 hits, 21 misses) — so hits:misses is 11:31 whatever
        // the number of streams, and every miss became an insert.
        let stats = store.stats();
        assert!(stats.hits > 0, "jobs={jobs}: growing budgets reused tiles");
        assert_eq!(
            stats.hits * 31,
            stats.misses * 11,
            "jobs={jobs}: per-stream lookup pattern is 11 hits / 31 misses"
        );
        assert_eq!(stats.inserts, stats.misses, "every miss was recorded");
    }
    fair_simlab::set_jobs(1);
}

#[test]
fn tile_files_survive_reload_and_tolerate_corruption() {
    let _guard = lock();
    let (exp, trials, seed) = ("e2", 640usize, 0x51eeu64);
    let dir = temp_dir("recovery");
    fair_tiles::cache::uninstall();
    let fresh = rendered_result(exp, trials, seed).expect("e2 exists");

    // First process: compute with a persistent store, flush to disk.
    let store = Arc::new(fair_tiles::Store::persistent(&dir));
    fair_tiles::cache::install(Arc::clone(&store));
    assert_eq!(
        rendered_result(exp, trials, seed).expect("e2 exists"),
        fresh
    );
    assert!(
        store.flush().expect("flush succeeds") > 0,
        "dirty groups were flushed"
    );
    fair_tiles::cache::uninstall();

    // Second process (simulated): warm from disk; the rerun recomputes no
    // full tile and renders the same bytes.
    let store = Arc::new(fair_tiles::Store::persistent(&dir));
    let loaded = store.load();
    assert!(loaded.loaded_records > 0, "tiles came back from disk");
    assert_eq!(loaded.skipped_records, 0, "clean files load fully");
    fair_tiles::cache::install(Arc::clone(&store));
    assert_eq!(
        rendered_result(exp, trials, seed).expect("e2 exists"),
        fresh
    );
    let stats = store.stats();
    assert!(stats.hits > 0, "disk-warm run hit the cache");
    assert_eq!(stats.misses, 0, "disk-warm run recomputed no full tile");
    fair_tiles::cache::uninstall();

    // Flip a byte in the middle of every tile file: the damaged records
    // are skipped (not fatal), the survivors still serve, and the rerun
    // recomputes only what was lost — bytes identical throughout.
    let mut corrupted = 0usize;
    for entry in std::fs::read_dir(&dir).expect("tile dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "tiles") {
            let mut bytes = std::fs::read(&path).expect("readable");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(&path, &bytes).expect("writable");
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "flush produced at least one .tiles file");
    let store = Arc::new(fair_tiles::Store::persistent(&dir));
    let loaded = store.load();
    assert!(
        loaded.skipped_records > 0,
        "corruption was detected and skipped"
    );
    fair_tiles::cache::install(Arc::clone(&store));
    assert_eq!(
        rendered_result(exp, trials, seed).expect("e2 exists"),
        fresh,
        "post-corruption rerun still renders the fresh bytes"
    );
    fair_tiles::cache::uninstall();
    let _ = std::fs::remove_dir_all(&dir);
}
