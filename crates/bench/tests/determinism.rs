//! Cross-cutting determinism guarantees of the simlab rewiring: the same
//! `(id, trials, seed)` always produces identical report rows, and the
//! tallies are bit-identical for every `--jobs` value (the acceptance
//! criterion of the parallel scheduler).

use fair_core::{estimate, Payoff};
use fair_protocols::scenarios::contract_sweep;
use fair_simlab::with_jobs;
use proptest::prelude::*;

#[test]
fn same_inputs_give_identical_reports() {
    for id in ["e1", "e4", "e13"] {
        let a = fair_bench::run_experiment(id, 60, 0xfa1e).expect("known id");
        let b = fair_bench::run_experiment(id, 60, 0xfa1e).expect("known id");
        assert_eq!(a, b, "{id} not deterministic");
    }
}

#[test]
fn reports_are_bit_identical_across_job_counts() {
    let baseline = with_jobs(1, || fair_bench::run_experiment("e1", 150, 7).expect("e1"));
    for jobs in [4usize, 8] {
        let run = with_jobs(jobs, || {
            fair_bench::run_experiment("e1", 150, 7).expect("e1")
        });
        assert_eq!(run, baseline, "jobs {jobs} diverged from jobs 1");
    }
}

#[test]
fn acceptance_is_bit_identical_across_job_counts() {
    let experiment = |s: u64| s.wrapping_mul(0x9e37_79b9_7f4a_7c15).is_multiple_of(3);
    let a1 = with_jobs(1, || fair_core::partial::acceptance(experiment, 500, 3));
    for jobs in [4usize, 8] {
        let aj = with_jobs(jobs, || fair_core::partial::acceptance(experiment, 500, 3));
        assert_eq!(aj.rate.to_bits(), a1.rate.to_bits(), "jobs {jobs}");
        assert_eq!(aj.ci.to_bits(), a1.ci.to_bits(), "jobs {jobs}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole invariant, property-tested: for arbitrary trial counts
    /// (spanning partial/multiple tiles) and seeds, the estimator's tallies
    /// at jobs = 4 equal the jobs = 1 tallies bit-for-bit.
    #[test]
    fn estimate_tallies_match_across_jobs(trials in 1usize..200, seed in 0u64..1_000_000) {
        let scenarios = contract_sweep(false);
        let payoff = Payoff::standard();
        let seq = with_jobs(1, || estimate(&scenarios[0], &payoff, trials, seed));
        let par = with_jobs(4, || estimate(&scenarios[0], &payoff, trials, seed));
        prop_assert_eq!(seq.event_counts, par.event_counts);
        prop_assert_eq!(seq.mean.to_bits(), par.mean.to_bits());
        prop_assert_eq!(seq.ci.to_bits(), par.ci.to_bits());
        prop_assert_eq!(seq.trials, par.trials);
    }
}
