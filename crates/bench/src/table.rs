//! Experiment report tables: paper value vs. measured value.

/// One row of an experiment table.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// What the row measures.
    pub label: String,
    /// The paper's closed-form value (`None` for qualitative rows).
    pub paper: Option<f64>,
    /// The measured value.
    pub measured: f64,
    /// 95% confidence half-width of the measurement.
    pub ci: f64,
    /// Whether the row reproduces the paper's claim.
    pub pass: bool,
}

impl Row {
    /// A row compared against a paper value within `tol + ci`.
    pub fn vs_paper(label: impl Into<String>, paper: f64, measured: f64, ci: f64, tol: f64) -> Row {
        Row {
            label: label.into(),
            paper: Some(paper),
            measured,
            ci,
            pass: (measured - paper).abs() <= ci + tol,
        }
    }

    /// A row that must only stay below a paper upper bound.
    pub fn upper_bound(
        label: impl Into<String>,
        bound: f64,
        measured: f64,
        ci: f64,
        tol: f64,
    ) -> Row {
        Row {
            label: label.into(),
            paper: Some(bound),
            measured,
            ci,
            pass: measured <= bound + ci + tol,
        }
    }

    /// A qualitative row with an explicit verdict.
    pub fn check(label: impl Into<String>, measured: f64, pass: bool) -> Row {
        Row {
            label: label.into(),
            paper: None,
            measured,
            ci: 0.0,
            pass,
        }
    }
}

/// A complete experiment report.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Experiment id (e.g. "E2").
    pub id: String,
    /// The paper claim being reproduced.
    pub title: String,
    /// The measurement rows.
    pub rows: Vec<Row>,
}

impl Report {
    /// Creates a report.
    pub fn new(id: &str, title: &str, rows: Vec<Row>) -> Report {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            rows,
        }
    }

    /// Whether every row reproduced its claim.
    pub fn pass(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }

    /// Renders the report as a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}: {}\n\n", self.id, self.title));
        out.push_str("| quantity | paper | measured | ±95% | ok |\n");
        out.push_str("|---|---|---|---|---|\n");
        for r in &self.rows {
            let paper = r
                .paper
                .map(|p| format!("{p:.4}"))
                .unwrap_or_else(|| "—".to_string());
            out.push_str(&format!(
                "| {} | {} | {:.4} | {:.4} | {} |\n",
                r.label.replace('|', "\\|"),
                paper,
                r.measured,
                r.ci,
                if r.pass { "✓" } else { "✗" }
            ));
        }
        out.push('\n');
        out
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        let w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(10)
            .max(10);
        out.push_str(&format!(
            "{:<w$}  {:>10}  {:>10}  {:>8}  {}\n",
            "quantity",
            "paper",
            "measured",
            "±95%",
            "ok",
            w = w
        ));
        for r in &self.rows {
            let paper = r
                .paper
                .map(|p| format!("{p:.4}"))
                .unwrap_or_else(|| "—".to_string());
            out.push_str(&format!(
                "{:<w$}  {:>10}  {:>10.4}  {:>8.4}  {}\n",
                r.label,
                paper,
                r.measured,
                r.ci,
                if r.pass { "✓" } else { "✗ FAIL" },
                w = w
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vs_paper_passes_within_tolerance() {
        assert!(Row::vs_paper("x", 0.75, 0.751, 0.002, 0.0).pass);
        assert!(!Row::vs_paper("x", 0.75, 0.80, 0.002, 0.0).pass);
        assert!(Row::vs_paper("x", 0.75, 0.80, 0.002, 0.06).pass);
    }

    #[test]
    fn upper_bound_only_fails_upward() {
        assert!(Row::upper_bound("x", 0.5, 0.1, 0.0, 0.0).pass);
        assert!(Row::upper_bound("x", 0.5, 0.5, 0.0, 0.0).pass);
        assert!(!Row::upper_bound("x", 0.5, 0.6, 0.0, 0.01).pass);
    }

    #[test]
    fn report_renders_all_rows() {
        let rep = Report::new(
            "E0",
            "smoke",
            vec![
                Row::vs_paper("a", 1.0, 1.0, 0.0, 0.0),
                Row::check("b", 0.5, true),
            ],
        );
        let s = rep.render();
        assert!(s.contains("E0"));
        assert!(s.contains('a'));
        assert!(s.contains('b'));
        assert!(s.contains('✓'));
        assert!(rep.pass());
    }
}
