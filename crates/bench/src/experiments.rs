//! The experiment suite: one function per entry in DESIGN.md's experiment
//! index, each returning a [`Report`] of paper-vs-measured rows.
//!
//! All experiments are deterministic in `(trials, seed)`.

use std::sync::Arc;

use fair_circuits::{bits_to_u64, u64_to_bits};
use fair_core::strategy::{any_output, CorruptionPlan, LockAndAbort};
use fair_core::{analytic, best_of, estimate, Payoff, Scenario, Trial, UtilityEstimate};
use fair_protocols::scenarios::{
    artificial_sweep, contract_sweep, gk_sweep, gmw_half_sweep, ideal_fair_sweep, one_round_sweep,
    opt2_sweep, optn_sweep, Opt2Scenario, Strategy,
};
use fair_runtime::{PartyId, Value};
use fair_sfe::gmw::{gmw_instance, GmwConfig, GmwMsg};
use rand::rngs::StdRng;
use rand::RngExt;

use crate::table::{Report, Row};

/// Tolerance added on top of confidence intervals for pass/fail decisions.
const TOL: f64 = 0.05;

fn best<S: Scenario + Sync>(
    scenarios: &[S],
    payoff: &Payoff,
    trials: usize,
    seed: u64,
) -> UtilityEstimate {
    let (ests, idx) = best_of(scenarios, payoff, trials, seed);
    ests[idx].clone()
}

/// E1 — Introduction: Π2 is twice as fair as Π1.
pub fn e1(trials: usize, seed: u64) -> Report {
    let payoff = Payoff::standard();
    let u1 = best(&contract_sweep(false), &payoff, trials, seed);
    let u2 = best(&contract_sweep(true), &payoff, trials, seed ^ 1);
    let rows = vec![
        Row::vs_paper(
            "Π1 sup-utility (γ10)",
            analytic::pi1(&payoff),
            u1.mean,
            u1.ci,
            TOL,
        ),
        Row::vs_paper(
            "Π2 sup-utility ((γ10+γ11)/2)",
            analytic::pi2(&payoff),
            u2.mean,
            u2.ci,
            TOL,
        ),
        Row::check(
            "Π2 strictly fairer than Π1",
            u1.mean - u2.mean,
            u2.mean + u2.ci < u1.mean - u1.ci,
        ),
    ];
    Report::new(
        "E1",
        "contract signing: coin-tossed order halves the attacker's edge",
        rows,
    )
}

/// E2 — Theorem 3: every strategy in the library stays at or below
/// (γ10+γ11)/2 against Π^Opt_2SFE.
pub fn e2(trials: usize, seed: u64) -> Report {
    let payoff = Payoff::standard();
    let bound = analytic::opt2(&payoff);
    let (ests, best_idx) = best_of(&opt2_sweep(), &payoff, trials, seed);
    let mut rows: Vec<Row> = ests
        .iter()
        .map(|e| Row::upper_bound(e.name.clone(), bound, e.mean, e.ci, TOL))
        .collect();
    rows.push(Row::vs_paper(
        "sup over library",
        bound,
        ests[best_idx].mean,
        ests[best_idx].ci,
        TOL,
    ));
    Report::new(
        "E2",
        "Π^Opt_2SFE upper bound: u_A ≤ (γ10+γ11)/2 for every strategy",
        rows,
    )
}

/// E3 — Theorem 4 / Lemma 7: the proof adversaries attain the bound.
pub fn e3(trials: usize, seed: u64) -> Report {
    let payoff = Payoff::standard();
    let bound = analytic::opt2(&payoff);
    let a1 = estimate(
        &Opt2Scenario {
            strategy: Strategy::LockAbort(CorruptionPlan::Fixed(vec![0])),
        },
        &payoff,
        trials,
        seed,
    );
    let a2 = estimate(
        &Opt2Scenario {
            strategy: Strategy::LockAbort(CorruptionPlan::Fixed(vec![1])),
        },
        &payoff,
        trials,
        seed ^ 2,
    );
    let agen = estimate(
        &Opt2Scenario {
            strategy: Strategy::LockAbort(CorruptionPlan::RandomSingleton),
        },
        &payoff,
        trials,
        seed ^ 3,
    );
    let rows = vec![
        Row::vs_paper("u(A1) (corrupt p1)", bound, a1.mean, a1.ci, TOL),
        Row::vs_paper("u(A2) (corrupt p2)", bound, a2.mean, a2.ci, TOL),
        Row::vs_paper("u(A_gen) (random party)", bound, agen.mean, agen.ci, TOL),
        Row::vs_paper(
            "u(A1)+u(A2) (Lemma 7: γ10+γ11)",
            payoff.g10 + payoff.g11,
            a1.mean + a2.mean,
            a1.ci + a2.ci,
            2.0 * TOL,
        ),
    ];
    Report::new(
        "E3",
        "Π^Opt_2SFE lower bound: A1/A2/A_gen achieve (γ10+γ11)/2",
        rows,
    )
}

/// E4 — Lemmas 9/10: Π^Opt_2SFE has two reconstruction rounds; the
/// one-reconstruction-round strawman hands the attacker γ10.
pub fn e4(trials: usize, seed: u64) -> Report {
    let payoff = Payoff::standard();
    // Sweep abort rounds against Π^Opt_2SFE for both corrupted parties.
    let total_rounds = 6;
    let sweep_for = |party: usize, seed: u64| {
        fair_core::reconstruction::sweep(
            total_rounds,
            |r| Opt2Scenario {
                strategy: Strategy::AbortAtRound(CorruptionPlan::Fixed(vec![party]), r),
            },
            &payoff,
            trials,
            seed,
        )
    };
    let s0 = sweep_for(0, seed);
    let s1 = sweep_for(1, seed ^ 4);
    let fair: Vec<bool> = s0
        .fair
        .iter()
        .zip(&s1.fair)
        .map(|(a, b)| *a && *b)
        .collect();
    // Definition 8: ℓ counts the rounds in which an abort breaks fairness —
    // the reconstruction rounds. (Engine rounds 0–1 are phase 1, rounds
    // 2–3 are the two reconstruction rounds, round 4+ is past the end.)
    let ell = fair.iter().filter(|f| !**f).count();
    let unfair_block: Vec<usize> = fair
        .iter()
        .enumerate()
        .filter(|(_, f)| !**f)
        .map(|(r, _)| r)
        .collect();
    let strawman = best(&one_round_sweep(), &payoff, trials, seed ^ 5);
    let rows = vec![
        Row::vs_paper(
            "Π^Opt_2SFE reconstruction rounds ℓ",
            2.0,
            ell as f64,
            0.0,
            0.0,
        ),
        Row::check(
            "unfair aborts are exactly the reconstruction rounds {2,3}",
            unfair_block.len() as f64,
            unfair_block == vec![2, 3],
        ),
        Row::vs_paper(
            "strawman sup-utility (γ10)",
            payoff.g10,
            strawman.mean,
            strawman.ci,
            TOL,
        ),
        Row::check(
            "strawman less fair than Π^Opt_2SFE",
            strawman.mean,
            strawman.mean - strawman.ci > analytic::opt2(&payoff),
        ),
    ];
    Report::new("E4", "reconstruction-round optimality (Lemmas 9/10)", rows)
}

/// E5 — Lemma 11: per-t utilities against Π^Opt_nSFE.
pub fn e5(trials: usize, seed: u64, ns: &[usize]) -> Report {
    let payoff = Payoff::standard();
    let mut rows = Vec::new();
    for &n in ns {
        for t in 1..n {
            let u = best(
                &optn_sweep(n, t),
                &payoff,
                trials,
                seed ^ ((n * 16 + t) as u64),
            );
            rows.push(Row::vs_paper(
                format!("n={n} t={t}: (t·γ10+(n−t)·γ11)/n"),
                analytic::optn_t(&payoff, n, t),
                u.mean,
                u.ci,
                TOL,
            ));
        }
    }
    Report::new(
        "E5",
        "Π^Opt_nSFE per-coalition utilities (Lemma 11, tight by Lemma 13)",
        rows,
    )
}

/// E6 — Lemmas 12/13: the A_ī strategies and their mix.
pub fn e6(trials: usize, seed: u64, n: usize) -> Report {
    let payoff = Payoff::standard();
    let mut rows = Vec::new();
    let mut sum = 0.0;
    let mut sum_ci = 0.0;
    for i in 0..n {
        let s = fair_protocols::scenarios::OptnScenario {
            n,
            strategy: Strategy::LockAbort(CorruptionPlan::AllBut(i)),
        };
        let u = estimate(&s, &payoff, trials, seed ^ (i as u64));
        sum += u.mean;
        sum_ci += u.ci;
        rows.push(Row::vs_paper(
            format!("u(A_{{¬{}}})", i + 1),
            analytic::optn_best(&payoff, n),
            u.mean,
            u.ci,
            TOL,
        ));
    }
    rows.push(Row::vs_paper(
        "Σ_i u(A_ī) ≥ (n−1)γ10 + γ11",
        (n as f64 - 1.0) * payoff.g10 + payoff.g11,
        sum,
        sum_ci,
        n as f64 * TOL,
    ));
    let mixed = fair_protocols::scenarios::OptnScenario {
        n,
        strategy: Strategy::LockAbort(CorruptionPlan::RandomAllButOne),
    };
    let u = estimate(&mixed, &payoff, trials, seed ^ 99);
    rows.push(Row::vs_paper(
        "mixed A: ((n−1)γ10+γ11)/n",
        analytic::optn_best(&payoff, n),
        u.mean,
        u.ci,
        TOL,
    ));
    Report::new(
        "E6",
        "multi-party lower bound via the A_ī strategies (Lemmas 12/13)",
        rows,
    )
}

/// E7 — Lemmas 14/16: Π^Opt_nSFE is utility-balanced.
pub fn e7(trials: usize, seed: u64, n: usize) -> Report {
    let payoff = Payoff::standard();
    let mut rows = Vec::new();
    let mut sum = 0.0;
    let mut sum_ci = 0.0;
    for t in 1..n {
        let u = best(&optn_sweep(n, t), &payoff, trials, seed ^ (t as u64));
        sum += u.mean;
        sum_ci += u.ci;
    }
    rows.push(Row::vs_paper(
        format!("Σ_t u(A_t) vs (n−1)(γ10+γ11)/2 (n={n})"),
        analytic::balance_sum(&payoff, n),
        sum,
        sum_ci,
        (n - 1) as f64 * TOL,
    ));
    Report::new(
        "E7",
        "Π^Opt_nSFE is utility-balanced (Lemma 14, tight by Lemma 16)",
        rows,
    )
}

/// E8 — Lemma 17: Π^{1/2}_GMW per-t cliff; balance violated for even n.
pub fn e8(trials: usize, seed: u64, ns: &[usize]) -> Report {
    let payoff = Payoff::standard();
    let mut rows = Vec::new();
    for &n in ns {
        let mut sum = 0.0;
        let mut sum_ci = 0.0;
        for t in 1..n {
            let u = best(
                &gmw_half_sweep(n, t),
                &payoff,
                trials,
                seed ^ ((n * 16 + t) as u64),
            );
            sum += u.mean;
            sum_ci += u.ci;
            rows.push(Row::vs_paper(
                format!("n={n} t={t}"),
                analytic::gmw_half_t(&payoff, n, t),
                u.mean,
                u.ci,
                TOL,
            ));
        }
        let bound = analytic::balance_sum(&payoff, n);
        let violated = sum - sum_ci > bound + 0.01;
        if n % 2 == 0 {
            rows.push(Row::check(
                format!("n={n} (even): balance bound exceeded by (γ10−γ11)/2"),
                sum - bound,
                violated && (sum - bound - (payoff.g10 - payoff.g11) / 2.0).abs() < sum_ci + TOL,
            ));
        } else {
            rows.push(Row::vs_paper(
                format!("n={n} (odd): Σ_t meets balance bound"),
                bound,
                sum,
                sum_ci,
                (n - 1) as f64 * TOL,
            ));
        }
    }
    Report::new(
        "E8",
        "Π^{1/2}_GMW: fair below n/2, unfair at n/2, unbalanced for even n (Lemma 17)",
        rows,
    )
}

/// E9 — Lemma 18: the artificial protocol is optimally fair but not
/// utility-balanced.
pub fn e9(trials: usize, seed: u64, n: usize) -> Report {
    let payoff = Payoff::standard();
    let t1 = best(&artificial_sweep(n, 1), &payoff, trials, seed);
    let tmax = best(&artificial_sweep(n, n - 1), &payoff, trials, seed ^ 7);
    let optn_t1 = analytic::optn_t(&payoff, n, 1);
    let rows = vec![
        Row::vs_paper(
            "t=1: γ10/n + (n−1)/n·(γ10+γ11)/2",
            analytic::artificial_t1(&payoff, n),
            t1.mean,
            t1.ci,
            TOL,
        ),
        Row::check(
            "t=1 exceeds Π^Opt_nSFE's bound (not balanced)",
            t1.mean - optn_t1,
            t1.mean - t1.ci > optn_t1,
        ),
        Row::vs_paper(
            "t=n−1: ((n−1)γ10+γ11)/n (still optimal)",
            analytic::optn_best(&payoff, n),
            tmax.mean,
            tmax.ci,
            TOL,
        ),
    ];
    Report::new(
        "E9",
        "optimal fairness does not imply utility balance (Lemma 18)",
        rows,
    )
}

/// E10 — Theorem 6 / Lemma 22: the corruption-cost duality.
pub fn e10(trials: usize, seed: u64, n: usize) -> Report {
    let payoff = Payoff::standard();
    let phi: Vec<f64> = (1..n)
        .map(|t| best(&optn_sweep(n, t), &payoff, trials, seed ^ (t as u64)).mean)
        .collect();
    // Measure the ideal benchmark s(t) (dummy protocol around fair SFE)
    // rather than trusting the closed form.
    let s_measured: Vec<UtilityEstimate> = (1..n)
        .map(|t| {
            best(
                &ideal_fair_sweep(n, t),
                &payoff,
                trials,
                seed ^ (0x100 + t as u64),
            )
        })
        .collect();
    let cost = fair_core::cost::cost_from_phi(&phi, &payoff, n);
    let ideally_fair = fair_core::cost::is_ideally_fair(&phi, &cost, &payoff, n, TOL);
    // Any strictly dominated (uniformly cheaper) cost must fail.
    let cheaper = fair_core::cost::CostFn::new(
        (0..n)
            .map(|t| if t == 0 { 0.0 } else { cost.cost(t) - 0.15 })
            .collect(),
    );
    let cheaper_fails = !fair_core::cost::is_ideally_fair(&phi, &cheaper, &payoff, n, TOL);
    let mut rows: Vec<Row> = (1..n)
        .map(|t| {
            Row::vs_paper(
                format!("c({t}) = φ({t}) − s({t})"),
                analytic::optn_t(&payoff, n, t) - analytic::ideal_fair_t(&payoff, n, t),
                cost.cost(t),
                0.02,
                TOL,
            )
        })
        .collect();
    for (i, s) in s_measured.iter().enumerate() {
        rows.push(Row::vs_paper(
            format!("measured s({}) vs γ11 (ideal benchmark)", i + 1),
            analytic::ideal_fair_t(&payoff, n, i + 1),
            s.mean,
            s.ci,
            TOL,
        ));
    }
    rows.push(Row::check(
        "Π^Opt_nSFE ideally γ^C-fair under C",
        1.0,
        ideally_fair,
    ));
    rows.push(Row::check(
        "strictly dominated C′ fails (optimality of C)",
        1.0,
        cheaper_fails,
    ));
    Report::new(
        "E10",
        "utility balance ⇔ optimal corruption-cost function (Theorem 6)",
        rows,
    )
}

/// A scenario for the *real* GMW protocol (no ideal hybrid): the rushing
/// lock-and-abort adversary against the millionaires circuit.
pub struct GmwScenario {
    cfg: std::sync::Arc<GmwConfig>,
    lock_abort: bool,
}

impl Scenario for GmwScenario {
    type Msg = GmwMsg;

    fn name(&self) -> String {
        format!(
            "GMW-real/{}",
            if self.lock_abort {
                "lock-abort"
            } else {
                "honest"
            }
        )
    }

    fn n(&self) -> usize {
        2
    }

    fn build(&self, rng: &mut StdRng) -> Trial<GmwMsg> {
        let a = rng.random_range(0u64..256);
        let b = rng.random_range(0u64..256);
        let instance = gmw_instance(&self.cfg, &[a, b], rng);
        let bits: Vec<bool> = u64_to_bits(a, 8)
            .into_iter()
            .chain(u64_to_bits(b, 8))
            .collect();
        let truth = Value::Scalar(bits_to_u64(&self.cfg.circuit().eval(&bits)));
        let adversary: Box<dyn fair_runtime::Adversary<GmwMsg>> = if self.lock_abort {
            Box::new(LockAndAbort::new(
                CorruptionPlan::Fixed(vec![0]),
                any_output(),
            ))
        } else {
            Box::new(fair_core::strategy::RunHonestly::new(
                CorruptionPlan::Fixed(vec![0]),
                any_output(),
            ))
        };
        Trial {
            instance,
            adversary,
            truth: Some(truth),
            max_rounds: self.cfg.rounds() + 6,
        }
    }
}

/// E13 — composability: the real GMW instantiation of unfair SFE gives the
/// attacker exactly the same utility (γ10) as the ideal hybrid, and the
/// hybrid-built Π^Opt_2SFE keeps its bound.
pub fn e13(trials: usize, seed: u64) -> Report {
    let payoff = Payoff::standard();
    let cfg = GmwConfig::new(fair_circuits::functions::millionaires(8), vec![8, 8]);
    let real = estimate(
        &GmwScenario {
            cfg: Arc::clone(&cfg),
            lock_abort: true,
        },
        &payoff,
        trials,
        seed,
    );
    let honest = estimate(
        &GmwScenario {
            cfg,
            lock_abort: false,
        },
        &payoff,
        trials,
        seed ^ 8,
    );
    // The ideal unfair-SFE hybrid under the equivalent attack: submit an
    // input, grab the corrupted output, then send the explicit abort to F
    // (the simulator-interface move that "going silent" is in the real
    // protocol).
    struct GrabAbort {
        learned: Option<Value>,
    }
    impl fair_runtime::Adversary<fair_sfe::ideal::SfeMsg> for GrabAbort {
        fn initial_corruptions(&mut self, _n: usize, _r: &mut StdRng) -> Vec<PartyId> {
            vec![PartyId(0)]
        }
        fn on_round(
            &mut self,
            view: &fair_runtime::RoundView<'_, fair_sfe::ideal::SfeMsg>,
            ctrl: &mut fair_runtime::AdvControl<'_, fair_sfe::ideal::SfeMsg>,
            _rng: &mut StdRng,
        ) {
            use fair_sfe::ideal::SfeMsg;
            if view.round == 0 {
                ctrl.run_honestly(PartyId(0)); // submit the input
                return;
            }
            for e in view.delivered {
                if let SfeMsg::Output(v) = &e.msg {
                    self.learned = Some(v.clone());
                    ctrl.send_adv(fair_runtime::OutMsg::to_func(
                        fair_runtime::FuncId(0),
                        SfeMsg::Abort,
                    ));
                }
            }
        }
        fn learned(&self) -> Option<Value> {
            self.learned.clone()
        }
    }
    struct IdealUnfair;
    impl Scenario for IdealUnfair {
        type Msg = fair_sfe::ideal::SfeMsg;
        fn name(&self) -> String {
            "ideal-unfair-sfe/grab-abort".into()
        }
        fn n(&self) -> usize {
            2
        }
        fn build(&self, rng: &mut StdRng) -> Trial<fair_sfe::ideal::SfeMsg> {
            let a = rng.random_range(0u64..256);
            let b = rng.random_range(0u64..256);
            let spec = fair_sfe::spec::IdealSpec::global("millionaires", 2, |ins: &[Value]| {
                Value::Scalar(
                    (ins[0].as_scalar().unwrap_or(0) > ins[1].as_scalar().unwrap_or(0)) as u64,
                )
            });
            let instance = fair_runtime::Instance {
                parties: vec![
                    Box::new(fair_sfe::dummy::SfeDummyParty::new(Value::Scalar(a))),
                    Box::new(fair_sfe::dummy::SfeDummyParty::new(Value::Scalar(b))),
                ],
                funcs: vec![Box::new(fair_sfe::ideal::SfeWithAbort::new(spec))],
            };
            Trial {
                instance,
                adversary: Box::new(GrabAbort { learned: None }),
                truth: None,
                max_rounds: 30,
            }
        }
    }
    let ideal = estimate(&IdealUnfair, &payoff, trials, seed ^ 9);
    // The second real instantiation: Yao garbled circuits. Its unfairness
    // is asymmetric — the evaluator (p2) learns first.
    struct YaoScenario {
        corrupt: usize,
    }
    impl Scenario for YaoScenario {
        type Msg = fair_sfe::yao::YaoMsg;
        fn name(&self) -> String {
            format!("yao/lock-abort(p{})", self.corrupt + 1)
        }
        fn n(&self) -> usize {
            2
        }
        fn build(&self, rng: &mut StdRng) -> Trial<fair_sfe::yao::YaoMsg> {
            let a = rng.random_range(0u64..256);
            let b = rng.random_range(0u64..256);
            let circuit = std::sync::Arc::new(fair_circuits::functions::millionaires(8));
            let instance = fair_sfe::yao::yao_instance(&circuit, [8, 8], [a, b], rng);
            Trial {
                instance,
                adversary: Box::new(LockAndAbort::new(
                    CorruptionPlan::Fixed(vec![self.corrupt]),
                    any_output(),
                )),
                truth: Some(Value::Scalar((a > b) as u64)),
                max_rounds: 20,
            }
        }
    }
    let yao_eval = estimate(&YaoScenario { corrupt: 1 }, &payoff, trials, seed ^ 10);
    let yao_garb = estimate(&YaoScenario { corrupt: 0 }, &payoff, trials, seed ^ 11);
    let rows = vec![
        Row::vs_paper(
            "real GMW, lock-abort (γ10)",
            payoff.g10,
            real.mean,
            real.ci,
            TOL,
        ),
        Row::vs_paper(
            "ideal F_sfe^⊥, same attack (γ10)",
            payoff.g10,
            ideal.mean,
            ideal.ci,
            TOL,
        ),
        Row::check(
            "hybrid and real instantiation agree",
            (real.mean - ideal.mean).abs(),
            (real.mean - ideal.mean).abs() <= real.ci + ideal.ci + TOL,
        ),
        Row::vs_paper(
            "real GMW, honest coalition (γ11)",
            payoff.g11,
            honest.mean,
            honest.ci,
            TOL,
        ),
        Row::vs_paper(
            "real Yao, corrupted evaluator (γ10)",
            payoff.g10,
            yao_eval.mean,
            yao_eval.ci,
            TOL,
        ),
        Row::vs_paper(
            "real Yao, corrupted garbler (γ11: it learns last)",
            payoff.g11,
            yao_garb.mean,
            yao_garb.ci,
            TOL,
        ),
    ];
    Report::new(
        "E13",
        "composability: replacing the hybrid by real GMW/Yao preserves utilities",
        rows,
    )
}

/// E11 — Theorems 23/24: the Gordon–Katz protocols bound the attacker's
/// payoff by 1/p under γ = (0,0,1,0).
pub fn e11(trials: usize, seed: u64) -> Report {
    let payoff = Payoff::gk();
    let mut rows = Vec::new();
    let bit: fair_protocols::gordon_katz::ValueSampler =
        Arc::new(|rng: &mut StdRng| Value::Scalar(rng.random_range(0..2)));
    let and_fn: fair_protocols::opt2::TwoPartyFn = Arc::new(|a: &Value, b: &Value| {
        Value::Scalar((a.as_scalar().unwrap_or(0) & 1) & (b.as_scalar().unwrap_or(0) & 1))
    });
    for p in [2u64, 4] {
        let cfg = fair_protocols::gordon_katz::GkConfig::poly_domain(
            Arc::clone(&and_fn),
            p,
            2,
            Arc::clone(&bit),
            Arc::clone(&bit),
        );
        let rounds: Vec<usize> = (1..=8).collect();
        let u = best(&gk_sweep(&cfg, &rounds), &payoff, trials, seed ^ p);
        rows.push(Row::upper_bound(
            format!("poly-domain p={p}: best attack ≤ 1/p"),
            analytic::gk_bound(p),
            u.mean,
            u.ci,
            TOL / 2.0,
        ));
        rows.push(Row::vs_paper(
            format!("poly-domain p={p}: rounds m = 8·p·|Y|"),
            (8 * p * 2) as f64,
            cfg.m as f64,
            0.0,
            0.0,
        ));
    }
    let cfg = fair_protocols::gordon_katz::GkConfig::poly_range(
        Arc::clone(&and_fn),
        2,
        vec![Value::Scalar(0), Value::Scalar(1)],
    );
    let rounds: Vec<usize> = (1..=8).collect();
    let u = best(&gk_sweep(&cfg, &rounds), &payoff, trials, seed ^ 77);
    rows.push(Row::upper_bound(
        "poly-range p=2: best attack ≤ 1/p",
        analytic::gk_bound(2),
        u.mean,
        u.ci,
        TOL / 2.0,
    ));
    rows.push(Row::vs_paper(
        "poly-range p=2: rounds m = 8·p²·|Z|",
        (8 * 4 * 2) as f64,
        cfg.m as f64,
        0.0,
        0.0,
    ));
    Report::new(
        "E11",
        "Gordon–Katz protocols: payoff ≤ 1/p with O(p·|Y|) / O(p²·|Z|) rounds",
        rows,
    )
}

/// E14 — the Section 4.1 remark: for functions admitting a 1/p-secure
/// solution, fairness beats the generic (γ10+γ11)/2 optimum. We evaluate
/// the Gordon–Katz protocol for AND (poly-size domain) under the *general*
/// Γ⁺_fair payoff and show its best attacker earns strictly less than the
/// generic bound, approaching γ11 as p grows.
pub fn e14(trials: usize, seed: u64) -> Report {
    let payoff = Payoff::standard();
    let generic = analytic::opt2(&payoff);
    let bit: fair_protocols::gordon_katz::ValueSampler =
        Arc::new(|rng: &mut StdRng| Value::Scalar(rng.random_range(0..2)));
    let and_fn: fair_protocols::opt2::TwoPartyFn = Arc::new(|a: &Value, b: &Value| {
        Value::Scalar((a.as_scalar().unwrap_or(0) & 1) & (b.as_scalar().unwrap_or(0) & 1))
    });
    let mut rows = Vec::new();
    for p in [2u64, 4] {
        let cfg = fair_protocols::gordon_katz::GkConfig::poly_domain(
            Arc::clone(&and_fn),
            p,
            2,
            Arc::clone(&bit),
            Arc::clone(&bit),
        );
        let rounds: Vec<usize> = (1..=8).collect();
        let u = best(&gk_sweep(&cfg, &rounds), &payoff, trials, seed ^ p);
        // Remark after Theorem 3: the bound drops to roughly
        // (γ10 + (p−1)·γ11)/p for 1/p-secure functions.
        let remark_bound = (payoff.g10 + (p as f64 - 1.0) * payoff.g11) / p as f64;
        rows.push(Row::upper_bound(
            format!("GK(p={p}) under Γ⁺_fair ≤ (γ10+(p−1)γ11)/p"),
            remark_bound,
            u.mean,
            u.ci,
            TOL,
        ));
        rows.push(Row::check(
            format!("GK(p={p}) strictly fairer than the generic optimum"),
            generic - u.mean,
            u.mean + u.ci < generic,
        ));
    }
    Report::new(
        "E14",
        "Section 4.1 remark: 1/p-secure functions admit fairness beyond the generic optimum",
        rows,
    )
}

/// E15 — the RPD attack game (Remark 1): the designer's uniform choice of
/// the designated party is minimax-optimal. Sweeping Pr[i* = 1] = q shows
/// the best attacker earns max(q, 1−q)·γ10 + min(q, 1−q)·γ11, minimized
/// exactly at q = 1/2.
pub fn e15(trials: usize, seed: u64) -> Report {
    let payoff = Payoff::standard();
    let qs = [0.1f64, 0.3, 0.5, 0.7, 0.9];
    // Build the measured attack-game matrix: designer rows = bias q,
    // attacker columns = which party the lock-and-abort corrupts.
    let mut matrix = Vec::with_capacity(qs.len());
    let mut rows = Vec::new();
    for (i, q) in qs.into_iter().enumerate() {
        let sweep = fair_protocols::scenarios::biased_opt2_sweep(q);
        // Columns 0/1 of the sweep are lock-abort on p1 / p2.
        let u1 = estimate(&sweep[0], &payoff, trials, seed ^ (i as u64));
        let u2 = estimate(&sweep[1], &payoff, trials, seed ^ (0x40 + i as u64));
        let expect = q.max(1.0 - q) * payoff.g10 + q.min(1.0 - q) * payoff.g11;
        let measured_best = u1.mean.max(u2.mean);
        rows.push(Row::vs_paper(
            format!("q = {q}: max(q,1−q)·γ10 + min(q,1−q)·γ11"),
            expect,
            measured_best,
            u1.ci + u2.ci,
            TOL,
        ));
        matrix.push(vec![u1.mean, u2.mean]);
    }
    let game = fair_core::game::Game::new(
        qs.iter().map(|q| format!("q={q}")).collect(),
        vec!["lock-abort p1".into(), "lock-abort p2".into()],
        matrix,
    );
    let (d_star, value) = game.minimax();
    rows.push(Row::check(
        "designer's minimax optimum at q = 1/2",
        value,
        game.designer_moves()[d_star] == "q=0.5",
    ));
    rows.push(Row::vs_paper(
        "game value = (γ10+γ11)/2",
        analytic::opt2(&payoff),
        value,
        0.03,
        TOL,
    ));
    rows.push(Row::check(
        "uniform design forms a saddle point",
        1.0,
        game.is_saddle_point(d_star, game.best_response(d_star).0, 0.05),
    ));
    Report::new(
        "E15",
        "the attack game: uniform i* is the designer's minimax move (Remark 1)",
        rows,
    )
}

/// E16 — the two-way separation (Appendix B.1): utility-balanced fairness
/// and optimal fairness are incomparable. For odd n the honest-majority
/// protocol Π^{1/2}_GMW (the paper's mixed protocol Π′ on odd n) meets the
/// balance bound yet its best attacker earns γ10 — far above Π^Opt_nSFE's
/// optimum; conversely E9 shows the Lemma 18 protocol is optimal but
/// unbalanced.
pub fn e16(trials: usize, seed: u64) -> Report {
    let payoff = Payoff::standard();
    let n = 5; // odd: Π′ = Π^{1/2}_GMW
    let mut sum = 0.0;
    let mut sum_ci = 0.0;
    let mut sup = f64::NEG_INFINITY;
    for t in 1..n {
        let u = best(&gmw_half_sweep(n, t), &payoff, trials, seed ^ (t as u64));
        sum += u.mean;
        sum_ci += u.ci;
        sup = sup.max(u.mean);
    }
    let rows = vec![
        Row::vs_paper(
            format!("Π′ (n={n}, odd): Σ_t meets the balance bound"),
            analytic::balance_sum(&payoff, n),
            sum,
            sum_ci,
            (n - 1) as f64 * TOL,
        ),
        Row::vs_paper(
            "Π′ sup-utility = γ10 (not optimal)",
            payoff.g10,
            sup,
            0.02,
            TOL,
        ),
        Row::check(
            "balanced ⇏ optimal: sup exceeds Π^Opt_nSFE's bound",
            sup - analytic::optn_best(&payoff, n),
            sup > analytic::optn_best(&payoff, n) + 0.05,
        ),
    ];
    Report::new(
        "E16",
        "utility-balanced and optimal fairness are incomparable (Appendix B.1)",
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 150;

    #[test]
    fn e1_reproduces() {
        let r = e1(T, 1);
        assert!(r.pass(), "{}", r.render());
    }

    #[test]
    fn e3_reproduces() {
        let r = e3(T, 3);
        assert!(r.pass(), "{}", r.render());
    }

    #[test]
    fn e4_reproduces() {
        let r = e4(T, 4);
        assert!(r.pass(), "{}", r.render());
    }

    #[test]
    fn e7_reproduces_small() {
        let r = e7(T, 7, 3);
        assert!(r.pass(), "{}", r.render());
    }

    #[test]
    fn e9_reproduces_small() {
        let r = e9(T, 9, 3);
        assert!(r.pass(), "{}", r.render());
    }

    #[test]
    fn e13_reproduces() {
        let r = e13(80, 13);
        assert!(r.pass(), "{}", r.render());
    }

    #[test]
    fn e15_reproduces() {
        let r = e15(250, 15);
        assert!(r.pass(), "{}", r.render());
    }
}
