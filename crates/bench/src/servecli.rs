//! Glue between the experiment registry and `fair-serve`: the
//! [`ExperimentBackend`] the `fair-serve` binary hosts, and the
//! closed-loop load generator behind `fair-load`.
//!
//! The backend renders the **deterministic result document**
//! ([`fair_simlab::result_json`]) — the same canonical subset the batch
//! runner persists — so a served body for `(exp, trials, seed)` is
//! byte-identical to the corresponding batch record, cold or cached.

use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use fair_serve::service::Backend;
use fair_serve::{client, Conn, HttpReply, ProgressUpdate};
use fair_simlab::json::{self, Json};
use fair_trace::QuantileSummary;

/// Where `fair-load` persists its full run record.
pub const LOAD_RECORD_PATH: &str = "target/simlab/serve_load.json";

/// The repo-root serving benchmark record (rps + latency quantiles,
/// cold vs warm), tracked across commits like `BENCH_reproduce.json`.
pub const BENCH_SERVE_PATH: &str = "BENCH_serve.json";

/// The real registry as a serve backend.
pub struct ExperimentBackend;

impl Backend for ExperimentBackend {
    fn experiments(&self) -> Vec<(String, String)> {
        crate::experiment_listing()
    }

    fn estimate(&self, exp: &str, trials: usize, seed: u64) -> Option<String> {
        rendered_result(exp, trials, seed)
    }

    fn estimate_progressive(
        &self,
        exp: &str,
        trials: usize,
        seed: u64,
        epsilon: f64,
        emit: &mut dyn FnMut(ProgressUpdate),
    ) -> Option<String> {
        progressive_result(exp, trials, seed, epsilon, emit)
    }
}

/// Runs `(exp, trials, seed)` and renders its canonical result document —
/// the exact bytes both the serve path and the byte-identity tests use.
/// The run enters the `(exp, seed)` tile-cache group, so when a tile store
/// is installed, previously computed 64-trial tiles are reused and newly
/// computed ones are recorded.
pub fn rendered_result(exp: &str, trials: usize, seed: u64) -> Option<String> {
    let reports = fair_tiles::with_group(exp, seed, || crate::run_experiment(exp, trials, seed))?;
    let records = crate::runner::to_report_records(&reports);
    Some(fair_simlab::result_json(exp, trials, seed, &records).render_pretty() + "\n")
}

/// Runs `(exp, trials, seed)` adaptively — each `estimate()` inside the
/// experiment stops once its 95% half-width reaches `epsilon` — invoking
/// `emit` with a progress frame per tile batch. Returns the wrapper
/// document: the adaptive accounting plus the canonical result for the
/// trials actually spent. The computation runs on a worker thread so the
/// caller's `emit` (which may be writing to a live socket) observes frames
/// as they happen.
pub fn progressive_result(
    exp: &str,
    trials: usize,
    seed: u64,
    epsilon: f64,
    emit: &mut dyn FnMut(ProgressUpdate),
) -> Option<String> {
    if !crate::experiment_listing().iter().any(|(id, _)| id == exp) {
        return None;
    }
    let (tx, rx) = mpsc::channel();
    let (reports, summary) = std::thread::scope(|scope| {
        let worker = scope.spawn(move || {
            fair_core::progressive::scoped(epsilon, Some(tx), || {
                fair_tiles::with_group(exp, seed, || crate::run_experiment(exp, trials, seed))
            })
        });
        // Relay frames while the worker runs; the channel closes when the
        // scoped context (and its Sender) drops.
        for update in rx {
            emit(ProgressUpdate {
                scenario: update.scenario,
                requested: update.requested,
                trials: update.trials,
                mean: update.mean,
                ci: update.ci,
                done: update.done,
            });
        }
        worker.join().unwrap_or((None, Default::default()))
    });
    let reports = reports?;
    let records = crate::runner::to_report_records(&reports);
    let adaptive = fair_simlab::AdaptiveSummary {
        epsilon,
        estimates: summary.estimates,
        early_stops: summary.early_stops,
        trials_requested: summary.trials_requested,
        trials_used: summary.trials_used,
    };
    let doc = Json::obj()
        .field("adaptive", adaptive.to_json())
        .field(
            "result",
            fair_simlab::result_json(exp, trials, seed, &records),
        )
        .canonical();
    Some(doc.render_pretty() + "\n")
}

/// Parameters of one `fair-load` run.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent closed-loop clients in the warm phase.
    pub clients: usize,
    /// Distinct parameter points (seeds `0..points`).
    pub points: usize,
    /// Warm passes over the whole point set per client.
    pub repeat: usize,
    /// Experiment id to query.
    pub exp: String,
    /// Trials per estimate.
    pub trials: usize,
    /// Persistent keep-alive connections for the warm phase. `0` keeps
    /// the legacy mode: a fresh connection per request, `clients`
    /// threads. Nonzero switches the warm phase onto `connections`
    /// long-lived sockets.
    pub connections: usize,
    /// Requests pipelined per batch on each persistent connection
    /// (ignored in the legacy mode; `1` = strict request/reply).
    pub pipeline: usize,
    /// Open-loop offered rate in requests/second across all connections.
    /// `0.0` = closed loop (each client waits for its reply). Nonzero
    /// sends on a fixed schedule regardless of reply latency, and
    /// latency is measured from the *scheduled* send time, so queueing
    /// delay under overload is not hidden (no coordinated omission).
    pub rate: f64,
    /// Event loops the *server* under test was started with (`--server-loops`).
    /// `0` = unknown/not recorded. When set on an open-loop run, the
    /// benchmark record's per-loop-count `scaling` curve gains this run's
    /// offered-vs-achieved entry (see [`bench_serve_json`]).
    pub server_loops: usize,
}

impl LoadOptions {
    /// The warm-phase mode this option set selects.
    pub fn mode(&self) -> &'static str {
        if self.rate > 0.0 {
            "openloop"
        } else if self.connections > 0 {
            "persistent"
        } else {
            "oneshot"
        }
    }
}

impl Default for LoadOptions {
    fn default() -> LoadOptions {
        LoadOptions {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            clients: 4,
            points: 6,
            repeat: 8,
            exp: "e1".to_string(),
            trials: 50,
            connections: 0,
            pipeline: 1,
            rate: 0.0,
            server_loops: 0,
        }
    }
}

/// What a load run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Which warm-phase mode ran (`oneshot`, `persistent`, `openloop`).
    pub mode: String,
    /// Latency quantiles of the cold phase (nanoseconds per request).
    pub cold_ns: QuantileSummary,
    /// Latency quantiles of the warm phase (nanoseconds per request).
    /// In open-loop mode these are measured from each request's
    /// *scheduled* send time.
    pub warm_ns: QuantileSummary,
    /// Requests that failed (transport error or non-200).
    pub errors: u64,
    /// Warm responses served from the cache (`X-Cache: hit`/`wait`).
    pub warm_hits: u64,
    /// Warm requests issued.
    pub warm_requests: u64,
    /// Warm-phase achieved throughput, requests per second.
    pub warm_rps: f64,
    /// Open-loop offered rate (`0.0` in closed-loop modes).
    pub offered_rps: f64,
    /// Total requests issued across both phases.
    pub total_requests: u64,
}

impl LoadReport {
    /// Warm cache hit rate in `[0, 1]`.
    pub fn warm_hit_rate(&self) -> f64 {
        if self.warm_requests == 0 {
            0.0
        } else {
            self.warm_hits as f64 / self.warm_requests as f64
        }
    }

    /// How many times faster the warm median is than the cold median.
    pub fn p50_speedup(&self) -> f64 {
        if self.warm_ns.p50 == 0 {
            f64::INFINITY
        } else {
            self.cold_ns.p50 as f64 / self.warm_ns.p50 as f64
        }
    }
}

fn timed_get(addr: SocketAddr, target: &str) -> (u64, Option<HttpReply>) {
    let t0 = Instant::now();
    let reply = client::get(addr, target);
    let ns = t0.elapsed().as_nanos() as u64;
    (ns, reply.ok())
}

/// Socket timeout for the warm-phase persistent connections.
const CONN_TIMEOUT: Duration = Duration::from_secs(30);

/// One warm worker's tally: latency samples, cache hits, errors.
type WorkerTally = (Vec<u64>, u64, u64);

fn tally_reply(
    reply: Option<&HttpReply>,
    ns: u64,
    samples: &mut Vec<u64>,
    hits: &mut u64,
    errors: &mut u64,
) {
    match reply {
        Some(r) if r.status == 200 => {
            samples.push(ns);
            if matches!(r.header("x-cache"), Some("hit") | Some("wait")) {
                *hits += 1;
            }
        }
        _ => *errors += 1,
    }
}

/// One-shot warm worker: a fresh connection per request (the legacy
/// closed-loop mode).
fn oneshot_sweep(opts: &LoadOptions, target_for: &dyn Fn(usize) -> String) -> WorkerTally {
    let mut samples = Vec::with_capacity(opts.repeat * opts.points);
    let mut hits = 0u64;
    let mut errors = 0u64;
    for _ in 0..opts.repeat {
        for seed in 0..opts.points {
            let (ns, reply) = timed_get(opts.addr, &target_for(seed));
            tally_reply(reply.as_ref(), ns, &mut samples, &mut hits, &mut errors);
        }
    }
    (samples, hits, errors)
}

/// Persistent closed-loop worker: one keep-alive connection sweeping the
/// point set `repeat` times, `pipeline` requests per batch. Per-request
/// latency is measured from the batch send, so deeper pipelines trade
/// individual latency for throughput — exactly what the mode measures.
fn persistent_sweep(opts: &LoadOptions, target_for: &dyn Fn(usize) -> String) -> WorkerTally {
    let total = opts.repeat * opts.points;
    let mut samples = Vec::with_capacity(total);
    let mut hits = 0u64;
    let mut errors = 0u64;
    let Ok(mut conn) = Conn::connect(opts.addr, CONN_TIMEOUT) else {
        return (samples, hits, total as u64);
    };
    let targets: Vec<String> = (0..total).map(|i| target_for(i % opts.points)).collect();
    let mut sent = 0usize;
    for batch in targets.chunks(opts.pipeline.max(1)) {
        let refs: Vec<&str> = batch.iter().map(String::as_str).collect();
        let t0 = Instant::now();
        if conn.send_many(&refs).is_err() {
            errors += (total - sent) as u64;
            return (samples, hits, errors);
        }
        for _ in batch {
            sent += 1;
            match conn.recv() {
                Ok(reply) => {
                    let ns = t0.elapsed().as_nanos() as u64;
                    tally_reply(Some(&reply), ns, &mut samples, &mut hits, &mut errors);
                }
                Err(_) => {
                    errors += (total - sent + 1) as u64;
                    return (samples, hits, errors);
                }
            }
        }
    }
    (samples, hits, errors)
}

/// Open-loop worker: sends on a fixed schedule over one persistent
/// connection. When the server falls behind, sends are issued as soon as
/// the connection frees up but latency still counts from the *scheduled*
/// instant — the classic coordinated-omission correction, so the report
/// shows the queueing delay an arrival-rate-faithful client would see.
fn open_loop_sweep(
    opts: &LoadOptions,
    target_for: &dyn Fn(usize) -> String,
    start: Instant,
    interval: Duration,
    phase: Duration,
) -> WorkerTally {
    let total = opts.repeat * opts.points;
    let mut samples = Vec::with_capacity(total);
    let mut hits = 0u64;
    let mut errors = 0u64;
    let Ok(mut conn) = Conn::connect(opts.addr, CONN_TIMEOUT) else {
        return (samples, hits, total as u64);
    };
    for i in 0..total {
        let scheduled = start + phase + interval.mul_f64(i as f64);
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let target = target_for(i % opts.points);
        if conn.send(&target).is_err() {
            errors += (total - i) as u64;
            return (samples, hits, errors);
        }
        match conn.recv() {
            Ok(reply) => {
                let ns = scheduled.elapsed().as_nanos() as u64;
                tally_reply(Some(&reply), ns, &mut samples, &mut hits, &mut errors);
            }
            Err(_) => {
                errors += (total - i) as u64;
                return (samples, hits, errors);
            }
        }
    }
    (samples, hits, errors)
}

/// Drives the load: a sequential **cold phase** touching each point once
/// (every request a miss on a fresh server), then a concurrent **warm
/// phase** in the mode [`LoadOptions::mode`] selects:
///
/// - `oneshot` — `clients` threads, fresh connection per request,
///   closed loop (the next request waits for the previous reply).
/// - `persistent` — `connections` keep-alive sockets, optionally
///   pipelined `pipeline`-deep, closed loop per batch.
/// - `openloop` — `connections` keep-alive sockets offered a fixed
///   aggregate `rate`; achieved vs offered rate is reported.
pub fn run_load(opts: &LoadOptions) -> LoadReport {
    let target_for = |seed: usize| {
        format!(
            "/estimate?exp={}&trials={}&seed={seed}",
            opts.exp, opts.trials
        )
    };

    let mut errors = 0u64;
    let mut cold_samples = Vec::with_capacity(opts.points);
    for seed in 0..opts.points {
        let (ns, reply) = timed_get(opts.addr, &target_for(seed));
        match reply {
            Some(r) if r.status == 200 => cold_samples.push(ns),
            _ => errors += 1,
        }
    }

    let mode = opts.mode();
    let threads = match mode {
        "oneshot" => opts.clients.max(1),
        _ => opts.connections.max(1),
    };
    let interval = if opts.rate > 0.0 {
        Duration::from_secs_f64(threads as f64 / opts.rate)
    } else {
        Duration::ZERO
    };

    let warm_t0 = Instant::now();
    let per_client: Vec<WorkerTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|thread| {
                let target_for = &target_for;
                scope.spawn(move || {
                    let target_for = |seed: usize| target_for(seed);
                    match mode {
                        "persistent" => persistent_sweep(opts, &target_for),
                        "openloop" => {
                            // Stagger thread schedules so aggregate sends
                            // spread evenly instead of arriving in bursts.
                            let phase = interval.mul_f64(thread as f64 / threads as f64);
                            open_loop_sweep(opts, &target_for, warm_t0, interval, phase)
                        }
                        _ => oneshot_sweep(opts, &target_for),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or((Vec::new(), 0, 1)))
            .collect()
    });
    let warm_wall_s = warm_t0.elapsed().as_secs_f64().max(1e-9);

    let mut warm_samples = Vec::new();
    let mut warm_hits = 0u64;
    let mut warm_ok = 0u64;
    for (samples, hits, errs) in per_client {
        warm_ok += samples.len() as u64;
        warm_samples.extend(samples);
        warm_hits += hits;
        errors += errs;
    }
    let warm_requests = (threads * opts.repeat * opts.points) as u64;
    LoadReport {
        mode: mode.to_string(),
        cold_ns: QuantileSummary::from_samples(cold_samples),
        warm_ns: QuantileSummary::from_samples(warm_samples),
        errors,
        warm_hits,
        warm_requests,
        warm_rps: warm_ok as f64 / warm_wall_s,
        offered_rps: opts.rate,
        total_requests: opts.points as u64 + warm_requests,
    }
}

fn quantile_fields(q: &QuantileSummary) -> Json {
    Json::obj()
        .field("count", Json::num(q.count as f64))
        .field("min_ns", Json::num(q.min as f64))
        .field("p50_ns", Json::num(q.p50 as f64))
        .field("p99_ns", Json::num(q.p99 as f64))
        .field("max_ns", Json::num(q.max as f64))
}

/// The persisted load-run document (canonical keys).
pub fn load_json(opts: &LoadOptions, report: &LoadReport) -> Json {
    Json::obj()
        .field("suite", Json::str("serve_load"))
        .field("mode", Json::str(&report.mode))
        .field("exp", Json::str(&opts.exp))
        .field("trials", Json::num(opts.trials as f64))
        .field("clients", Json::num(opts.clients as f64))
        .field("connections", Json::num(opts.connections as f64))
        .field("pipeline", Json::num(opts.pipeline as f64))
        .field("points", Json::num(opts.points as f64))
        .field("repeat", Json::num(opts.repeat as f64))
        .field("errors", Json::num(report.errors as f64))
        .field("total_requests", Json::num(report.total_requests as f64))
        .field("warm_requests", Json::num(report.warm_requests as f64))
        .field("warm_hits", Json::num(report.warm_hits as f64))
        .field("warm_hit_rate", Json::Num(report.warm_hit_rate()))
        .field("offered_rps", Json::Num(round1(report.offered_rps)))
        .field("achieved_rps", Json::Num(round1(report.warm_rps)))
        .field("warm_rps", Json::Num(round1(report.warm_rps)))
        .field("p50_speedup", Json::Num(round1(report.p50_speedup())))
        .field("server_loops", Json::num(opts.server_loops as f64))
        .field("cold", quantile_fields(&report.cold_ns))
        .field("warm", quantile_fields(&report.warm_ns))
        .canonical()
}

/// One point of the per-loop-count scaling curve: how the achieved rate
/// tracked the offered rate when the server ran `loops` event loops.
fn scaling_entry(opts: &LoadOptions, report: &LoadReport) -> Json {
    Json::obj()
        .field("loops", Json::num(opts.server_loops as f64))
        .field("offered_rps", Json::Num(round1(report.offered_rps)))
        .field("achieved_rps", Json::Num(round1(report.warm_rps)))
        .field("errors", Json::num(report.errors as f64))
        .field("warm_p50_ns", Json::num(report.warm_ns.p50 as f64))
        .field("warm_p99_ns", Json::num(report.warm_ns.p99 as f64))
}

/// The benchmark record (`BENCH_serve.json`): this run's load document,
/// plus a `scaling` array accumulated *across* runs — one entry per
/// server loop count, recording the open-loop offered-vs-achieved curve.
///
/// `previous` is the parsed prior record (if any): its `scaling` entries
/// are always carried forward, so the headline run re-written last does
/// not erase the curve. When this run was open-loop against a server with
/// a known loop count (`--server-loops`), its entry replaces the one with
/// the same `loops` value; entries stay sorted by `loops`.
pub fn bench_serve_json(opts: &LoadOptions, report: &LoadReport, previous: Option<&Json>) -> Json {
    let entry_loops = |entry: &Json| match json::get(entry, "loops") {
        Some(Json::Num(n)) => *n,
        _ => -1.0,
    };
    let mut scaling: Vec<Json> = match previous.and_then(|doc| json::get(doc, "scaling")) {
        Some(Json::Arr(entries)) => entries.clone(),
        _ => Vec::new(),
    };
    if opts.mode() == "openloop" && opts.server_loops > 0 {
        let fresh = scaling_entry(opts, report);
        scaling.retain(|entry| entry_loops(entry) != opts.server_loops as f64);
        scaling.push(fresh);
    }
    scaling.sort_by(|a, b| entry_loops(a).total_cmp(&entry_loops(b)));
    let doc = load_json(opts, report);
    if scaling.is_empty() {
        doc
    } else {
        doc.field("scaling", Json::Arr(scaling)).canonical()
    }
}

fn round1(x: f64) -> f64 {
    if x.is_finite() {
        (x * 10.0).round() / 10.0
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_serves_the_registry_listing() {
        let listing = ExperimentBackend.experiments();
        assert_eq!(
            listing.len(),
            crate::ALL_EXPERIMENTS.len() + crate::scenario_exp::specs().len()
        );
        assert_eq!(listing[0].0, "e1");
        assert!(ExperimentBackend.estimate("e99", 10, 1).is_none());
    }

    #[test]
    fn rendered_result_matches_the_batch_record_document() {
        let body = rendered_result("e1", 15, 7).expect("e1 exists");
        let (_, record) = crate::runner::run_recorded("e1", 15, 7).expect("e1 exists");
        assert_eq!(body, record.result_json().render_pretty() + "\n");
    }

    #[test]
    fn load_report_derives_rates_safely() {
        let report = LoadReport {
            mode: "persistent".to_string(),
            cold_ns: QuantileSummary::from_samples(vec![1000, 2000]),
            warm_ns: QuantileSummary::from_samples(vec![100]),
            errors: 0,
            warm_hits: 9,
            warm_requests: 10,
            warm_rps: 123.4,
            offered_rps: 0.0,
            total_requests: 12,
        };
        assert!((report.warm_hit_rate() - 0.9).abs() < 1e-12);
        assert!((report.p50_speedup() - 20.0).abs() < 1e-12);
        let doc = load_json(&LoadOptions::default(), &report).render();
        assert!(doc.contains("\"warm_hit_rate\":0.9"));
        assert!(doc.contains("\"mode\":\"persistent\""));
        assert!(doc.contains("\"achieved_rps\":123.4"));
    }

    #[test]
    fn bench_record_accumulates_a_scaling_curve_across_runs() {
        let report = |offered: f64, achieved: f64| LoadReport {
            mode: "openloop".to_string(),
            cold_ns: QuantileSummary::from_samples(vec![1000]),
            warm_ns: QuantileSummary::from_samples(vec![100, 200]),
            errors: 0,
            warm_hits: 10,
            warm_requests: 10,
            warm_rps: achieved,
            offered_rps: offered,
            total_requests: 12,
        };
        let opts = |loops: usize| LoadOptions {
            rate: 5000.0,
            connections: 2,
            server_loops: loops,
            ..LoadOptions::default()
        };

        // Three open-loop runs at different loop counts, out of order:
        // each upserts its own entry and carries the others forward.
        let one = bench_serve_json(&opts(1), &report(5000.0, 4800.0), None);
        let four = bench_serve_json(&opts(4), &report(5000.0, 4990.0), Some(&one));
        let two = bench_serve_json(&opts(2), &report(5000.0, 4900.0), Some(&four));
        let Some(Json::Arr(curve)) = json::get(&two, "scaling") else {
            panic!("scaling array present");
        };
        let loops: Vec<f64> = curve
            .iter()
            .map(|e| match json::get(e, "loops") {
                Some(Json::Num(n)) => *n,
                _ => panic!("entry has loops"),
            })
            .collect();
        assert_eq!(loops, vec![1.0, 2.0, 4.0], "entries sorted by loop count");

        // Re-running a loop count replaces its entry instead of duplicating.
        let again = bench_serve_json(&opts(2), &report(6000.0, 5500.0), Some(&two));
        let Some(Json::Arr(curve)) = json::get(&again, "scaling") else {
            panic!("scaling array present");
        };
        assert_eq!(curve.len(), 3);
        let entry = curve
            .iter()
            .find(|e| json::get(e, "loops") == Some(&Json::Num(2.0)))
            .expect("loops=2 entry");
        assert_eq!(json::get(entry, "offered_rps"), Some(&Json::Num(6000.0)));

        // A closed-loop headline run (no --server-loops) still carries the
        // whole curve forward, adding nothing.
        let headline = LoadOptions {
            connections: 2,
            ..LoadOptions::default()
        };
        let final_doc = bench_serve_json(&headline, &report(0.0, 7000.0), Some(&again));
        let Some(Json::Arr(carried)) = json::get(&final_doc, "scaling") else {
            panic!("scaling carried forward");
        };
        assert_eq!(carried.len(), 3);

        // And with no history and no loop count, there is no scaling key.
        let bare = bench_serve_json(&headline, &report(0.0, 7000.0), None);
        assert!(json::get(&bare, "scaling").is_none());
    }

    #[test]
    fn mode_selection_follows_rate_then_connections() {
        let mut opts = LoadOptions::default();
        assert_eq!(opts.mode(), "oneshot");
        opts.connections = 4;
        assert_eq!(opts.mode(), "persistent");
        opts.rate = 1000.0;
        assert_eq!(opts.mode(), "openloop");
    }
}
