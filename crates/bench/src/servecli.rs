//! Glue between the experiment registry and `fair-serve`: the
//! [`ExperimentBackend`] the `fair-serve` binary hosts, and the
//! closed-loop load generator behind `fair-load`.
//!
//! The backend renders the **deterministic result document**
//! ([`fair_simlab::result_json`]) — the same canonical subset the batch
//! runner persists — so a served body for `(exp, trials, seed)` is
//! byte-identical to the corresponding batch record, cold or cached.

use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::Instant;

use fair_serve::service::Backend;
use fair_serve::{client, HttpReply, ProgressUpdate};
use fair_simlab::json::Json;
use fair_trace::QuantileSummary;

/// Where `fair-load` persists its full run record.
pub const LOAD_RECORD_PATH: &str = "target/simlab/serve_load.json";

/// The repo-root serving benchmark record (rps + latency quantiles,
/// cold vs warm), tracked across commits like `BENCH_reproduce.json`.
pub const BENCH_SERVE_PATH: &str = "BENCH_serve.json";

/// The real registry as a serve backend.
pub struct ExperimentBackend;

impl Backend for ExperimentBackend {
    fn experiments(&self) -> Vec<(String, String)> {
        crate::experiment_listing()
            .into_iter()
            .map(|(id, title)| (id.to_string(), title.to_string()))
            .collect()
    }

    fn estimate(&self, exp: &str, trials: usize, seed: u64) -> Option<String> {
        rendered_result(exp, trials, seed)
    }

    fn estimate_progressive(
        &self,
        exp: &str,
        trials: usize,
        seed: u64,
        epsilon: f64,
        emit: &mut dyn FnMut(ProgressUpdate),
    ) -> Option<String> {
        progressive_result(exp, trials, seed, epsilon, emit)
    }
}

/// Runs `(exp, trials, seed)` and renders its canonical result document —
/// the exact bytes both the serve path and the byte-identity tests use.
/// The run enters the `(exp, seed)` tile-cache group, so when a tile store
/// is installed, previously computed 64-trial tiles are reused and newly
/// computed ones are recorded.
pub fn rendered_result(exp: &str, trials: usize, seed: u64) -> Option<String> {
    let reports = fair_tiles::with_group(exp, seed, || crate::run_experiment(exp, trials, seed))?;
    let records = crate::runner::to_report_records(&reports);
    Some(fair_simlab::result_json(exp, trials, seed, &records).render_pretty() + "\n")
}

/// Runs `(exp, trials, seed)` adaptively — each `estimate()` inside the
/// experiment stops once its 95% half-width reaches `epsilon` — invoking
/// `emit` with a progress frame per tile batch. Returns the wrapper
/// document: the adaptive accounting plus the canonical result for the
/// trials actually spent. The computation runs on a worker thread so the
/// caller's `emit` (which may be writing to a live socket) observes frames
/// as they happen.
pub fn progressive_result(
    exp: &str,
    trials: usize,
    seed: u64,
    epsilon: f64,
    emit: &mut dyn FnMut(ProgressUpdate),
) -> Option<String> {
    if !crate::experiment_listing().iter().any(|(id, _)| *id == exp) {
        return None;
    }
    let (tx, rx) = mpsc::channel();
    let (reports, summary) = std::thread::scope(|scope| {
        let worker = scope.spawn(move || {
            fair_core::progressive::scoped(epsilon, Some(tx), || {
                fair_tiles::with_group(exp, seed, || crate::run_experiment(exp, trials, seed))
            })
        });
        // Relay frames while the worker runs; the channel closes when the
        // scoped context (and its Sender) drops.
        for update in rx {
            emit(ProgressUpdate {
                scenario: update.scenario,
                requested: update.requested,
                trials: update.trials,
                mean: update.mean,
                ci: update.ci,
                done: update.done,
            });
        }
        worker.join().unwrap_or((None, Default::default()))
    });
    let reports = reports?;
    let records = crate::runner::to_report_records(&reports);
    let adaptive = fair_simlab::AdaptiveSummary {
        epsilon,
        estimates: summary.estimates,
        early_stops: summary.early_stops,
        trials_requested: summary.trials_requested,
        trials_used: summary.trials_used,
    };
    let doc = Json::obj()
        .field("adaptive", adaptive.to_json())
        .field(
            "result",
            fair_simlab::result_json(exp, trials, seed, &records),
        )
        .canonical();
    Some(doc.render_pretty() + "\n")
}

/// Parameters of one `fair-load` run.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent closed-loop clients in the warm phase.
    pub clients: usize,
    /// Distinct parameter points (seeds `0..points`).
    pub points: usize,
    /// Warm passes over the whole point set per client.
    pub repeat: usize,
    /// Experiment id to query.
    pub exp: String,
    /// Trials per estimate.
    pub trials: usize,
}

impl Default for LoadOptions {
    fn default() -> LoadOptions {
        LoadOptions {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            clients: 4,
            points: 6,
            repeat: 8,
            exp: "e1".to_string(),
            trials: 50,
        }
    }
}

/// What a load run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Latency quantiles of the cold phase (nanoseconds per request).
    pub cold_ns: QuantileSummary,
    /// Latency quantiles of the warm phase (nanoseconds per request).
    pub warm_ns: QuantileSummary,
    /// Requests that failed (transport error or non-200).
    pub errors: u64,
    /// Warm responses served from the cache (`X-Cache: hit`/`wait`).
    pub warm_hits: u64,
    /// Warm requests issued.
    pub warm_requests: u64,
    /// Warm-phase throughput, requests per second.
    pub warm_rps: f64,
    /// Total requests issued across both phases.
    pub total_requests: u64,
}

impl LoadReport {
    /// Warm cache hit rate in `[0, 1]`.
    pub fn warm_hit_rate(&self) -> f64 {
        if self.warm_requests == 0 {
            0.0
        } else {
            self.warm_hits as f64 / self.warm_requests as f64
        }
    }

    /// How many times faster the warm median is than the cold median.
    pub fn p50_speedup(&self) -> f64 {
        if self.warm_ns.p50 == 0 {
            f64::INFINITY
        } else {
            self.cold_ns.p50 as f64 / self.warm_ns.p50 as f64
        }
    }
}

fn timed_get(addr: SocketAddr, target: &str) -> (u64, Option<HttpReply>) {
    let t0 = Instant::now();
    let reply = client::get(addr, target);
    let ns = t0.elapsed().as_nanos() as u64;
    (ns, reply.ok())
}

/// Drives the closed-loop load: a sequential **cold phase** touching each
/// point once (every request a miss on a fresh server), then a concurrent
/// **warm phase** where `clients` threads each sweep the same points
/// `repeat` times (every request a cache hit). Closed-loop means each
/// client issues its next request only after the previous one completes,
/// so offered load adapts to service rate instead of overrunning it.
pub fn run_load(opts: &LoadOptions) -> LoadReport {
    let target_for = |seed: usize| {
        format!(
            "/estimate?exp={}&trials={}&seed={seed}",
            opts.exp, opts.trials
        )
    };

    let mut errors = 0u64;
    let mut cold_samples = Vec::with_capacity(opts.points);
    for seed in 0..opts.points {
        let (ns, reply) = timed_get(opts.addr, &target_for(seed));
        match reply {
            Some(r) if r.status == 200 => cold_samples.push(ns),
            _ => errors += 1,
        }
    }

    let warm_t0 = Instant::now();
    let per_client: Vec<(Vec<u64>, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients.max(1))
            .map(|_| {
                let target_for = &target_for;
                scope.spawn(move || {
                    let mut samples = Vec::with_capacity(opts.repeat * opts.points);
                    let mut hits = 0u64;
                    let mut errors = 0u64;
                    for _ in 0..opts.repeat {
                        for seed in 0..opts.points {
                            let (ns, reply) = timed_get(opts.addr, &target_for(seed));
                            match reply {
                                Some(r) if r.status == 200 => {
                                    samples.push(ns);
                                    if matches!(r.header("x-cache"), Some("hit") | Some("wait")) {
                                        hits += 1;
                                    }
                                }
                                _ => errors += 1,
                            }
                        }
                    }
                    (samples, hits, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or((Vec::new(), 0, 1)))
            .collect()
    });
    let warm_wall_s = warm_t0.elapsed().as_secs_f64().max(1e-9);

    let mut warm_samples = Vec::new();
    let mut warm_hits = 0u64;
    for (samples, hits, errs) in per_client {
        warm_samples.extend(samples);
        warm_hits += hits;
        errors += errs;
    }
    let warm_requests = (opts.clients.max(1) * opts.repeat * opts.points) as u64;
    LoadReport {
        cold_ns: QuantileSummary::from_samples(cold_samples),
        warm_ns: QuantileSummary::from_samples(warm_samples),
        errors,
        warm_hits,
        warm_requests,
        warm_rps: warm_requests as f64 / warm_wall_s,
        total_requests: opts.points as u64 + warm_requests,
    }
}

fn quantile_fields(q: &QuantileSummary) -> Json {
    Json::obj()
        .field("count", Json::num(q.count as f64))
        .field("min_ns", Json::num(q.min as f64))
        .field("p50_ns", Json::num(q.p50 as f64))
        .field("p99_ns", Json::num(q.p99 as f64))
        .field("max_ns", Json::num(q.max as f64))
}

/// The persisted load-run document (canonical keys).
pub fn load_json(opts: &LoadOptions, report: &LoadReport) -> Json {
    Json::obj()
        .field("suite", Json::str("serve_load"))
        .field("exp", Json::str(&opts.exp))
        .field("trials", Json::num(opts.trials as f64))
        .field("clients", Json::num(opts.clients as f64))
        .field("points", Json::num(opts.points as f64))
        .field("repeat", Json::num(opts.repeat as f64))
        .field("errors", Json::num(report.errors as f64))
        .field("total_requests", Json::num(report.total_requests as f64))
        .field("warm_requests", Json::num(report.warm_requests as f64))
        .field("warm_hits", Json::num(report.warm_hits as f64))
        .field("warm_hit_rate", Json::Num(report.warm_hit_rate()))
        .field("warm_rps", Json::Num(round1(report.warm_rps)))
        .field("p50_speedup", Json::Num(round1(report.p50_speedup())))
        .field("cold", quantile_fields(&report.cold_ns))
        .field("warm", quantile_fields(&report.warm_ns))
        .canonical()
}

fn round1(x: f64) -> f64 {
    if x.is_finite() {
        (x * 10.0).round() / 10.0
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_serves_the_registry_listing() {
        let listing = ExperimentBackend.experiments();
        assert_eq!(listing.len(), crate::ALL_EXPERIMENTS.len());
        assert_eq!(listing[0].0, "e1");
        assert!(ExperimentBackend.estimate("e99", 10, 1).is_none());
    }

    #[test]
    fn rendered_result_matches_the_batch_record_document() {
        let body = rendered_result("e1", 15, 7).expect("e1 exists");
        let (_, record) = crate::runner::run_recorded("e1", 15, 7).expect("e1 exists");
        assert_eq!(body, record.result_json().render_pretty() + "\n");
    }

    #[test]
    fn load_report_derives_rates_safely() {
        let report = LoadReport {
            cold_ns: QuantileSummary::from_samples(vec![1000, 2000]),
            warm_ns: QuantileSummary::from_samples(vec![100]),
            errors: 0,
            warm_hits: 9,
            warm_requests: 10,
            warm_rps: 123.4,
            total_requests: 12,
        };
        assert!((report.warm_hit_rate() - 0.9).abs() < 1e-12);
        assert!((report.p50_speedup() - 20.0).abs() < 1e-12);
        let doc = load_json(&LoadOptions::default(), &report).render();
        assert!(doc.contains("\"warm_hit_rate\":0.9"));
    }
}
