//! Experiment E16 (see DESIGN.md); equivalent to `reproduce -- e16`.

fn main() {
    fair_bench::runner::exp_main("e16");
}
