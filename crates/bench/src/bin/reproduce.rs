#![allow(clippy::print_stdout)]
//! Reproduces the paper's quantitative claims: runs the requested
//! experiments (default: all) through the `fair-simlab` scheduler and
//! prints paper-vs-measured tables plus run observability.
//!
//! Usage:
//!   `cargo run --release -p fair-bench --bin reproduce -- [FLAGS] [e1 e5 …]`
//!
//! Flags:
//!   `--jobs N`      worker threads for trial sharding (default: 1, or
//!                   `FAIR_JOBS`); tallies are bit-identical for every N
//!   `--json PATH`   write the aggregate run record to PATH
//!   `--epsilon F`   adaptive precision target: stop each estimate once
//!                   its 95% CI half-width reaches F; records report
//!                   trials used vs requested in their `adaptive` block
//!   `--tiles`       persist full 64-trial tiles under
//!                   `target/simlab/tiles/` and reuse any already there,
//!                   so repeat runs only compute what is missing
//!   `--list`        list experiment ids with descriptions and exit
//!   `--markdown`    render tables as GitHub markdown
//!   `--trace`       capture sample transcripts per experiment under
//!                   `target/simlab/trace/` (replayable via `fair-trace`)
//!
//! Trials per estimate default to 1000; override with `FAIR_TRIALS`.
//! Per-experiment records always land in `target/simlab/<exp>.json`.

use fair_bench::runner::{run_suite, SuiteOptions, BASE_SEED};

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [--jobs N] [--json PATH] [--epsilon F] [--tiles] [--markdown]\n\
         \x20                [--trace] [--list] [EXPERIMENT ...]\n\
         experiment ids: e1 .. e17 plus scenario-derived s_* entries\n\
         (default: all); see --list"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut markdown = false;
    let mut trace = false;
    let mut tiles = false;
    let mut json = None;
    let mut epsilon = None;
    let mut ids: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--markdown" => markdown = true,
            "--trace" => trace = true,
            "--list" => {
                // The shared registry listing — `fair-trace list` prints
                // the same lines, so both tools name experiments
                // identically.
                for (id, title) in fair_bench::experiment_listing() {
                    println!("{id:<4} {title}");
                }
                return;
            }
            "--jobs" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("error: --jobs needs a value");
                    usage()
                });
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => fair_simlab::set_jobs(n),
                    _ => {
                        eprintln!(
                            "error: invalid --jobs value {value:?} (want a positive integer)"
                        );
                        usage()
                    }
                }
            }
            "--json" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("error: --json needs a path");
                    usage()
                });
                json = Some(std::path::PathBuf::from(value));
            }
            "--epsilon" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("error: --epsilon needs a value");
                    usage()
                });
                match value.parse::<f64>() {
                    Ok(e) if e.is_finite() && e >= 0.0 => epsilon = Some(e),
                    _ => {
                        eprintln!(
                            "error: invalid --epsilon value {value:?} \
                             (want a finite non-negative number)"
                        );
                        usage()
                    }
                }
            }
            "--tiles" => tiles = true,
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag {flag:?}");
                usage()
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        ids = fair_bench::all_experiment_ids();
    }
    if tiles {
        // Warm from whatever previous runs (or a serve instance sharing
        // the directory) left behind; run_suite flushes new tiles at the
        // end.
        let store = fair_tiles::Store::persistent(fair_tiles::DEFAULT_DIR);
        let loaded = store.load();
        fair_tiles::cache::install(std::sync::Arc::new(store));
        eprintln!(
            "[simlab] tile store {}: {} record(s) loaded from {} file(s)",
            fair_tiles::DEFAULT_DIR,
            loaded.loaded_records,
            loaded.files,
        );
    }
    let opts = SuiteOptions {
        ids,
        trials: fair_bench::default_trials(),
        seed: BASE_SEED,
        markdown,
        json,
        trace,
        epsilon,
    };
    let suite = match run_suite(&opts) {
        Ok(suite) => suite,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "[simlab] suite: {} experiments, {} trials each, {} jobs, {:.1}s total",
        suite.experiments.len(),
        suite.trials,
        suite.jobs,
        suite.total_wall_ms / 1000.0
    );
    println!(
        "overall: {}",
        if suite.pass {
            "ALL CLAIMS REPRODUCED ✓"
        } else {
            "SOME CLAIMS FAILED ✗"
        }
    );
    if !suite.pass {
        std::process::exit(1);
    }
}
