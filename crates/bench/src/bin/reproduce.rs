//! Reproduces the paper's quantitative claims: runs the requested
//! experiments (default: all) and prints paper-vs-measured tables.
//!
//! Usage: `cargo run --release -p fair-bench --bin reproduce [-- e1 e5 …]`
//! Trials per estimate default to 1000; override with `FAIR_TRIALS`.

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    args.retain(|a| a != "--markdown");
    let ids: Vec<&str> = if args.is_empty() {
        fair_bench::ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let trials = fair_bench::default_trials();
    let mut all_pass = true;
    for id in ids {
        match fair_bench::run_experiment(id, trials, 0xfa1e) {
            Some(reports) => {
                for r in reports {
                    if markdown {
                        println!("{}", r.render_markdown());
                    } else {
                        println!("{}", r.render());
                    }
                    all_pass &= r.pass();
                }
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                std::process::exit(2);
            }
        }
    }
    println!("overall: {}", if all_pass { "ALL CLAIMS REPRODUCED ✓" } else { "SOME CLAIMS FAILED ✗" });
    if !all_pass {
        std::process::exit(1);
    }
}
