//! Experiment E10 (see DESIGN.md); equivalent to `reproduce -- e10`.

fn main() {
    fair_bench::runner::exp_main("e10");
}
