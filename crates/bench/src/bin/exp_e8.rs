//! Experiment E8 (see DESIGN.md); equivalent to `reproduce -- e8`.

fn main() {
    fair_bench::runner::exp_main("e8");
}
