//! Experiment E7 (see DESIGN.md); equivalent to `reproduce -- e7`.

fn main() {
    fair_bench::runner::exp_main("e7");
}
