//! Experiment E17 (see DESIGN.md); equivalent to `reproduce -- e17`.

fn main() {
    fair_bench::runner::exp_main("e17");
}
