//! Experiment E11 (see DESIGN.md); equivalent to `reproduce -- e11`.

fn main() {
    let trials = fair_bench::default_trials();
    let reports = fair_bench::run_experiment("e11", trials, 0xfa1e).expect("known experiment");
    let mut pass = true;
    for r in reports {
        println!("{}", r.render());
        pass &= r.pass();
    }
    if !pass {
        std::process::exit(1);
    }
}
