//! Experiment E11 (see DESIGN.md); equivalent to `reproduce -- e11`.

fn main() {
    fair_bench::runner::exp_main("e11");
}
