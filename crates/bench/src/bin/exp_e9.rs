//! Experiment E9 (see DESIGN.md); equivalent to `reproduce -- e9`.

fn main() {
    fair_bench::runner::exp_main("e9");
}
