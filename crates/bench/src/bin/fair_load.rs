#![allow(clippy::print_stdout)]
//! `fair-load` — closed-loop load generator for a `fair-serve` instance.
//!
//! Usage:
//!   `fair-load --addr 127.0.0.1:<port> [FLAGS]`
//!   `fair-load get --addr 127.0.0.1:<port> --target /estimate?exp=e1 [--out PATH]`
//!   `fair-load shutdown --addr 127.0.0.1:<port>`
//!
//! The `get` subcommand issues one request and prints `STATUS=<code>` plus
//! `X-CACHE=<flavor>` (when the header is present) on stdout; the body
//! goes to `--out` when given (atomically), to stdout otherwise. Scripts
//! use it to probe cache warmth and compare bodies byte-for-byte across
//! server restarts.
//!
//! Flags:
//!   `--clients N`   concurrent closed-loop clients (default 4)
//!   `--connections N`  persistent keep-alive connections for the warm
//!                   phase (default 0 = fresh connection per request)
//!   `--pipeline N`  requests pipelined per batch on each persistent
//!                   connection (default 1 = strict request/reply)
//!   `--rate R`      open-loop offered rate, requests/second across all
//!                   connections (default 0 = closed loop); latency is
//!                   measured from the scheduled send instant
//!   `--server-loops N`  event loops the server under test runs (default
//!                   0 = unrecorded); with `--rate`, the benchmark
//!                   record's per-loop-count `scaling` curve gains this
//!                   run's offered-vs-achieved entry
//!   `--points N`    distinct parameter points, seeds `0..N` (default 6)
//!   `--repeat N`    warm sweeps over the point set per client (default 8)
//!   `--exp ID`      experiment to query (default `e1`)
//!   `--trials N`    trials per estimate (default 50)
//!   `--out PATH`    load record path (default `target/simlab/serve_load.json`)
//!   `--bench-out PATH`  benchmark record path (default `BENCH_serve.json`)
//!   `--check`       exit nonzero unless the run had 0 errors and a
//!                   nonzero warm cache hit rate (the CI smoke gate)
//!
//! The run is two-phase: a sequential cold sweep (each point computed
//! once), then `threads × repeat × points` warm requests that must be
//! served from the cache (threads = `--clients` in one-shot mode,
//! `--connections` otherwise). Both records carry offered/achieved rps
//! and cold/warm latency quantiles; `p50_speedup` is the cold-vs-warm
//! median ratio.

use std::net::SocketAddr;
use std::path::PathBuf;

use fair_bench::servecli::{
    bench_serve_json, load_json, run_load, LoadOptions, BENCH_SERVE_PATH, LOAD_RECORD_PATH,
};
use fair_serve::client;
use fair_simlab::json;

fn usage() -> ! {
    eprintln!(
        "usage: fair-load --addr A [--clients N] [--connections N] [--pipeline N]\n\
         \x20                [--rate R] [--server-loops N] [--points N] [--repeat N]\n\
         \x20                [--exp ID] [--trials N] [--out PATH] [--bench-out PATH]\n\
         \x20                [--check]\n\
         \x20      fair-load get --addr A --target T [--out PATH]\n\
         \x20      fair-load shutdown --addr A"
    );
    std::process::exit(2);
}

fn parsed<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let raw = value.unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        usage()
    });
    raw.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid {flag} value {raw:?}");
        usage()
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let subcommand = match args.first().map(String::as_str) {
        Some(sub @ ("shutdown" | "get")) => {
            let sub = sub.to_string();
            args.remove(0);
            Some(sub)
        }
        _ => None,
    };
    let shutdown = subcommand.as_deref() == Some("shutdown");
    let single_get = subcommand.as_deref() == Some("get");

    let mut opts = LoadOptions::default();
    let mut addr: Option<SocketAddr> = None;
    let mut out = PathBuf::from(LOAD_RECORD_PATH);
    let mut out_given = false;
    let mut bench_out = PathBuf::from(BENCH_SERVE_PATH);
    let mut target: Option<String> = None;
    let mut check = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(parsed("--addr", it.next())),
            "--clients" => opts.clients = parsed("--clients", it.next()),
            "--connections" => opts.connections = parsed("--connections", it.next()),
            "--pipeline" => opts.pipeline = parsed("--pipeline", it.next()),
            "--rate" => opts.rate = parsed("--rate", it.next()),
            "--server-loops" => opts.server_loops = parsed("--server-loops", it.next()),
            "--points" => opts.points = parsed("--points", it.next()),
            "--repeat" => opts.repeat = parsed("--repeat", it.next()),
            "--exp" => opts.exp = parsed("--exp", it.next()),
            "--trials" => opts.trials = parsed("--trials", it.next()),
            "--out" => {
                out = parsed("--out", it.next());
                out_given = true;
            }
            "--bench-out" => bench_out = parsed("--bench-out", it.next()),
            "--target" => target = Some(parsed("--target", it.next())),
            "--check" => check = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage()
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("error: --addr is required");
        usage()
    };
    opts.addr = addr;

    if single_get {
        let Some(target) = target else {
            eprintln!("error: get needs --target");
            usage()
        };
        let reply = match client::get(addr, &target) {
            Ok(reply) => reply,
            Err(e) => {
                eprintln!("error: {addr}{target} unreachable: {e}");
                std::process::exit(1);
            }
        };
        println!("STATUS={}", reply.status);
        if let Some(flavor) = reply.header("x-cache") {
            println!("X-CACHE={flavor}");
        }
        if out_given {
            match fair_tiles::atomic_write(&out, &reply.body) {
                Ok(()) => eprintln!("[load] wrote {}", out.display()),
                Err(e) => {
                    eprintln!("error: could not write {}: {e}", out.display());
                    std::process::exit(1);
                }
            }
        } else {
            print!("{}", String::from_utf8_lossy(&reply.body));
        }
        if reply.status != 200 {
            std::process::exit(1);
        }
        return;
    }

    if shutdown {
        match client::post(addr, "/shutdown") {
            Ok(reply) if reply.status == 200 => {
                eprintln!("[load] {addr} acknowledged shutdown");
            }
            Ok(reply) => {
                eprintln!("error: shutdown got HTTP {}", reply.status);
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: shutdown unreachable: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let report = run_load(&opts);
    let doc = load_json(&opts, &report).render_pretty() + "\n";
    // The benchmark record accumulates the per-loop-count scaling curve
    // across runs; parse the previous record (if any) so this write
    // carries it forward.
    let previous = std::fs::read_to_string(&bench_out)
        .ok()
        .and_then(|raw| json::parse(&raw).ok());
    let bench_doc = bench_serve_json(&opts, &report, previous.as_ref()).render_pretty() + "\n";
    for (path, body) in [(&out, &doc), (&bench_out, &bench_doc)] {
        match fair_tiles::atomic_write(path, body.as_bytes()) {
            Ok(()) => eprintln!("[load] wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
    let offered = if report.offered_rps > 0.0 {
        format!(" (offered {:.0})", report.offered_rps)
    } else {
        String::new()
    };
    println!(
        "load[{}]: {} requests, {} errors, warm hit rate {:.0}%, {:.0} rps warm{}, \
         cold p50 {:.2}ms vs warm p50 {:.3}ms ({:.0}x)",
        report.mode,
        report.total_requests,
        report.errors,
        report.warm_hit_rate() * 100.0,
        report.warm_rps,
        offered,
        report.cold_ns.p50 as f64 / 1e6,
        report.warm_ns.p50 as f64 / 1e6,
        report.p50_speedup(),
    );
    if check && (report.errors > 0 || report.warm_hits == 0) {
        eprintln!(
            "error: --check failed ({} errors, {} warm hits)",
            report.errors, report.warm_hits
        );
        std::process::exit(1);
    }
}
