#![allow(clippy::print_stdout)]
//! `fair-serve` — serves the experiment registry over HTTP.
//!
//! Usage:
//!   `cargo run --release -p fair-bench --bin fair-serve -- [FLAGS]`
//!
//! Flags:
//!   `--addr A`          bind address (default `127.0.0.1:0` = ephemeral)
//!   `--loops N`         event loops, accept-sharded via `SO_REUSEPORT`
//!                       (default: available parallelism)
//!   `--workers N`       worker threads (default 4)
//!   `--queue N`         bounded job-queue capacity (default 64)
//!   `--deadline-ms N`   per-request deadline (default 30000)
//!   `--keepalive-ms N`  idle keep-alive connection timeout (default 10000)
//!   `--max-trials N`    largest accepted `trials` (default 100000)
//!   `--default-trials N` trials when the request omits them (default 200)
//!   `--metrics-out P`   flush the final metrics snapshot to P on shutdown
//!   `--tiles-dir P`     persistent tile-store directory (default
//!                       `target/simlab/tiles`): full 64-trial tiles are
//!                       warmed from disk at boot and flushed after cold
//!                       computes, so estimates survive restarts
//!   `--no-tiles`        run without a persistent tile store
//!
//! Prints `PORT=<n>` (then `ADDR=<addr>`) on stdout once bound, so
//! scripts binding port 0 can discover the ephemeral port. Stop it with
//! `POST /shutdown` (e.g. `fair-load shutdown --addr 127.0.0.1:<n>`);
//! shutdown drains in-flight requests before the process exits.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use fair_bench::servecli::ExperimentBackend;
use fair_serve::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: fair-serve [--addr A] [--loops N] [--workers N] [--queue N] [--deadline-ms N]\n\
         \x20                 [--keepalive-ms N]\n\
         \x20                 [--max-trials N] [--default-trials N] [--metrics-out PATH]\n\
         \x20                 [--tiles-dir PATH] [--no-tiles]"
    );
    std::process::exit(2);
}

fn parsed<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let raw = value.unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        usage()
    });
    raw.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid {flag} value {raw:?}");
        usage()
    })
}

fn main() {
    // The binary defaults to a persistent tile store (the library default
    // is `None` so embedders opt in); `--no-tiles` opts back out.
    let mut config = ServerConfig {
        tiles_dir: Some(std::path::PathBuf::from(fair_tiles::DEFAULT_DIR)),
        loops: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parsed("--addr", args.next()),
            "--loops" => config.loops = parsed("--loops", args.next()),
            "--workers" => config.workers = parsed("--workers", args.next()),
            "--queue" => config.queue_cap = parsed("--queue", args.next()),
            "--deadline-ms" => {
                config.deadline = Duration::from_millis(parsed("--deadline-ms", args.next()));
            }
            "--keepalive-ms" => {
                config.keepalive_timeout =
                    Duration::from_millis(parsed("--keepalive-ms", args.next()));
            }
            "--max-trials" => config.service.max_trials = parsed("--max-trials", args.next()),
            "--default-trials" => {
                config.service.default_trials = parsed("--default-trials", args.next());
            }
            "--metrics-out" => {
                config.metrics_path =
                    Some(parsed::<std::path::PathBuf>("--metrics-out", args.next()));
            }
            "--tiles-dir" => {
                config.tiles_dir = Some(parsed::<std::path::PathBuf>("--tiles-dir", args.next()));
            }
            "--no-tiles" => config.tiles_dir = None,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage()
            }
        }
    }

    // Collect per-protocol trace metrics for the lifetime of the server;
    // `/metrics` snapshots them live and shutdown flushes them.
    fair_trace::metrics::set_enabled(true);

    let tiles_note = config.tiles_dir.as_ref().map(|p| p.display().to_string());
    let server = match Server::bind(config, Arc::new(ExperimentBackend)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: could not bind: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.local_addr();
    println!("PORT={}", addr.port());
    println!("ADDR={addr}");
    let _ = std::io::stdout().flush();
    eprintln!(
        "[serve] listening on {addr}; {} event loop(s), accept sharding: {}; \
         stop with POST /shutdown",
        server.loops(),
        server.sharding().name()
    );
    match tiles_note {
        Some(dir) => eprintln!("[serve] persistent tile store at {dir}"),
        None => eprintln!("[serve] tile store disabled (--no-tiles)"),
    }

    if let Err(e) = server.run() {
        eprintln!("error: server failed: {e}");
        std::process::exit(1);
    }
    eprintln!("[serve] drained and stopped");
}
