//! Experiment E5 (see DESIGN.md); equivalent to `reproduce -- e5`.

fn main() {
    fair_bench::runner::exp_main("e5");
}
