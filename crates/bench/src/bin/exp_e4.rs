//! Experiment E4 (see DESIGN.md); equivalent to `reproduce -- e4`.

fn main() {
    fair_bench::runner::exp_main("e4");
}
