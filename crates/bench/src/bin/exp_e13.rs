//! Experiment E13 (see DESIGN.md); equivalent to `reproduce -- e13`.

fn main() {
    fair_bench::runner::exp_main("e13");
}
