#![allow(clippy::print_stdout)]
//! `fair-trace` — record, replay, inspect, and rank per-trial engine
//! transcripts for the experiment suite.
//!
//! Usage:
//!   `fair-trace <COMMAND> [ARGS] [FLAGS]`
//!
//! Commands:
//!   `list`                     runnable targets (registry experiments +
//!                              protocol sweeps), named exactly as in
//!                              `reproduce --list`
//!   `record <TARGET>`          run TARGET (single job) and persist sample
//!                              transcripts under `--dir/<TARGET>/`
//!   `replay [TARGET]`          re-execute every recorded `(target, seed)`
//!                              pair and byte-diff against the recording;
//!                              nonzero exit on any divergence
//!   `show <FILE>`              print a recorded trace file (`--json` for
//!                              a structured rendering)
//!   `diff <FILE> <FILE>`       first-divergence diff of two trace files;
//!                              exit 1 if they differ
//!   `top <TARGET>`             run TARGET with stats-only tracing on
//!                              every trial and print the heaviest trials
//!
//! Flags:
//!   `--trials N`   trials per estimate (default `FAIR_TRIALS` or 1000)
//!   `--sample K`   transcripts to record / rows to print (default 4)
//!   `--dir PATH`   trace directory (default `target/simlab/trace`)
//!   `--by DIM`     `top` ranking dimension: rounds | msgs | bytes
//!   `--jobs N`     worker threads for replay/top re-execution
//!   `--json`       structured output for show/top
//!
//! Replay is jobs-independent: trial seeds are pure functions of the trial
//! index, so the recorded trial is re-selected bit-identically under any
//! `--jobs` value.

use std::path::PathBuf;

use fair_bench::runner::BASE_SEED;
use fair_bench::tracecli::{self, record, replay_file, top, trace_files, TopBy, TRACE_DIR};

fn usage() -> ! {
    eprintln!(
        "usage: fair-trace <command> [args] [flags]\n\
         commands:\n\
         \x20 list                 runnable targets\n\
         \x20 record <target>      record sample transcripts (single job)\n\
         \x20 replay [target]      re-execute and diff all recordings\n\
         \x20 show <file>          print a trace file (--json available)\n\
         \x20 diff <a> <b>         first-divergence diff of two trace files\n\
         \x20 top <target>         heaviest trials by --by rounds|msgs|bytes\n\
         flags: --trials N  --sample K  --dir PATH  --by DIM  --jobs N  --json"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

struct Opts {
    positional: Vec<String>,
    trials: usize,
    sample: usize,
    dir: PathBuf,
    by: TopBy,
    json: bool,
}

fn parse_opts(args: impl Iterator<Item = String>) -> Opts {
    let mut opts = Opts {
        positional: Vec::new(),
        trials: fair_bench::default_trials(),
        sample: 4,
        dir: PathBuf::from(TRACE_DIR),
        by: TopBy::Rounds,
        json: false,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--trials" => {
                opts.trials = match value("--trials").parse() {
                    Ok(n) if n > 0 => n,
                    _ => fail("--trials wants a positive integer"),
                }
            }
            "--sample" => {
                opts.sample = match value("--sample").parse() {
                    Ok(n) if n > 0 => n,
                    _ => fail("--sample wants a positive integer"),
                }
            }
            "--dir" => opts.dir = PathBuf::from(value("--dir")),
            "--by" => {
                let v = value("--by");
                opts.by = TopBy::parse(&v)
                    .unwrap_or_else(|| fail(&format!("--by wants rounds|msgs|bytes, got {v:?}")))
            }
            "--jobs" => match value("--jobs").parse::<usize>() {
                Ok(n) if n > 0 => fair_simlab::set_jobs(n),
                _ => fail("--jobs wants a positive integer"),
            },
            "--json" => opts.json = true,
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => fail(&format!("unknown flag {flag:?}")),
            p => opts.positional.push(p.to_string()),
        }
    }
    opts
}

fn cmd_list() {
    for (id, title) in fair_bench::experiment_listing() {
        println!("{id:<16} {title}");
    }
    for (id, title) in tracecli::PROTOCOL_TARGETS {
        println!("{id:<16} {title}");
    }
}

fn cmd_record(opts: &Opts) {
    let [target] = opts.positional.as_slice() else {
        fail("record wants exactly one target (see `fair-trace list`)");
    };
    match record(target, opts.trials, opts.sample, BASE_SEED, &opts.dir) {
        Ok(paths) => {
            for p in &paths {
                println!("{}", p.display());
            }
            eprintln!(
                "[trace] recorded {} transcript(s) of {target} ({} trials)",
                paths.len(),
                opts.trials
            );
        }
        Err(e) => fail(&e),
    }
}

fn cmd_replay(opts: &Opts) {
    let target = match opts.positional.as_slice() {
        [] => None,
        [t] => Some(t.as_str()),
        _ => fail("replay wants at most one target"),
    };
    let files = trace_files(&opts.dir, target).unwrap_or_else(|e| {
        fail(&format!(
            "cannot list {} ({e}); run `fair-trace record` first",
            opts.dir.display()
        ))
    });
    if files.is_empty() {
        fail(&format!("no .trace files under {}", opts.dir.display()));
    }
    let mut divergent = 0usize;
    for path in &files {
        match replay_file(path) {
            Ok(None) => println!("ok       {}", path.display()),
            Ok(Some(diff)) => {
                divergent += 1;
                println!("DIVERGED {}", path.display());
                println!("{diff}");
            }
            Err(e) => fail(&e),
        }
    }
    eprintln!(
        "[trace] replayed {} transcript(s), {divergent} divergent",
        files.len()
    );
    if divergent > 0 {
        std::process::exit(1);
    }
}

fn cmd_show(opts: &Opts) {
    let [path] = opts.positional.as_slice() else {
        fail("show wants exactly one trace file");
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
    if opts.json {
        let tf =
            tracecli::parse_trace_file(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        println!("{}", tracecli::trace_file_json(&tf).render_pretty());
    } else {
        print!("{text}");
    }
}

fn cmd_diff(opts: &Opts) {
    let [a, b] = opts.positional.as_slice() else {
        fail("diff wants exactly two trace files");
    };
    let read = |p: &str| std::fs::read_to_string(p).unwrap_or_else(|e| fail(&format!("{p}: {e}")));
    match fair_trace::diff_text(&read(a), &read(b)) {
        None => println!("identical"),
        Some(diff) => {
            println!("{diff}");
            std::process::exit(1);
        }
    }
}

fn cmd_top(opts: &Opts) {
    let [target] = opts.positional.as_slice() else {
        fail("top wants exactly one target (see `fair-trace list`)");
    };
    let entries =
        top(target, opts.trials, opts.sample, opts.by, BASE_SEED).unwrap_or_else(|e| fail(&e));
    if opts.json {
        println!(
            "{}",
            tracecli::top_json(target, opts.by, &entries).render_pretty()
        );
        return;
    }
    println!(
        "{:<18} {:>6} {:>6} {:>8} {:>11} {:>4}",
        "seed", "rounds", "msgs", "bytes", "corruptions", "bots"
    );
    for e in &entries {
        println!(
            "0x{:016x} {:>6} {:>6} {:>8} {:>11} {:>4}",
            e.seed, e.stats.rounds, e.stats.msgs, e.stats.bytes, e.stats.corruptions, e.stats.bots
        );
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let opts = parse_opts(args);
    match cmd.as_str() {
        "list" => cmd_list(),
        "record" => cmd_record(&opts),
        "replay" => cmd_replay(&opts),
        "show" => cmd_show(&opts),
        "diff" => cmd_diff(&opts),
        "top" => cmd_top(&opts),
        "--help" | "-h" => usage(),
        other => fail(&format!("unknown command {other:?}")),
    }
}
