//! Experiment E6 (see DESIGN.md); equivalent to `reproduce -- e6`.

fn main() {
    fair_bench::runner::exp_main("e6");
}
