//! Experiment E15 (see DESIGN.md); equivalent to `reproduce -- e15`.

fn main() {
    fair_bench::runner::exp_main("e15");
}
