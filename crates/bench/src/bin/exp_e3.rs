//! Experiment E3 (see DESIGN.md); equivalent to `reproduce -- e3`.

fn main() {
    fair_bench::runner::exp_main("e3");
}
