//! Experiment E2 (see DESIGN.md); equivalent to `reproduce -- e2`.

fn main() {
    fair_bench::runner::exp_main("e2");
}
