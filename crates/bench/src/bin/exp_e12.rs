//! Experiment E12 (see DESIGN.md); equivalent to `reproduce -- e12`.

fn main() {
    fair_bench::runner::exp_main("e12");
}
