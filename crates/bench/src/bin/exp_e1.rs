//! Experiment E1 (see DESIGN.md); equivalent to `reproduce -- e1`.

fn main() {
    fair_bench::runner::exp_main("e1");
}
