//! Experiment E14 (see DESIGN.md); equivalent to `reproduce -- e14`.

fn main() {
    fair_bench::runner::exp_main("e14");
}
