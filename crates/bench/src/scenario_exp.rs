//! The registry's scenario-derived leg: loads `scenarios/*.toml` through
//! the `fair-scenario` compiler once per process and runs each compiled
//! family with the same estimator machinery the static experiments use.
//!
//! The scenario directory is resolved relative to the working directory
//! first (release binaries run from the repo root), then relative to this
//! crate's manifest (`cargo test` runs with `crates/bench` as cwd). Files
//! that fail validation are simply absent from the registry — `ci.sh`
//! runs `fair-scenario check scenarios` and fairlint rule R1 keeps the
//! directory and EXPERIMENTS.md in lockstep, so a malformed file fails
//! the build loudly rather than silently here.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use fair_core::cost::CostFn;
use fair_core::strategy::CorruptionPlan;
use fair_core::{analytic, best_of, Payoff, Scenario, UtilityEstimate};
use fair_protocols::scenarios::{coin_toss_sweep, gk_sweep, Opt2Scenario, Strategy};
use fair_runtime::Value;
use fair_scenario::{load_dir, Family, ScenarioSpec};
use rand::rngs::StdRng;
use rand::RngExt;

use crate::table::{Report, Row};

/// Same pass/fail slack the static experiments use.
const TOL: f64 = 0.05;

fn scenario_dir() -> PathBuf {
    let cwd = PathBuf::from("scenarios");
    if cwd.is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// The compiled scenario registry, loaded once per process (the serving
/// layer snapshots ids at startup and relies on the set staying fixed).
pub fn specs() -> &'static [ScenarioSpec] {
    static SPECS: OnceLock<Vec<ScenarioSpec>> = OnceLock::new();
    SPECS.get_or_init(|| load_dir(&scenario_dir()).specs)
}

/// `(id, title)` pairs of every scenario-derived registry entry, in
/// file-name order.
pub fn listing() -> Vec<(String, String)> {
    specs()
        .iter()
        .map(|s| (s.id.clone(), s.title.clone()))
        .collect()
}

/// Runs the scenario with the given id; `None` if no compiled scenario
/// claims it. Deterministic in `(trials, seed)` like every static
/// experiment.
pub fn run(id: &str, trials: usize, seed: u64) -> Option<Vec<Report>> {
    let spec = specs().iter().find(|s| s.id == id)?;
    Some(vec![run_spec(spec, trials, seed)])
}

fn run_spec(spec: &ScenarioSpec, trials: usize, seed: u64) -> Report {
    let rows = match &spec.family {
        Family::DepositCoinToss {
            g00,
            g10,
            g11,
            deposits,
        } => deposit_rows(*g00, *g10, *g11, deposits, trials, seed),
        Family::AbortHeatmap {
            g00,
            g11,
            g10,
            costs,
            rounds,
        } => heatmap_rows(*g00, *g11, g10, costs, *rounds, trials, seed),
        Family::PartialFairness { p, abort_rounds } => partial_rows(p, *abort_rounds, trials, seed),
    };
    Report::new(&spec.id, &spec.title, rows)
}

fn best<S: Scenario + Sync>(
    scenarios: &[S],
    payoff: &Payoff,
    trials: usize,
    seed: u64,
) -> UtilityEstimate {
    let (ests, idx) = best_of(scenarios, payoff, trials, seed);
    ests[idx].clone()
}

/// Penalty-deposit coin toss: the deposit is forfeited on abort, so the
/// payoff the abort events carry is γ00 − d (and γ10 − d, unreachable
/// here: the coin toss has no secret to learn, truth ⊥ pins events to
/// E₀₀/E₀₁). The best deviation therefore nets exactly max(γ00 − d, γ01).
fn deposit_rows(
    g00: f64,
    g10: f64,
    g11: f64,
    deposits: &[f64],
    trials: usize,
    seed: u64,
) -> Vec<Row> {
    let base = Payoff::gamma_fair_plus(g00, g10, g11).expect("compiler validated the payoff class");
    let mut rows = Vec::new();
    let mut deterred_at = None;
    for (i, d) in deposits.iter().enumerate() {
        let payoff = base.with_abort_penalty(*d);
        let u = best(
            &coin_toss_sweep(),
            &payoff,
            trials,
            seed.wrapping_add((i as u64) << 16),
        );
        let expect = (g00 - d).max(0.0);
        rows.push(Row::vs_paper(
            format!("deposit={d:.2}: best deviation = max(γ00−d, 0)"),
            expect,
            u.mean,
            u.ci,
            TOL,
        ));
        if deterred_at.is_none() && *d >= g00 {
            deterred_at = Some((*d, u));
        }
    }
    // The deterrence threshold: once d ≥ γ00 aborting nets no more than
    // behaving (the compiler guarantees the sweep reaches this regime).
    if let Some((d, u)) = deterred_at {
        rows.push(Row::upper_bound(
            format!("deterrence: d={d:.2} ≥ γ00={g00:.2} ⇒ best deviation ≤ 0"),
            0.0,
            u.mean,
            u.ci,
            TOL,
        ));
    }
    rows
}

/// (γ10, cost) heatmap against Π^Opt_2SFE: per γ10 the sup over abort
/// strategies is the e2 bound (γ10 + γ11)/2 (lock-and-abort attains it);
/// per cell the attacker's net is that value minus the price of the one
/// corruption a two-party abort attack needs.
fn heatmap_rows(
    g00: f64,
    g11: f64,
    g10s: &[f64],
    costs: &[f64],
    rounds: usize,
    trials: usize,
    seed: u64,
) -> Vec<Row> {
    let mut rows = Vec::new();
    for (i, g10) in g10s.iter().enumerate() {
        let payoff = Payoff::gamma_fair_plus(g00, *g10, g11).expect("compiler validated every γ10");
        let bound = analytic::opt2(&payoff);
        let mut sweep = vec![
            Opt2Scenario {
                strategy: Strategy::NoCorruption,
            },
            Opt2Scenario {
                strategy: Strategy::LockAbort(CorruptionPlan::Fixed(vec![0])),
            },
        ];
        for r in 0..rounds {
            sweep.push(Opt2Scenario {
                strategy: Strategy::AbortAtRound(CorruptionPlan::Fixed(vec![0]), r),
            });
        }
        let u = best(&sweep, &payoff, trials, seed.wrapping_add((i as u64) << 16));
        rows.push(Row::vs_paper(
            format!("γ10={g10:.2}: best abort = (γ10+γ11)/2"),
            bound,
            u.mean,
            u.ci,
            TOL,
        ));
        for c in costs {
            let price = CostFn::linear(2, *c);
            let net = u.mean - price.cost(1);
            rows.push(Row::vs_paper(
                format!("γ10={g10:.2} cost={c:.2}: net attack value"),
                bound - price.cost(1),
                net,
                u.ci,
                TOL,
            ));
        }
    }
    // Internal consistency: the measured rationality frontier (cells
    // where attacking nets a profit) must match the analytic one. The
    // shipped grids keep every |net| margin well above CI noise.
    let rational_analytic = g10s
        .iter()
        .flat_map(|g10| {
            costs
                .iter()
                .map(move |c| (g10 + g11) / 2.0 - CostFn::linear(2, *c).cost(1) > 0.0)
        })
        .filter(|rational| *rational)
        .count();
    let rational_measured = rows
        .iter()
        .filter(|r| r.label.contains("net attack value") && r.measured > 0.0)
        .count();
    rows.push(Row::check(
        "rational cells (net > 0) match the analytic frontier",
        rational_measured as f64,
        rational_measured == rational_analytic,
    ));
    rows
}

/// Gordon–Katz 1/p curve: for each p, the best abort attack against the
/// poly-domain protocol (AND on bits, |Y| = 2) stays at or below 1/p,
/// with the m = 8·p·|Y| round count the construction prescribes.
fn partial_rows(ps: &[u64], abort_rounds: usize, trials: usize, seed: u64) -> Vec<Row> {
    let payoff = Payoff::gk();
    let bit: fair_protocols::gordon_katz::ValueSampler =
        Arc::new(|rng: &mut StdRng| Value::Scalar(rng.random_range(0..2)));
    let and_fn: fair_protocols::opt2::TwoPartyFn = Arc::new(|a: &Value, b: &Value| {
        Value::Scalar((a.as_scalar().unwrap_or(0) & 1) & (b.as_scalar().unwrap_or(0) & 1))
    });
    let mut rows = Vec::new();
    for p in ps {
        let cfg = fair_protocols::gordon_katz::GkConfig::poly_domain(
            Arc::clone(&and_fn),
            *p,
            2,
            Arc::clone(&bit),
            Arc::clone(&bit),
        );
        let rounds: Vec<usize> = (1..=abort_rounds).collect();
        let u = best(&gk_sweep(&cfg, &rounds), &payoff, trials, seed ^ p);
        rows.push(Row::upper_bound(
            format!("p={p}: best abort attack ≤ 1/p"),
            analytic::gk_bound(*p),
            u.mean,
            u.ci,
            TOL / 2.0,
        ));
        rows.push(Row::vs_paper(
            format!("p={p}: rounds m = 8·p·|Y|"),
            (8 * p * 2) as f64,
            cfg.m as f64,
            0.0,
            0.0,
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_scenarios_load_and_list() {
        let ids: Vec<&str> = specs().iter().map(|s| s.id.as_str()).collect();
        assert!(ids.contains(&"s_deposit_coin"), "{ids:?}");
        assert!(ids.contains(&"s_abort_heatmap"), "{ids:?}");
        assert!(ids.contains(&"s_gk_curve"), "{ids:?}");
        for (id, title) in listing() {
            assert!(id.starts_with("s_"), "{id}");
            assert!(!title.trim().is_empty(), "{id} untitled");
        }
    }

    #[test]
    fn scenario_ids_stay_disjoint_from_the_static_registry() {
        for spec in specs() {
            assert!(
                !crate::ALL_EXPERIMENTS.contains(&spec.id.as_str()),
                "{} collides with a static experiment id",
                spec.id
            );
        }
    }

    #[test]
    fn deposit_family_reproduces_its_threshold() {
        let reports = run("s_deposit_coin", 60, 11).expect("registered");
        assert_eq!(reports.len(), 1);
        assert!(
            reports[0].pass(),
            "deposit scenario failed:\n{}",
            reports[0].render()
        );
    }

    #[test]
    fn unknown_ids_stay_unknown() {
        assert!(run("s_nope", 10, 1).is_none());
        assert!(run("e1", 10, 1).is_none());
    }
}
