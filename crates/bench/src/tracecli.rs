//! The implementation behind the `fair-trace` binary: record, replay,
//! diff, and rank per-trial engine transcripts for any experiment in the
//! registry (plus two cheap named protocol sweeps).
//!
//! A recorded trace file is self-describing — its header names the target,
//! trial count, base seed, and ring capacity — so `replay` re-executes
//! exactly the one trial it needs: it arms `fair_trace::capture` with the
//! recorded trial seed (seed selection is a pure function of the trial
//! index, hence jobs-independent), re-runs the target, and byte-compares
//! the fresh rendering against the file. An empty diff certifies that the
//! engine, protocols, and strategies reproduce the recorded execution
//! event for event.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fair_core::{best_of, Payoff};
use fair_protocols::gordon_katz::{GkConfig, ValueSampler};
use fair_protocols::opt2::TwoPartyFn;
use fair_protocols::scenarios::{coin_toss_sweep, gk_sweep};
use fair_runtime::Value;
use fair_simlab::json::Json;
use fair_trace::capture::{self, CaptureFilter, DEFAULT_RING};
use fair_trace::{diff_text, Diff, ExecStats, Transcript};
use rand::rngs::StdRng;
use rand::RngExt;

/// Where trace files are persisted, relative to the working directory.
pub const TRACE_DIR: &str = "target/simlab/trace";

/// First line of every trace file.
pub const TRACE_MAGIC: &str = "fair-trace v1";

/// Named protocol targets beyond the experiment registry, as
/// `(id, description)` — cheap sweeps for record/replay selfchecks.
pub const PROTOCOL_TARGETS: [(&str, &str); 2] = [
    (
        "exp_coin_toss",
        "Blum coin-toss strategy sweep (cheapest record/replay target)",
    ),
    (
        "exp_gordon_katz",
        "small Gordon-Katz AND sweep (p = 2, abort rules)",
    ),
];

/// Whether `id` names a runnable trace target.
pub fn is_target(id: &str) -> bool {
    crate::ALL_EXPERIMENTS.contains(&id)
        || PROTOCOL_TARGETS.iter().any(|(t, _)| *t == id)
        || crate::scenario_exp::specs().iter().any(|s| s.id == id)
}

/// Runs a target for its side effects on the armed trace collectors,
/// discarding reports/estimates. `false` for an unknown target.
pub fn run_target(id: &str, trials: usize, seed: u64) -> bool {
    match id {
        "exp_coin_toss" => {
            let _ = best_of(&coin_toss_sweep(), &Payoff::standard(), trials, seed);
            true
        }
        "exp_gordon_katz" => {
            let bit: ValueSampler =
                Arc::new(|rng: &mut StdRng| Value::Scalar(rng.random_range(0..2)));
            let and_fn: TwoPartyFn = Arc::new(|a: &Value, b: &Value| {
                Value::Scalar((a.as_scalar().unwrap_or(0) & 1) & (b.as_scalar().unwrap_or(0) & 1))
            });
            let cfg = GkConfig::poly_domain(and_fn, 2, 2, Arc::clone(&bit), bit);
            let _ = best_of(&gk_sweep(&cfg, &[1, 2]), &Payoff::gk(), trials, seed);
            true
        }
        _ => crate::run_experiment(id, trials, seed).is_some(),
    }
}

/// A parsed trace file: the self-describing header plus the transcript
/// body `replay` compares against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceFile {
    /// The recorded target id.
    pub target: String,
    /// Trials the recording run used (replay must match it so the trial
    /// seed is generated again).
    pub trials: usize,
    /// Base seed of the recording run.
    pub base_seed: u64,
    /// Ring capacity of the recording tracer.
    pub ring: usize,
    /// The recorded trial seed (from the body's `seed` line).
    pub seed: u64,
    /// The transcript rendering (everything after the header).
    pub body: String,
}

fn parse_hex(s: &str) -> Result<u64, String> {
    let digits = s.strip_prefix("0x").unwrap_or(s);
    u64::from_str_radix(digits, 16).map_err(|e| format!("bad hex value {s:?}: {e}"))
}

/// Parses a trace file's text.
pub fn parse_trace_file(text: &str) -> Result<TraceFile, String> {
    let (header, body) = text
        .split_once("\n\n")
        .ok_or_else(|| "missing header/body separator (blank line)".to_string())?;
    let mut lines = header.lines();
    if lines.next() != Some(TRACE_MAGIC) {
        return Err(format!("not a trace file (expected {TRACE_MAGIC:?} first)"));
    }
    let (mut target, mut trials, mut base_seed, mut ring) = (None, None, None, None);
    for line in lines {
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| format!("malformed header line {line:?}"))?;
        match key {
            "target" => target = Some(value.to_string()),
            "trials" => {
                trials = Some(
                    value
                        .parse::<usize>()
                        .map_err(|e| format!("bad trials {value:?}: {e}"))?,
                )
            }
            "base-seed" => base_seed = Some(parse_hex(value)?),
            "ring" => {
                ring = Some(
                    value
                        .parse::<usize>()
                        .map_err(|e| format!("bad ring {value:?}: {e}"))?,
                )
            }
            _ => return Err(format!("unknown header key {key:?}")),
        }
    }
    let seed_line = body
        .lines()
        .next()
        .ok_or_else(|| "empty transcript body".to_string())?;
    let seed = seed_line
        .strip_prefix("seed ")
        .ok_or_else(|| format!("body must start with a seed line, got {seed_line:?}"))
        .and_then(parse_hex)?;
    Ok(TraceFile {
        target: target.ok_or("header missing target")?,
        trials: trials.ok_or("header missing trials")?,
        base_seed: base_seed.ok_or("header missing base-seed")?,
        ring: ring.ok_or("header missing ring")?,
        seed,
        body: body.to_string(),
    })
}

fn render_trace_file(
    target: &str,
    trials: usize,
    base_seed: u64,
    ring: usize,
    t: &Transcript,
) -> String {
    format!(
        "{TRACE_MAGIC}\ntarget {target}\ntrials {trials}\nbase-seed 0x{base_seed:016x}\nring {ring}\n\n{}",
        t.render()
    )
}

/// Writes one `.trace` file per transcript under `dir/<target>/`, named by
/// trial seed. Returns the paths in seed order.
pub fn write_transcripts(
    dir: &Path,
    target: &str,
    trials: usize,
    base_seed: u64,
    transcripts: &[Transcript],
) -> std::io::Result<Vec<PathBuf>> {
    let sub = dir.join(target);
    std::fs::create_dir_all(&sub)?;
    let ring = capture::ring_capacity();
    let mut paths = Vec::with_capacity(transcripts.len());
    for t in transcripts {
        let path = sub.join(format!("{:016x}.trace", t.seed));
        std::fs::write(&path, render_trace_file(target, trials, base_seed, ring, t))?;
        paths.push(path);
    }
    Ok(paths)
}

/// Records `sample` transcripts of a target's first trials into
/// `dir/<target>/`, forcing single-job scheduling so "first" is
/// deterministic. Returns the written paths.
pub fn record(
    target: &str,
    trials: usize,
    sample: usize,
    base_seed: u64,
    dir: &Path,
) -> Result<Vec<PathBuf>, String> {
    if !is_target(target) {
        return Err(format!("unknown target {target:?} (see `fair-trace list`)"));
    }
    capture::begin(CaptureFilter::FirstN(sample), DEFAULT_RING);
    fair_simlab::with_jobs(1, || run_target(target, trials, base_seed));
    let transcripts = capture::end();
    write_transcripts(dir, target, trials, base_seed, &transcripts)
        .map_err(|e| format!("could not write transcripts: {e}"))
}

/// Replays one trace file under the ambient job count: re-runs its
/// `(target, seed)` pair through the engine with a fresh recording tracer
/// and byte-compares the renderings. `Ok(None)` means identical.
pub fn replay_file(path: &Path) -> Result<Option<Diff>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let tf = parse_trace_file(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    if !is_target(&tf.target) {
        return Err(format!(
            "{}: unknown target {:?}",
            path.display(),
            tf.target
        ));
    }
    capture::begin(CaptureFilter::Seeds(BTreeSet::from([tf.seed])), tf.ring);
    run_target(&tf.target, tf.trials, tf.base_seed);
    let got = capture::end();
    let replayed = got.into_iter().next().ok_or_else(|| {
        format!(
            "{}: replay never reached trial seed 0x{:016x} (recorded with different trials?)",
            path.display(),
            tf.seed
        )
    })?;
    Ok(diff_text(&tf.body, &replayed.render()))
}

/// All `.trace` files under `dir` (optionally restricted to one target's
/// subdirectory), sorted by path for deterministic iteration order.
pub fn trace_files(dir: &Path, target: Option<&str>) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let roots: Vec<PathBuf> = match target {
        Some(t) => vec![dir.join(t)],
        None => {
            let mut subs: Vec<PathBuf> = std::fs::read_dir(dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            subs.sort();
            subs
        }
    };
    for root in roots {
        let mut files: Vec<PathBuf> = std::fs::read_dir(&root)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "trace"))
            .collect();
        files.sort();
        out.extend(files);
    }
    Ok(out)
}

/// Per-trial statistics ranked for `fair-trace top`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopEntry {
    /// The trial seed (usable with a recorded trace of the same target).
    pub seed: u64,
    /// The trial's execution counters.
    pub stats: ExecStats,
}

/// The sort key for `top`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopBy {
    /// Rank by rounds executed.
    Rounds,
    /// Rank by messages sent.
    Msgs,
    /// Rank by message bytes.
    Bytes,
}

impl TopBy {
    /// Parses a `--by` value.
    pub fn parse(s: &str) -> Option<TopBy> {
        match s {
            "rounds" => Some(TopBy::Rounds),
            "msgs" => Some(TopBy::Msgs),
            "bytes" => Some(TopBy::Bytes),
            _ => None,
        }
    }

    fn key(self, s: &ExecStats) -> u64 {
        match self {
            TopBy::Rounds => s.rounds,
            TopBy::Msgs => s.msgs,
            TopBy::Bytes => s.bytes,
        }
    }
}

/// Runs a target with stats-only capture on *every* trial and returns the
/// `sample` heaviest by the chosen dimension (ties broken by seed, so the
/// ranking is deterministic under any job count).
pub fn top(
    target: &str,
    trials: usize,
    sample: usize,
    by: TopBy,
    seed: u64,
) -> Result<Vec<TopEntry>, String> {
    if !is_target(target) {
        return Err(format!("unknown target {target:?} (see `fair-trace list`)"));
    }
    // Ring capacity 0: stats only, no event retention — capturing every
    // trial stays cheap.
    capture::begin(CaptureFilter::FirstN(usize::MAX), 0);
    run_target(target, trials, seed);
    let mut entries: Vec<TopEntry> = capture::end()
        .into_iter()
        .map(|t| TopEntry {
            seed: t.seed,
            stats: t.stats,
        })
        .collect();
    entries.sort_by_key(|e| (core::cmp::Reverse(by.key(&e.stats)), e.seed));
    entries.truncate(sample);
    Ok(entries)
}

/// The JSON form of a parsed trace file (for `show --json`).
pub fn trace_file_json(tf: &TraceFile) -> Json {
    Json::obj()
        .field("target", Json::str(&tf.target))
        .field("trials", Json::num(tf.trials as f64))
        .field("base_seed", Json::str(format!("0x{:016x}", tf.base_seed)))
        .field("ring", Json::num(tf.ring as f64))
        .field("seed", Json::str(format!("0x{:016x}", tf.seed)))
        .field(
            "events",
            Json::Arr(tf.body.lines().map(Json::str).collect()),
        )
}

/// The JSON form of a `top` ranking.
pub fn top_json(target: &str, by: TopBy, entries: &[TopEntry]) -> Json {
    let by = match by {
        TopBy::Rounds => "rounds",
        TopBy::Msgs => "msgs",
        TopBy::Bytes => "bytes",
    };
    Json::obj()
        .field("target", Json::str(target))
        .field("by", Json::str(by))
        .field(
            "trials",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj()
                            .field("seed", Json::str(format!("0x{:016x}", e.seed)))
                            .field("rounds", Json::num(e.stats.rounds as f64))
                            .field("msgs", Json::num(e.stats.msgs as f64))
                            .field("bytes", Json::num(e.stats.bytes as f64))
                            .field("corruptions", Json::num(e.stats.corruptions as f64))
                            .field("bots", Json::num(e.stats.bots as f64))
                    })
                    .collect(),
            ),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registry_experiment_is_a_target() {
        for (id, _) in crate::experiment_listing() {
            assert!(is_target(&id), "{id}");
        }
        for (id, _) in PROTOCOL_TARGETS {
            assert!(is_target(id), "{id}");
        }
        assert!(!is_target("e99"));
        assert!(!run_target("e99", 1, 1));
    }

    #[test]
    fn trace_file_round_trips_through_parse() {
        let t = Transcript {
            seed: 0xabc,
            stats: ExecStats::default(),
            dropped: 0,
            events: vec![fair_trace::TraceEvent::End { rounds: 1 }],
        };
        let text = render_trace_file("exp_coin_toss", 50, 0xfa1e, 4096, &t);
        let tf = parse_trace_file(&text).expect("parses");
        assert_eq!(tf.target, "exp_coin_toss");
        assert_eq!(tf.trials, 50);
        assert_eq!(tf.base_seed, 0xfa1e);
        assert_eq!(tf.ring, 4096);
        assert_eq!(tf.seed, 0xabc);
        assert_eq!(tf.body, t.render());
        // Corrupted inputs are typed errors, not panics.
        assert!(parse_trace_file("nonsense").is_err());
        assert!(parse_trace_file("fair-trace v1\ntrials 5\n\nseed 0x1\n").is_err());
    }

    #[test]
    fn top_by_parses_exactly_the_three_dimensions() {
        assert_eq!(TopBy::parse("rounds"), Some(TopBy::Rounds));
        assert_eq!(TopBy::parse("msgs"), Some(TopBy::Msgs));
        assert_eq!(TopBy::parse("bytes"), Some(TopBy::Bytes));
        assert_eq!(TopBy::parse("latency"), None);
    }
}
