#![warn(missing_docs)]
//! Experiment harness for the `fair-protocols` workspace: every table the
//! reproduction generates (experiments E1–E13 from DESIGN.md) plus the
//! report rendering used by the `exp_*` binaries and `reproduce`.

pub mod experiments;
pub mod partial_exp;
pub mod table;

pub use table::{Report, Row};

/// Number of Monte-Carlo trials used by the experiment binaries (override
/// with the `FAIR_TRIALS` environment variable).
pub fn default_trials() -> usize {
    std::env::var("FAIR_TRIALS").ok().and_then(|s| s.parse().ok()).unwrap_or(1000)
}

/// Runs an experiment by id; `None` for an unknown id.
pub fn run_experiment(id: &str, trials: usize, seed: u64) -> Option<Vec<Report>> {
    let reports = match id {
        "e1" => vec![experiments::e1(trials, seed)],
        "e2" => vec![experiments::e2(trials, seed)],
        "e3" => vec![experiments::e3(trials, seed)],
        "e4" => vec![experiments::e4(trials, seed)],
        "e5" => vec![experiments::e5(trials, seed, &[3, 4, 5])],
        "e6" => vec![experiments::e6(trials, seed, 4)],
        "e7" => vec![experiments::e7(trials, seed, 4)],
        "e8" => vec![experiments::e8(trials, seed, &[4, 5])],
        "e9" => vec![experiments::e9(trials, seed, 4)],
        "e10" => vec![experiments::e10(trials, seed, 4)],
        "e11" => vec![experiments::e11(trials, seed)],
        "e12" => vec![partial_exp::e12(trials, seed)],
        "e13" => vec![experiments::e13(trials, seed)],
        "e14" => vec![experiments::e14(trials, seed)],
        "e15" => vec![experiments::e15(trials, seed)],
        "e16" => vec![experiments::e16(trials, seed)],
        "e17" => vec![partial_exp::e17(trials, seed)],
        _ => return None,
    };
    Some(reports)
}

/// All experiment ids in order.
pub const ALL_EXPERIMENTS: [&str; 17] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
    "e15", "e16", "e17",
];
