#![forbid(unsafe_code)]
#![allow(clippy::print_stdout)] // the experiment reporters print their tables
#![warn(missing_docs)]
//! Experiment harness for the `fair-protocols` workspace: every table the
//! reproduction generates (experiments E1–E13 from DESIGN.md) plus the
//! report rendering used by the `exp_*` binaries and `reproduce`.

pub mod experiments;
pub mod partial_exp;
pub mod runner;
pub mod scenario_exp;
pub mod servecli;
pub mod table;
pub mod tracecli;

pub use table::{Report, Row};

/// Number of Monte-Carlo trials used by the experiment binaries (override
/// with the `FAIR_TRIALS` environment variable). A malformed value is
/// reported on stderr, then the default of 1000 applies. Routed through
/// `fair-simlab`'s sanctioned env entry point (fairlint rule R4).
pub fn default_trials() -> usize {
    fair_simlab::config::env_usize("FAIR_TRIALS", 1000)
}

/// Runs an experiment by id; `None` for an unknown id.
pub fn run_experiment(id: &str, trials: usize, seed: u64) -> Option<Vec<Report>> {
    let reports = match id {
        "e1" => vec![experiments::e1(trials, seed)],
        "e2" => vec![experiments::e2(trials, seed)],
        "e3" => vec![experiments::e3(trials, seed)],
        "e4" => vec![experiments::e4(trials, seed)],
        "e5" => vec![experiments::e5(trials, seed, &[3, 4, 5])],
        "e6" => vec![experiments::e6(trials, seed, 4)],
        "e7" => vec![experiments::e7(trials, seed, 4)],
        "e8" => vec![experiments::e8(trials, seed, &[4, 5])],
        "e9" => vec![experiments::e9(trials, seed, 4)],
        "e10" => vec![experiments::e10(trials, seed, 4)],
        "e11" => vec![experiments::e11(trials, seed)],
        "e12" => vec![partial_exp::e12(trials, seed)],
        "e13" => vec![experiments::e13(trials, seed)],
        "e14" => vec![experiments::e14(trials, seed)],
        "e15" => vec![experiments::e15(trials, seed)],
        "e16" => vec![experiments::e16(trials, seed)],
        "e17" => vec![partial_exp::e17(trials, seed)],
        // Not a static id: fall through to the scenario-derived leg of
        // the registry (compiled from scenarios/*.toml).
        _ => return scenario_exp::run(id, trials, seed),
    };
    Some(reports)
}

/// All experiment ids in order.
pub const ALL_EXPERIMENTS: [&str; 17] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17",
];

/// The experiment registry as `(id, title)` pairs: the static entries in
/// [`ALL_EXPERIMENTS`] order, then the scenario-derived entries in
/// file-name order — the single listing behind `reproduce --list`,
/// `fair-trace list`, and `fair-serve`, so every tool names experiments
/// identically.
pub fn experiment_listing() -> Vec<(String, String)> {
    // Every id has a title by construction: rule R1 keeps the static
    // registry and the titles in lockstep (the expect below is the
    // compile-adjacent backstop — there is no "(untitled)" fallback),
    // and the scenario compiler rejects files without a title.
    let mut listing: Vec<(String, String)> = ALL_EXPERIMENTS
        .iter()
        .map(|id| {
            let title = experiment_title(id).expect("registered id has a title");
            (id.to_string(), title.to_string())
        })
        .collect();
    listing.extend(scenario_exp::listing());
    listing
}

/// Every runnable experiment id: static registry order, then the
/// scenario-derived ids (what `reproduce` runs when invoked bare).
pub fn all_experiment_ids() -> Vec<String> {
    experiment_listing().into_iter().map(|(id, _)| id).collect()
}

/// One-line description of each experiment (for `reproduce --list`).
pub fn experiment_title(id: &str) -> Option<&'static str> {
    Some(match id {
        "e1" => "contract signing: coin-tossed order halves the attacker's edge",
        "e2" => "Π^Opt_2SFE upper bound: u_A ≤ (γ10+γ11)/2 for every strategy",
        "e3" => "Π^Opt_2SFE lower bound: A1/A2/A_gen achieve (γ10+γ11)/2",
        "e4" => "reconstruction-round optimality (Lemmas 9/10)",
        "e5" => "Π^Opt_nSFE per-coalition utilities (Lemma 11, tight by Lemma 13)",
        "e6" => "multi-party lower bound via the A_ī strategies (Lemmas 12/13)",
        "e7" => "Π^Opt_nSFE is utility-balanced (Lemma 14, tight by Lemma 16)",
        "e8" => "Π^{1/2}_GMW: fair below n/2, unfair at n/2, unbalanced for even n (Lemma 17)",
        "e9" => "optimal fairness does not imply utility balance (Lemma 18)",
        "e10" => "utility balance ⇔ optimal corruption-cost function (Theorem 6)",
        "e11" => "Gordon–Katz protocols: payoff ≤ 1/p with O(p·|Y|) / O(p²·|Z|) rounds",
        "e12" => "Π̃ separates 1/p-security from utility-based fairness (Lemmas 25–27)",
        "e13" => "composability: replacing the hybrid by real GMW/Yao preserves utilities",
        "e14" => {
            "Section 4.1 remark: 1/p-secure functions admit fairness beyond the generic optimum"
        }
        "e15" => "the attack game: uniform i* is the designer's minimax move (Remark 1)",
        "e16" => "utility-balanced and optimal fairness are incomparable (Appendix B.1)",
        "e17" => {
            "Theorem 23: the GK protocol realizes F^{∧,$} — real and ideal observables coincide"
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_static_id_is_titled_and_listed() {
        for id in crate::ALL_EXPERIMENTS {
            assert!(
                crate::experiment_title(id).is_some(),
                "{id} has no title — the listing has no untitled fallback"
            );
        }
        let listing = crate::experiment_listing();
        assert_eq!(
            listing.len(),
            crate::ALL_EXPERIMENTS.len() + crate::scenario_exp::specs().len()
        );
        assert!(listing.iter().all(|(_, title)| !title.trim().is_empty()));
    }
}
