//! The experiment runner: executes experiments through the `fair-simlab`
//! scheduler with observability (progress lines, wall-clock, per-trial
//! latency) and persists structured records — `target/simlab/<exp>.json`
//! per experiment plus an aggregate suite record (`BENCH_reproduce.json`).

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use fair_simlab::metrics;
use fair_simlab::{ExpRecord, Progress, ReportRecord, RowRecord, SuiteRecord};

use crate::table::Report;

/// Where per-experiment records are persisted, relative to the working
/// directory.
pub const RECORD_DIR: &str = "target/simlab";

/// The base seed every experiment binary runs with.
pub const BASE_SEED: u64 = 0xfa1e;

/// Transcripts sampled per experiment by `reproduce --trace`.
pub const SUITE_TRACE_SAMPLE: usize = 2;

/// Converts rendered reports into simlab's storage form.
pub fn to_report_records(reports: &[Report]) -> Vec<ReportRecord> {
    reports
        .iter()
        .map(|rep| ReportRecord {
            id: rep.id.clone(),
            title: rep.title.clone(),
            rows: rep
                .rows
                .iter()
                .map(|row| RowRecord {
                    label: row.label.clone(),
                    paper: row.paper,
                    measured: row.measured,
                    ci: row.ci,
                    pass: row.pass,
                })
                .collect(),
        })
        .collect()
}

/// Runs one experiment with metrics collection enabled — both simlab's
/// wall-clock latency pipeline and `fair-trace`'s deterministic
/// per-protocol counters — returning the rendered reports and the
/// structured execution record. `None` for an unknown id.
pub fn run_recorded(id: &str, trials: usize, seed: u64) -> Option<(Vec<Report>, ExpRecord)> {
    run_recorded_with(id, trials, seed, None)
}

/// [`run_recorded`] with an optional adaptive precision target. When
/// `epsilon` is set, every `estimate()` call inside the experiment stops
/// once its 95% half-width reaches it, and the record carries the
/// trials-used vs trials-requested accounting in its `adaptive` block.
/// Either way the run enters the `(id, seed)` tile-cache group, so a
/// process with an installed tile store reuses every full tile it has
/// already computed.
pub fn run_recorded_with(
    id: &str,
    trials: usize,
    seed: u64,
    epsilon: Option<f64>,
) -> Option<(Vec<Report>, ExpRecord)> {
    metrics::set_enabled(true);
    fair_trace::metrics::set_enabled(true);
    let progress = Progress::start(id, 0, Duration::from_secs(2));
    let t0 = Instant::now();
    let run = || fair_tiles::with_group(id, seed, || crate::run_experiment(id, trials, seed));
    let (reports, adaptive) = match epsilon {
        None => (run(), None),
        Some(eps) => {
            let (reports, summary) = fair_core::progressive::scoped(eps, None, run);
            (
                reports,
                Some(fair_simlab::AdaptiveSummary {
                    epsilon: eps,
                    estimates: summary.estimates,
                    early_stops: summary.early_stops,
                    trials_requested: summary.trials_requested,
                    trials_used: summary.trials_used,
                }),
            )
        }
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    drop(progress);
    let latency = metrics::drain_latency();
    let protocols = fair_trace::metrics::drain();
    metrics::set_enabled(false);
    fair_trace::metrics::set_enabled(false);
    let reports = reports?;
    let record = ExpRecord {
        id: id.to_string(),
        trials,
        seed,
        jobs: fair_simlab::effective_jobs(),
        wall_ms,
        latency,
        protocols,
        pass: reports.iter().all(Report::pass),
        adaptive,
        reports: to_report_records(&reports),
    };
    Some((reports, record))
}

/// Options for a `reproduce` suite run, parsed from the CLI.
pub struct SuiteOptions {
    /// Experiment ids to run (in order).
    pub ids: Vec<String>,
    /// Trials per estimate.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
    /// Render tables as GitHub markdown instead of aligned text.
    pub markdown: bool,
    /// Where to write the aggregate record (`None` = don't).
    pub json: Option<PathBuf>,
    /// Capture per-experiment sample transcripts under
    /// `target/simlab/trace/<exp>/` (see `fair-trace replay`). Which
    /// trials are sampled depends on completion order, so with `--jobs`
    /// above 1 the sampled set may vary between runs; every captured
    /// transcript replays deterministically regardless.
    pub trace: bool,
    /// Adaptive precision target (`--epsilon`): when set, each estimate
    /// stops once its 95% half-width reaches it, and every record carries
    /// the trials-used vs trials-requested accounting.
    pub epsilon: Option<f64>,
}

/// Runs a suite of experiments, printing tables and progress, persisting
/// per-experiment records under [`RECORD_DIR`] and (optionally) the
/// aggregate record. Returns the suite record; `Err` carries an unknown
/// experiment id.
pub fn run_suite(opts: &SuiteOptions) -> Result<SuiteRecord, String> {
    let t0 = Instant::now();
    let total = opts.ids.len();
    let mut experiments = Vec::with_capacity(total);
    for (k, id) in opts.ids.iter().enumerate() {
        if opts.trace {
            fair_trace::capture::begin(
                fair_trace::capture::CaptureFilter::FirstN(SUITE_TRACE_SAMPLE),
                fair_trace::capture::DEFAULT_RING,
            );
        }
        let run = run_recorded_with(id, opts.trials, opts.seed, opts.epsilon);
        let captured = opts.trace.then(fair_trace::capture::end);
        let (reports, record) = run.ok_or_else(|| format!("unknown experiment id: {id}"))?;
        if let Some(transcripts) = captured {
            let dir = Path::new(crate::tracecli::TRACE_DIR);
            match crate::tracecli::write_transcripts(dir, id, opts.trials, opts.seed, &transcripts)
            {
                Ok(paths) => eprintln!(
                    "[trace] {id}: {} transcript(s) under {}/{id}/",
                    paths.len(),
                    crate::tracecli::TRACE_DIR
                ),
                Err(e) => eprintln!("warning: could not persist {id} transcripts: {e}"),
            }
        }
        for r in &reports {
            if opts.markdown {
                println!("{}", r.render_markdown());
            } else {
                println!("{}", r.render());
            }
        }
        let lat = record
            .latency
            .map(|l| format!(", per-trial latency {l}"))
            .unwrap_or_default();
        if let Some(a) = record.adaptive {
            eprintln!(
                "[simlab] {id}: adaptive ε={} spent {} of {} trials ({} of {} estimates stopped early)",
                a.epsilon, a.trials_used, a.trials_requested, a.early_stops, a.estimates,
            );
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let done = k + 1;
        let eta = if done < total {
            format!(
                ", suite ETA {:.1}s",
                elapsed / done as f64 * (total - done) as f64
            )
        } else {
            String::new()
        };
        eprintln!(
            "[simlab] {id}: {:.1}ms wall clock ({}/{total} experiments, {elapsed:.1}s elapsed{eta}){lat}",
            record.wall_ms, done,
        );
        if let Err(e) = record.write(Path::new(RECORD_DIR)) {
            eprintln!("warning: could not persist {RECORD_DIR}/{id}.json: {e}");
        }
        experiments.push(record);
    }
    let suite = SuiteRecord {
        trials: opts.trials,
        jobs: fair_simlab::effective_jobs(),
        seed: opts.seed,
        total_wall_ms: t0.elapsed().as_secs_f64() * 1000.0,
        pass: experiments.iter().all(|e| e.pass),
        experiments,
    };
    if let Some(path) = &opts.json {
        match suite.write(path) {
            Ok(()) => eprintln!("[simlab] wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
    // Persist whatever tiles the suite minted (no-op without a persistent
    // store installed), so the next run — or a serve instance sharing the
    // directory — starts warm.
    fair_tiles::cache::flush();
    Ok(suite)
}

/// Shared `main` for the single-experiment `exp_*` binaries: runs one
/// experiment at [`BASE_SEED`] with `FAIR_TRIALS`/`FAIR_JOBS` honored,
/// prints its tables, persists its record, and exits nonzero on failure.
pub fn exp_main(id: &str) {
    let trials = crate::default_trials();
    let (reports, record) = run_recorded(id, trials, BASE_SEED).expect("known experiment");
    for r in &reports {
        println!("{}", r.render());
    }
    eprintln!("[simlab] {id}: {:.1}ms wall clock", record.wall_ms);
    if let Err(e) = record.write(Path::new(RECORD_DIR)) {
        eprintln!("warning: could not persist {RECORD_DIR}/{id}.json: {e}");
    }
    if !record.pass {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none_and_disables_metrics() {
        assert!(run_recorded("e99", 10, 1).is_none());
        assert!(!metrics::enabled());
    }

    #[test]
    fn recorded_run_captures_reports_and_latency() {
        let (reports, record) = run_recorded("e1", 20, 7).expect("e1 exists");
        assert_eq!(record.id, "e1");
        assert_eq!(record.trials, 20);
        assert_eq!(reports.len(), record.reports.len());
        assert_eq!(record.pass, reports.iter().all(Report::pass));
        // estimate() fed the metrics pipeline, so latency must be present.
        let lat = record.latency.expect("latency collected");
        assert!(lat.count > 0);
        assert!(record.wall_ms > 0.0);
        // The estimator also fed the trace-metrics pipeline: one summary
        // per scenario, each accounting for every trial.
        assert!(!record.protocols.is_empty());
        for p in &record.protocols {
            assert_eq!(p.trials, 20, "{}", p.name);
            assert_eq!(p.rounds.count, 20, "{}", p.name);
            assert!(p.msgs.total > 0, "{}", p.name);
        }
        assert!(!fair_trace::metrics::enabled());
    }
}
