//! E12 — the Section 5 separation: Π̃ is 1/2-secure and fully private in
//! the Gordon–Katz sense (Lemma 27), yet no simulator can make its ideal
//! F^{∧,$} execution match the real one (Lemma 26).
//!
//! The real side runs the actual Π̃ protocol (probing adversary included)
//! on the engine; the ideal side samples the F^{∧,$} experiment directly
//! from its Figure-1 semantics for a grid of candidate simulators:
//!
//! * every simulator chooses the corrupted p₂'s substituted input
//!   x₂′ ∈ {0, 1}, whether to simulate a step-2 reply (probability q) and
//!   with what content (a uniform guess, or the output learned from F when
//!   x₂′ = 1), and whether to deliver p₁'s output or abort (replacing it by
//!   a sample of Y₁(x₁) = x₁ ∧ U).
//!
//! The environments are the paper's Z₁/Z₂ (Lemma 26): with x₁ uniform and
//! the dishonest p₂ opening with a 1-bit, Z₂ accepts on any non-empty
//! reply, Z₁ accepts when the reply equals x₁ *and* z₁ = 0.

use fair_core::partial::{acceptance, Acceptance};
use fair_protocols::leaky::probe_real;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::table::{Report, Row};

/// Real-world acceptance probabilities of Z₁ and Z₂ against Π̃.
pub fn real_acceptances(trials: usize, seed: u64) -> (Acceptance, Acceptance) {
    let z1 = acceptance(
        |s| {
            let mut rng = StdRng::seed_from_u64(s);
            let x1 = rng.random_range(0u64..2);
            let obs = probe_real(x1, 0, s ^ 0xabcd);
            obs.reply == Some(Some(x1)) && obs.z1 == fair_runtime::Value::Scalar(0)
        },
        trials,
        seed,
    );
    let z2 = acceptance(
        |s| {
            let mut rng = StdRng::seed_from_u64(s);
            let _x1 = rng.random_range(0u64..2);
            let obs = probe_real(_x1, 0, s ^ 0xabcd);
            matches!(obs.reply, Some(Some(_)))
        },
        trials,
        seed,
    );
    (z1, z2)
}

/// A candidate simulator for the ideal F^{∧,$} world.
#[derive(Clone, Copy, Debug)]
pub struct Simulator {
    /// Probability of simulating a non-empty step-2 reply.
    pub q: f64,
    /// Substituted input for the corrupted p₂ (learning x₁ requires 1).
    pub x2_sub: u64,
    /// Reply content: `true` = the value learned from F (only meaningful
    /// with `x2_sub = 1`), `false` = a uniform guess.
    pub reply_learned: bool,
    /// Abort after learning (replacing p₁'s output by Y₁(x₁) = x₁ ∧ U)
    /// instead of delivering.
    pub abort_replace: bool,
}

/// Samples one ideal-world run of the Lemma 26 experiment under `sim`,
/// returning (Z₁ accepts, Z₂ accepts).
pub fn ideal_run(sim: &Simulator, rng: &mut StdRng) -> (bool, bool) {
    let x1 = rng.random_range(0u64..2);
    // F^{∧,$} computes y against the substituted input.
    let y = x1 & sim.x2_sub;
    // z1: delivered or randomized per Figure 1.
    let z1 = if sim.abort_replace {
        x1 & rng.random_range(0u64..2) // Y1(x1): f(x1, uniform)
    } else {
        y
    };
    // Simulated step-2 reply.
    let reply: Option<u64> = if rng.random_bool(sim.q) {
        Some(if sim.reply_learned {
            y
        } else {
            rng.random_range(0u64..2)
        })
    } else {
        None
    };
    let z1_ok = reply == Some(x1) && z1 == 0;
    let z2_ok = reply.is_some();
    (z1_ok, z2_ok)
}

/// Ideal-world acceptance probabilities for a simulator.
pub fn ideal_acceptances(sim: &Simulator, trials: usize, seed: u64) -> (Acceptance, Acceptance) {
    let z1 = acceptance(
        |s| {
            let mut rng = StdRng::seed_from_u64(s);
            ideal_run(sim, &mut rng).0
        },
        trials,
        seed,
    );
    let z2 = acceptance(
        |s| {
            let mut rng = StdRng::seed_from_u64(s);
            ideal_run(sim, &mut rng).1
        },
        trials,
        seed ^ 1,
    );
    (z1, z2)
}

/// The simulator grid searched in the Lemma 26 experiment.
pub fn simulator_grid() -> Vec<Simulator> {
    let mut out = Vec::new();
    for qi in 0..=10 {
        let q = qi as f64 * 0.05;
        // Guessing simulator (x2' = 0 keeps z1 = 0).
        out.push(Simulator {
            q,
            x2_sub: 0,
            reply_learned: false,
            abort_replace: false,
        });
        // Learning simulator, delivering.
        out.push(Simulator {
            q,
            x2_sub: 1,
            reply_learned: true,
            abort_replace: false,
        });
        // Learning simulator, aborting with randomized replacement.
        out.push(Simulator {
            q,
            x2_sub: 1,
            reply_learned: true,
            abort_replace: true,
        });
        // Learning simulator that guesses the reply anyway.
        out.push(Simulator {
            q,
            x2_sub: 1,
            reply_learned: false,
            abort_replace: true,
        });
    }
    out
}

/// E12 — the full separation experiment.
pub fn e12(trials: usize, seed: u64) -> Report {
    // Leak statistics (the protocol's defect, and the privacy side).
    // Probed through the simlab scheduler: integer per-tile counts make the
    // result bit-identical for every worker count.
    let probe_trials = trials.min(600);
    let probe_tiles = fair_simlab::run_tiled(probe_trials, |range| {
        let mut leaks = 0usize;
        let mut correct = true;
        for t in range {
            let s = fair_simlab::trial_seed(seed, t as u64);
            let mut rng = StdRng::seed_from_u64(s);
            let x1 = rng.random_range(0u64..2);
            let obs = probe_real(x1, 0, s ^ 0x7777);
            if let Some(Some(b)) = obs.reply {
                leaks += 1;
                correct &= b == x1;
            }
        }
        (leaks, correct)
    });
    let leaks: usize = probe_tiles.iter().map(|t| t.0).sum();
    let leak_correct = probe_tiles.iter().all(|t| t.1);
    let leak_rate = leaks as f64 / probe_trials as f64;

    // The Lemma 26 separation constant is small (the best simulator in the
    // grid still misses one distinguisher by ≈ 1/20), so the acceptance
    // estimates it rests on need resolution well below that regardless of
    // the caller's trial budget — at 150 trials the per-rate noise (±0.06)
    // would swamp the gap entirely.
    let sep_trials = trials.max(2500);

    // Real-world Z1/Z2 acceptance.
    let (rz1, rz2) = real_acceptances(sep_trials, seed ^ 0x5151);

    // Lemma 26: minimum over the simulator grid of the worst distinguisher
    // advantage.
    let mut min_max_gap = f64::INFINITY;
    let mut best_sim = None;
    for sim in simulator_grid() {
        let (iz1, iz2) = ideal_acceptances(&sim, sep_trials, seed ^ 0x2626);
        let gap = (rz1.rate - iz1.rate).abs().max((rz2.rate - iz2.rate).abs());
        if gap < min_max_gap {
            min_max_gap = gap;
            best_sim = Some(sim);
        }
    }

    // Lemma 27 (1/2-security): the explicit simulator — q = 1/4, guessing
    // reply, honest-input ideal AND — keeps both distinguishers within 1/2.
    let explicit = Simulator {
        q: 0.25,
        x2_sub: 0,
        reply_learned: false,
        abort_replace: false,
    };
    let (ez1, ez2) = ideal_acceptances(&explicit, sep_trials, seed ^ 0x2727);
    let half_gap = (rz1.rate - ez1.rate).abs().max((rz2.rate - ez2.rate).abs());

    // Lemma 27 (privacy): the view simulator substitutes x2' = 1, learns
    // x1 from F, and reproduces the reply distribution exactly. Compare
    // the three-symbol view distribution (no reply / empty / leak content).
    let view_gap = {
        let real_view = |s: u64| {
            let mut rng = StdRng::seed_from_u64(s);
            let x1 = rng.random_range(0u64..2);
            let obs = probe_real(x1, 0, s ^ 0x99);
            match obs.reply {
                Some(Some(b)) => 2 + b as usize, // leak of bit b
                Some(None) => 1,                 // explicit empty message
                None => 0,
            }
        };
        let sim_view = |s: u64| {
            let mut rng = StdRng::seed_from_u64(s ^ 0xfeed);
            let x1 = rng.random_range(0u64..2);
            // Simulator learned x1 via x2' = 1 and mimics p1 exactly.
            if rng.random_bool(0.25) {
                2 + x1 as usize
            } else {
                1
            }
        };
        let (real_counts, sim_counts) = fair_simlab::run_tiled(probe_trials, |range| {
            let mut real = [0usize; 4];
            let mut sim = [0usize; 4];
            for t in range {
                real[real_view(fair_simlab::trial_seed(seed ^ 0x3100, t as u64))] += 1;
                sim[sim_view(fair_simlab::trial_seed(seed ^ 0x6200, t as u64))] += 1;
            }
            (real, sim)
        })
        .into_iter()
        .fold(([0usize; 4], [0usize; 4]), |(mut ra, mut sa), (r, s)| {
            for i in 0..4 {
                ra[i] += r[i];
                sa[i] += s[i];
            }
            (ra, sa)
        });
        let n = probe_trials as f64;
        (0..4)
            .map(|i| (real_counts[i] as f64 / n - sim_counts[i] as f64 / n).abs())
            .fold(0.0f64, f64::max)
    };

    let rows = vec![
        Row::vs_paper(
            "Pr[input leak] (= 1/4·Pr[C=1])",
            0.25,
            leak_rate,
            0.05,
            0.02,
        ),
        Row::check("every leak reveals the true x1", 1.0, leak_correct),
        Row::vs_paper("real Pr[Z1 = 1]", 0.25, rz1.rate, rz1.ci, 0.05),
        Row::vs_paper("real Pr[Z2 = 1]", 0.25, rz2.rate, rz2.ci, 0.05),
        Row::check(
            format!(
                "Lemma 26: min over simulators of max distinguisher gap (best sim {:?})",
                best_sim
            ),
            min_max_gap,
            min_max_gap > 0.02,
        ),
        Row::upper_bound(
            "Lemma 27: explicit simulator's gap ≤ 1/2",
            0.5,
            half_gap,
            0.03,
            0.0,
        ),
        Row::upper_bound(
            "Lemma 27: privacy — view simulation gap",
            0.06,
            view_gap,
            0.03,
            0.0,
        ),
    ];
    Report::new(
        "E12",
        "Π̃ separates 1/p-security from utility-based fairness (Lemmas 25–27)",
        rows,
    )
}

/// E17 — Theorem 23, the realization statement: the Gordon–Katz protocol's
/// real observable distribution (what the adversary learned, what the
/// honest party output) is statistically indistinguishable from the
/// F^{∧,$} ideal world with the paper's simulator. Measured as total
/// variation distance over the joint outcome space.
pub fn e17(trials: usize, seed: u64) -> Report {
    use fair_protocols::gordon_katz::{
        gk_instance, ideal_observables, AbortRule, GkAttack, GkConfig, ValueSampler,
    };
    use fair_protocols::opt2::TwoPartyFn;
    use fair_runtime::{execute, PartyId, Value};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    let and_fn: TwoPartyFn = Arc::new(|a: &Value, b: &Value| {
        Value::Scalar((a.as_scalar().unwrap_or(0) & 1) & (b.as_scalar().unwrap_or(0) & 1))
    });
    let bit: ValueSampler = Arc::new(|rng: &mut StdRng| Value::Scalar(rng.random_range(0..2)));
    let cfg = GkConfig::poly_domain(Arc::clone(&and_fn), 2, 2, Arc::clone(&bit), bit);

    let symbol = |learned: &Option<Value>, honest: &Value| -> String {
        format!(
            "learned={:?},honest={honest}",
            learned.as_ref().map(|v| v.to_string())
        )
    };

    let mut rows = Vec::new();
    for rule in [
        AbortRule::AtRound(2),
        AbortRule::OnValue(Value::Scalar(1)),
        AbortRule::Never,
    ] {
        // Symbol counting is sharded across the simlab scheduler; per-tile
        // BTreeMaps merge by integer addition, so the joint distribution is
        // bit-identical for every worker count.
        let (real_counts, ideal_counts) = fair_simlab::run_tiled(trials, |range| {
            let mut real: BTreeMap<String, usize> = BTreeMap::new();
            let mut ideal: BTreeMap<String, usize> = BTreeMap::new();
            for t in range {
                let s = fair_simlab::trial_seed(seed, t as u64);
                // Shared environment: uniform bit inputs.
                let mut env = StdRng::seed_from_u64(s);
                let x1 = Value::Scalar(env.random_range(0..2));
                let x2 = Value::Scalar(env.random_range(0..2));
                // Real world.
                let mut rng = StdRng::seed_from_u64(s ^ 0x5eed);
                let inst = gk_instance("and", cfg.clone(), [x1.clone(), x2.clone()]);
                let mut adv = GkAttack::new(rule.clone());
                let res =
                    execute(inst, &mut adv, &mut rng, 3 * cfg.m + 20).expect("execution succeeds");
                let honest = res.outputs.get(&PartyId(1)).cloned().unwrap_or(Value::Bot);
                *real.entry(symbol(&res.learned, &honest)).or_default() += 1;
                // Ideal world (decorrelated randomness).
                let mut irng = StdRng::seed_from_u64(s ^ 0xdead_0000);
                let (il, ih) = ideal_observables(&cfg, &rule, &x1, &x2, &mut irng);
                *ideal.entry(symbol(&il, &ih)).or_default() += 1;
            }
            (real, ideal)
        })
        .into_iter()
        .fold(
            (BTreeMap::new(), BTreeMap::new()),
            |(mut ra, mut ia): (BTreeMap<String, usize>, BTreeMap<String, usize>), (r, i)| {
                for (k, v) in r {
                    *ra.entry(k).or_default() += v;
                }
                for (k, v) in i {
                    *ia.entry(k).or_default() += v;
                }
                (ra, ia)
            },
        );
        let mut keys: Vec<String> = real_counts
            .keys()
            .chain(ideal_counts.keys())
            .cloned()
            .collect();
        keys.sort();
        keys.dedup();
        let n = trials as f64;
        let tv: f64 = keys
            .iter()
            .map(|k| {
                let r = *real_counts.get(k).unwrap_or(&0) as f64 / n;
                let i = *ideal_counts.get(k).unwrap_or(&0) as f64 / n;
                (r - i).abs()
            })
            .sum::<f64>()
            / 2.0;
        rows.push(Row::upper_bound(
            format!("TV(real, F^$-ideal) under {rule:?}"),
            0.06,
            tv,
            0.02,
            0.0,
        ));
    }
    Report::new(
        "E17",
        "Theorem 23: the GK protocol realizes F^{∧,$} — real and ideal observables coincide",
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_run_matches_closed_forms() {
        // S_A with q = 1/4: Z2 = 1/4, Z1 = q/2 = 1/8.
        let sim = Simulator {
            q: 0.25,
            x2_sub: 0,
            reply_learned: false,
            abort_replace: false,
        };
        let (z1, z2) = ideal_acceptances(&sim, 20_000, 5);
        assert!((z2.rate - 0.25).abs() < 0.02, "Z2 = {}", z2.rate);
        assert!((z1.rate - 0.125).abs() < 0.02, "Z1 = {}", z1.rate);
        // S_C (learning + abort-replace) with q = 1/4: Z1 = 3q/4 = 3/16.
        let sim_c = Simulator {
            q: 0.25,
            x2_sub: 1,
            reply_learned: true,
            abort_replace: true,
        };
        let (z1c, _) = ideal_acceptances(&sim_c, 20_000, 6);
        assert!((z1c.rate - 0.1875).abs() < 0.02, "Z1(C) = {}", z1c.rate);
    }

    #[test]
    fn e12_reproduces() {
        let r = e12(400, 12);
        assert!(r.pass(), "{}", r.render());
    }

    #[test]
    fn e17_reproduces() {
        let r = e17(600, 17);
        assert!(r.pass(), "{}", r.render());
    }
}
