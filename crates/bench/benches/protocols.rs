//! Criterion benchmarks for protocol executions: GMW gate throughput,
//! engine round throughput, full fairness-experiment executions, and the
//! tracing overhead smoke check (no-op tracer vs plain engine).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fair_circuits::functions;
use fair_core::strategy::CorruptionPlan;
use fair_core::{run_once, Payoff};
use fair_protocols::coin_toss::coin_toss_instance;
use fair_protocols::scenarios::{Opt2Scenario, OptnScenario, Strategy};
use fair_runtime::{execute, execute_traced, Passive};
use fair_sfe::gmw::{gmw_instance, GmwConfig};
use fair_trace::{NoopTracer, RecordingTracer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gmw(c: &mut Criterion) {
    let mut g = c.benchmark_group("gmw");
    for bits in [4usize, 8, 16] {
        let cfg = GmwConfig::new(functions::millionaires(bits), vec![bits, bits]);
        let ands = cfg.circuit().and_count() as u64;
        g.throughput(Throughput::Elements(ands));
        g.bench_function(format!("millionaires_{bits}b"), |b| {
            b.iter_batched(
                || StdRng::seed_from_u64(1),
                |mut rng| {
                    let inst = gmw_instance(&cfg, &[5, 9], &mut rng);
                    execute(inst, &mut Passive, &mut rng, cfg.rounds() + 4)
                        .expect("execution succeeds")
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_opt2_trial(c: &mut Criterion) {
    let payoff = Payoff::standard();
    c.bench_function("opt2/lock_abort_trial", |b| {
        let scenario = Opt2Scenario {
            strategy: Strategy::LockAbort(CorruptionPlan::RandomSingleton),
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_once(&scenario, &payoff, seed)
        })
    });
}

fn bench_optn_trial(c: &mut Criterion) {
    let payoff = Payoff::standard();
    let mut g = c.benchmark_group("optn_trial");
    for n in [3usize, 5, 8] {
        g.bench_function(format!("n{n}"), |b| {
            let scenario = OptnScenario {
                n,
                strategy: Strategy::LockAbort(CorruptionPlan::RandomSubset(n - 1)),
            };
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_once(&scenario, &payoff, seed)
            })
        });
    }
    g.finish();
}

/// The satellite smoke check for the tracing tentpole: `execute` (which
/// monomorphizes `execute_traced::<_, NoopTracer>`) against an explicit
/// no-op-traced call and a recording tracer. The first two must be
/// indistinguishable — every emission site is behind the compile-time
/// `T::ENABLED` constant — while the recording row shows what enabling
/// observability actually costs.
fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    g.bench_function("coin_toss/untraced", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(7),
            |mut rng| {
                let inst = coin_toss_instance(&mut rng);
                execute(inst, &mut Passive, &mut rng, 10).expect("execution succeeds")
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("coin_toss/noop_traced", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(7),
            |mut rng| {
                let inst = coin_toss_instance(&mut rng);
                execute_traced(inst, &mut Passive, &mut rng, 10, &mut NoopTracer)
                    .expect("execution succeeds")
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("coin_toss/recording", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(7),
            |mut rng| {
                let inst = coin_toss_instance(&mut rng);
                let mut tracer = RecordingTracer::with_ring(256);
                execute_traced(inst, &mut Passive, &mut rng, 10, &mut tracer)
                    .expect("execution succeeds")
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gmw,
    bench_opt2_trial,
    bench_optn_trial,
    bench_trace_overhead
);
criterion_main!(benches);
