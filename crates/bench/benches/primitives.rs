//! Criterion benchmarks for the cryptographic substrate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fair_crypto::{authshare, commit, hmac, mac, sha256, share, sign};
use fair_field::Fp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| b.iter(|| sha256::sha256(&data)));
    }
    g.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0x5au8; 1024];
    c.bench_function("hmac_sha256/1KiB", |b| {
        b.iter(|| hmac::hmac_sha256(b"key", &data))
    });
}

fn bench_commit(c: &mut Criterion) {
    c.bench_function("commit/32B", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(7),
            |mut rng| commit::commit(b"a thirty-two byte long messagee!", &mut rng),
            BatchSize::SmallInput,
        )
    });
}

fn bench_lamport(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let (sk, vk) = sign::keygen(&mut rng);
    let sig = sign::sign(&sk, b"message");
    c.bench_function("lamport/keygen", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(2),
            |mut rng| sign::keygen(&mut rng),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("lamport/sign", |b| b.iter(|| sign::sign(&sk, b"message")));
    c.bench_function("lamport/verify", |b| {
        b.iter(|| sign::verify(&vk, b"message", &sig))
    });
}

fn bench_mac(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let key = mac::MacKey::random(&mut rng);
    let msg: Vec<Fp> = (0..32u64).map(Fp::new).collect();
    c.bench_function("poly_mac/tag_32_elems", |b| b.iter(|| key.tag_elems(&msg)));
}

fn bench_sharing(c: &mut Criterion) {
    c.bench_function("shamir/share_3_of_5", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(4),
            |mut rng| share::shamir_share(Fp::new(42), 3, 5, &mut rng),
            BatchSize::SmallInput,
        )
    });
    let mut rng = StdRng::seed_from_u64(5);
    let shares = share::shamir_share(Fp::new(42), 3, 5, &mut rng);
    c.bench_function("shamir/reconstruct_3_of_5", |b| {
        b.iter(|| share::shamir_reconstruct(&shares[..3], 3))
    });
    c.bench_function("authshare/deal_8_elems", |b| {
        b.iter_batched(
            || {
                (
                    StdRng::seed_from_u64(6),
                    (0..8u64).map(Fp::new).collect::<Vec<_>>(),
                )
            },
            |(mut rng, secret)| authshare::deal(&secret, &mut rng),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac,
    bench_commit,
    bench_lamport,
    bench_mac,
    bench_sharing
);
criterion_main!(benches);
