//! A counter-mode pseudorandom generator built on HMAC-SHA256, plus helpers
//! for sampling field elements.
//!
//! Every protocol execution in this workspace is driven by seeded
//! randomness; `Prg` is the expansion primitive (e.g. for deriving per-party
//! sub-seeds and one-time pads), while sampling helpers draw uniform field
//! elements from any [`rand::Rng`].

use fair_field::{Fp, Gf256, MODULUS};
use rand::Rng;

use crate::hmac::hmac_sha256;

/// Deterministic byte stream: block i is `HMAC-SHA256(seed, i)`.
///
/// # Examples
///
/// ```
/// use fair_crypto::prg::Prg;
///
/// let mut p1 = Prg::new(b"seed");
/// let mut p2 = Prg::new(b"seed");
/// assert_eq!(p1.next_bytes(40), p2.next_bytes(40));
/// ```
#[derive(Clone)]
pub struct Prg {
    seed: Vec<u8>,
    counter: u64,
    buf: Vec<u8>,
}

// The seed (and the buffered output derived from it) is key material; only
// the public counter position is printable (fairlint rule S1).
impl core::fmt::Debug for Prg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Prg")
            .field("seed", &"<redacted>")
            .field("counter", &self.counter)
            .finish()
    }
}

impl Prg {
    /// Creates a PRG from an arbitrary-length seed.
    pub fn new(seed: &[u8]) -> Prg {
        Prg {
            seed: seed.to_vec(),
            counter: 0,
            buf: Vec::new(),
        }
    }

    fn refill(&mut self) {
        let block = hmac_sha256(&self.seed, &self.counter.to_be_bytes());
        self.counter += 1;
        self.buf.extend_from_slice(&block);
    }

    /// Produces the next `n` bytes of the stream.
    pub fn next_bytes(&mut self, n: usize) -> Vec<u8> {
        while self.buf.len() < n {
            self.refill();
        }
        let rest = self.buf.split_off(n);
        core::mem::replace(&mut self.buf, rest)
    }

    /// Produces the next `u64` of the stream (big-endian).
    pub fn next_u64(&mut self) -> u64 {
        let b = self.next_bytes(8);
        u64::from_be_bytes(b.try_into().expect("8 bytes"))
    }

    /// Samples a uniform element of GF(2^61 − 1) by rejection.
    pub fn next_fp(&mut self) -> Fp {
        loop {
            let x = self.next_u64() & MODULUS; // 61 low bits
            if x < MODULUS {
                return Fp::new(x);
            }
        }
    }
}

/// Samples a uniform element of GF(2^61 − 1) from an external RNG by
/// rejection (rejection probability 2^{−61} per draw).
pub fn random_fp<R: Rng + ?Sized>(rng: &mut R) -> Fp {
    loop {
        let x = rng.next_u64() & MODULUS;
        if x < MODULUS {
            return Fp::new(x);
        }
    }
}

/// Samples a uniform GF(2^8) element.
pub fn random_gf256<R: Rng + ?Sized>(rng: &mut R) -> Gf256 {
    Gf256::new((rng.next_u64() & 0xff) as u8)
}

/// Samples `n` uniform bytes.
pub fn random_bytes<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<u8> {
    let mut out = vec![0u8; n];
    rng.fill_bytes(&mut out);
    out
}

/// One-time pad: XORs `msg` with `pad`.
///
/// # Panics
///
/// Panics if the lengths differ — a one-time pad must cover the whole
/// message.
pub fn xor_pad(msg: &[u8], pad: &[u8]) -> Vec<u8> {
    assert_eq!(msg.len(), pad.len(), "one-time pad length mismatch");
    msg.iter().zip(pad).map(|(a, b)| a ^ b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prg_is_deterministic_and_seed_separated() {
        let a: Vec<u8> = Prg::new(b"alpha").next_bytes(96);
        let b: Vec<u8> = Prg::new(b"alpha").next_bytes(96);
        let c: Vec<u8> = Prg::new(b"beta").next_bytes(96);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn prg_chunking_is_stream_consistent() {
        let mut p = Prg::new(b"s");
        let mut got = p.next_bytes(10);
        got.extend(p.next_bytes(55));
        got.extend(p.next_bytes(3));
        let all = Prg::new(b"s").next_bytes(68);
        assert_eq!(got, all);
    }

    #[test]
    fn prg_u64_consumes_eight_bytes() {
        let mut p = Prg::new(b"s");
        let x = p.next_u64();
        let mut q = Prg::new(b"s");
        let b = q.next_bytes(8);
        assert_eq!(x, u64::from_be_bytes(b.try_into().unwrap()));
    }

    #[test]
    fn field_sampling_is_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen_high = false;
        for _ in 0..1000 {
            let x = random_fp(&mut rng);
            assert!(x.value() < MODULUS);
            if x.value() > MODULUS / 2 {
                seen_high = true;
            }
        }
        assert!(seen_high, "sampler never produced a high element");
    }

    #[test]
    fn prg_fp_in_range() {
        let mut p = Prg::new(b"fp");
        for _ in 0..100 {
            assert!(p.next_fp().value() < MODULUS);
        }
    }

    #[test]
    fn xor_pad_roundtrips() {
        let msg = b"attack at dawn".to_vec();
        let mut rng = StdRng::seed_from_u64(1);
        let pad = random_bytes(&mut rng, msg.len());
        let ct = xor_pad(&msg, &pad);
        assert_ne!(ct, msg);
        assert_eq!(xor_pad(&ct, &pad), msg);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_pad_rejects_short_pad() {
        xor_pad(b"long message", b"short");
    }
}
