//! Lamport one-time signatures over SHA-256.
//!
//! The multi-party protocol Π^Opt_nSFE (paper, Appendix B) has the hybrid
//! functionality sign the designated output `(y, σ)` so that in the
//! broadcast phase no coalition can announce a forged output. One signature
//! per execution is exactly the one-time setting Lamport signatures are made
//! for, and they are existentially unforgeable assuming only the preimage
//! resistance of SHA-256 — no number theory required.
//!
//! Messages of arbitrary length are first hashed to 256 bits; the signature
//! reveals one of two 32-byte preimages per message-hash bit.

use rand::Rng;

use crate::ct::{ct_eq_bytes, CtEq};
use crate::prg::random_bytes;
use crate::sha256::{sha256, sha256_parts, Digest};

const BITS: usize = 256;

fn ct_eq_digest_pairs(a: &[[Digest; 2]], b: &[[Digest; 2]]) -> bool {
    let mut ok = a.len() == b.len();
    for (x, y) in a.iter().zip(b.iter()) {
        ok &= x[0].ct_eq(&y[0]) & x[1].ct_eq(&y[1]);
    }
    ok
}

/// A Lamport signing key: 2×256 random 32-byte preimages.
///
/// Secret key material: `Debug` is redacted and equality is constant-time
/// (fairlint rule S1).
#[derive(Clone)]
pub struct SigningKey {
    secrets: Vec<[Digest; 2]>, // BITS entries
}

impl core::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("SigningKey(<redacted>)")
    }
}

impl PartialEq for SigningKey {
    fn eq(&self, other: &Self) -> bool {
        ct_eq_digest_pairs(&self.secrets, &other.secrets)
    }
}

impl Eq for SigningKey {}

/// A Lamport verification key: the hashes of the signing-key preimages.
///
/// Public material, but compared in constant time anyway so key checks
/// are uniform with the rest of the crate.
#[derive(Clone)]
pub struct VerifyingKey {
    hashes: Vec<[Digest; 2]>, // BITS entries
}

impl core::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "VerifyingKey({} bit positions)", self.hashes.len())
    }
}

impl PartialEq for VerifyingKey {
    fn eq(&self, other: &Self) -> bool {
        ct_eq_digest_pairs(&self.hashes, &other.hashes)
    }
}

impl Eq for VerifyingKey {}

/// A Lamport signature: one revealed preimage per message-hash bit.
///
/// The reveals are spent one-time secrets; equality is constant-time and
/// `Debug` is redacted.
#[derive(Clone)]
pub struct Signature {
    reveals: Vec<Digest>, // BITS entries
}

impl core::fmt::Debug for Signature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("Signature(<redacted>)")
    }
}

impl PartialEq for Signature {
    fn eq(&self, other: &Self) -> bool {
        let mut ok = self.reveals.len() == other.reveals.len();
        for (x, y) in self.reveals.iter().zip(other.reveals.iter()) {
            ok &= x.ct_eq(y);
        }
        ok
    }
}

impl Eq for Signature {}

impl VerifyingKey {
    /// Serializes the key (2 × 256 × 32 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(BITS * 64);
        for pair in &self.hashes {
            out.extend_from_slice(&pair[0]);
            out.extend_from_slice(&pair[1]);
        }
        out
    }

    /// Parses a serialized key; `None` on wrong length.
    pub fn from_bytes(bytes: &[u8]) -> Option<VerifyingKey> {
        if bytes.len() != BITS * 64 {
            return None;
        }
        let mut hashes = Vec::with_capacity(BITS);
        for chunk in bytes.chunks(64) {
            let h0: Digest = chunk[..32].try_into().ok()?;
            let h1: Digest = chunk[32..].try_into().ok()?;
            hashes.push([h0, h1]);
        }
        Some(VerifyingKey { hashes })
    }
}

impl Signature {
    /// Serializes the signature (256 × 32 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(BITS * 32);
        for r in &self.reveals {
            out.extend_from_slice(r);
        }
        out
    }

    /// Parses a serialized signature; `None` on wrong length.
    pub fn from_bytes(bytes: &[u8]) -> Option<Signature> {
        if bytes.len() != BITS * 32 {
            return None;
        }
        let reveals = bytes
            .chunks(32)
            .map(|c| c.try_into().expect("32-byte chunk"))
            .collect();
        Some(Signature { reveals })
    }
}

/// Generates a fresh one-time key pair.
pub fn keygen<R: Rng + ?Sized>(rng: &mut R) -> (SigningKey, VerifyingKey) {
    let mut secrets = Vec::with_capacity(BITS);
    let mut hashes = Vec::with_capacity(BITS);
    for _ in 0..BITS {
        let s0: Digest = random_bytes(rng, 32).try_into().expect("32 bytes");
        let s1: Digest = random_bytes(rng, 32).try_into().expect("32 bytes");
        hashes.push([sha256(&s0), sha256(&s1)]);
        secrets.push([s0, s1]);
    }
    (SigningKey { secrets }, VerifyingKey { hashes })
}

/// Generates `n` independent one-time key pairs (a per-party PKI setup).
pub fn keygen_many<R: Rng + ?Sized>(n: usize, rng: &mut R) -> (Vec<SigningKey>, Vec<VerifyingKey>) {
    let mut sks = Vec::with_capacity(n);
    let mut vks = Vec::with_capacity(n);
    for _ in 0..n {
        let (sk, vk) = keygen(rng);
        sks.push(sk);
        vks.push(vk);
    }
    (sks, vks)
}

fn message_bits(message: &[u8]) -> Vec<bool> {
    let d = sha256_parts(&[b"fair-protocols/lamport", message]);
    let mut bits = Vec::with_capacity(BITS);
    for byte in d {
        for i in 0..8 {
            bits.push((byte >> (7 - i)) & 1 == 1);
        }
    }
    bits
}

/// Signs `message` with the one-time key.
///
/// Signing two different messages with the same key leaks it — callers in
/// this workspace sign exactly once per generated key, as the paper's
/// functionality does.
pub fn sign(key: &SigningKey, message: &[u8]) -> Signature {
    let reveals = message_bits(message)
        .iter()
        .enumerate()
        .map(|(i, &b)| key.secrets[i][b as usize])
        .collect();
    Signature { reveals }
}

/// Verifies `signature` on `message` under `key`.
///
/// Every bit position is checked unconditionally — the loop never exits
/// early on the first bad preimage, so verification time does not reveal
/// which reveal a forger got wrong.
pub fn verify(key: &VerifyingKey, message: &[u8], signature: &Signature) -> bool {
    if signature.reveals.len() != BITS {
        return false;
    }
    let mut ok = true;
    for (i, &b) in message_bits(message).iter().enumerate() {
        ok &= ct_eq_bytes(&sha256(&signature.reveals[i]), &key.hashes[i][b as usize]);
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(10);
        let (sk, vk) = keygen(&mut rng);
        let sig = sign(&sk, b"the output y");
        assert!(verify(&vk, b"the output y", &sig));
    }

    #[test]
    fn signature_does_not_transfer_to_other_message() {
        let mut rng = StdRng::seed_from_u64(11);
        let (sk, vk) = keygen(&mut rng);
        let sig = sign(&sk, b"message one");
        assert!(!verify(&vk, b"message two", &sig));
    }

    #[test]
    fn signature_fails_under_other_key() {
        let mut rng = StdRng::seed_from_u64(12);
        let (sk, _) = keygen(&mut rng);
        let (_, vk2) = keygen(&mut rng);
        let sig = sign(&sk, b"msg");
        assert!(!verify(&vk2, b"msg", &sig));
    }

    #[test]
    fn tampered_reveal_rejected() {
        let mut rng = StdRng::seed_from_u64(13);
        let (sk, vk) = keygen(&mut rng);
        let mut sig = sign(&sk, b"msg");
        sig.reveals[17][0] ^= 1;
        assert!(!verify(&vk, b"msg", &sig));
    }

    #[test]
    fn truncated_signature_rejected() {
        let mut rng = StdRng::seed_from_u64(14);
        let (sk, vk) = keygen(&mut rng);
        let mut sig = sign(&sk, b"msg");
        sig.reveals.pop();
        assert!(!verify(&vk, b"msg", &sig));
    }

    #[test]
    fn serialization_roundtrips() {
        let mut rng = StdRng::seed_from_u64(16);
        let (sk, vk) = keygen(&mut rng);
        let sig = sign(&sk, b"payload");
        let vk2 = VerifyingKey::from_bytes(&vk.to_bytes()).expect("roundtrip");
        let sig2 = Signature::from_bytes(&sig.to_bytes()).expect("roundtrip");
        assert_eq!(vk, vk2);
        assert_eq!(sig, sig2);
        assert!(verify(&vk2, b"payload", &sig2));
    }

    #[test]
    fn deserialization_rejects_bad_lengths() {
        assert!(VerifyingKey::from_bytes(&[0u8; 10]).is_none());
        assert!(Signature::from_bytes(&[0u8; 10]).is_none());
        assert!(Signature::from_bytes(&[]).is_none());
    }

    #[test]
    fn empty_message_signs_fine() {
        let mut rng = StdRng::seed_from_u64(15);
        let (sk, vk) = keygen(&mut rng);
        let sig = sign(&sk, b"");
        assert!(verify(&vk, b"", &sig));
        assert!(!verify(&vk, b"x", &sig));
    }
}
