//! Information-theoretic one-time MAC over GF(2^61 − 1).
//!
//! The authenticated secret sharing of the paper (Appendix A) needs a MAC
//! `tag(x, k)` whose unforgeability does not rest on computational
//! assumptions, so that the share-verification error is a crisp, analyzable
//! quantity. We use the standard polynomial-evaluation MAC: a key is a pair
//! `(a, b)` of field elements and the tag of a message `m = (m_1, …, m_ℓ)`
//! (packed into field elements) is `b + Σ_i a^i · m_i`. A forger who never
//! saw a tag under the key succeeds with probability 1/p; one who saw one
//! tag succeeds with probability ≤ ℓ/p ≤ 2^{−50} for every message length
//! used in this workspace.

use fair_field::Fp;
use rand::Rng;

use crate::ct::CtEq;
use crate::prg::random_fp;

/// A one-time MAC key `(a, b)`.
///
/// Key material: `Debug` is redacted and equality is constant-time (no
/// derived `PartialEq`/`Debug` — fairlint rule S1).
#[derive(Clone, Copy)]
pub struct MacKey {
    a: Fp,
    b: Fp,
}

impl core::fmt::Debug for MacKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("MacKey(<redacted>)")
    }
}

impl PartialEq for MacKey {
    fn eq(&self, other: &Self) -> bool {
        self.a.ct_eq(&other.a) & self.b.ct_eq(&other.b)
    }
}

impl Eq for MacKey {}

impl CtEq for MacKey {
    fn ct_eq(&self, other: &Self) -> bool {
        self == other
    }
}

/// A MAC tag (a single field element).
///
/// Authenticator material: `Debug` is redacted and equality is
/// constant-time, so tag verification cannot leak a mismatch position.
#[derive(Clone, Copy)]
pub struct MacTag(pub Fp);

impl core::fmt::Debug for MacTag {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("MacTag(<redacted>)")
    }
}

impl PartialEq for MacTag {
    fn eq(&self, other: &Self) -> bool {
        self.0.ct_eq(&other.0)
    }
}

impl Eq for MacTag {}

impl CtEq for MacTag {
    fn ct_eq(&self, other: &Self) -> bool {
        self == other
    }
}

impl MacKey {
    /// Samples a fresh key.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> MacKey {
        MacKey {
            a: random_fp(rng),
            b: random_fp(rng),
        }
    }

    /// Tags a message given as field elements.
    pub fn tag_elems(&self, msg: &[Fp]) -> MacTag {
        let mut acc = self.b;
        let mut pow = self.a;
        for &m in msg {
            acc += pow * m;
            pow *= self.a;
        }
        MacTag(acc)
    }

    /// Verifies a tag on a field-element message in constant time (the
    /// comparison never reveals where a forged tag diverges).
    pub fn verify_elems(&self, msg: &[Fp], tag: &MacTag) -> bool {
        self.tag_elems(msg).ct_eq(tag)
    }

    /// Tags an arbitrary byte string (packed 7 bytes per element, with the
    /// length bound into the first element so no padding collisions arise).
    pub fn tag_bytes(&self, msg: &[u8]) -> MacTag {
        self.tag_elems(&pack_bytes(msg))
    }

    /// Verifies a tag on a byte string.
    pub fn verify_bytes(&self, msg: &[u8], tag: &MacTag) -> bool {
        self.verify_elems(&pack_bytes(msg), tag)
    }
}

/// Packs a byte string into field elements: element 0 is the length, then
/// 7 bytes per element (each < 2^56 < p).
pub fn pack_bytes(msg: &[u8]) -> Vec<Fp> {
    let mut out = Vec::with_capacity(1 + msg.len().div_ceil(7));
    out.push(Fp::new(msg.len() as u64));
    for chunk in msg.chunks(7) {
        let mut v = 0u64;
        for &b in chunk {
            v = (v << 8) | b as u64;
        }
        out.push(Fp::new(v));
    }
    out
}

/// Inverse of [`pack_bytes`]; `None` if the elements are not a valid
/// packing.
pub fn unpack_bytes(elems: &[Fp]) -> Option<Vec<u8>> {
    let (&len_elem, chunks) = elems.split_first()?;
    let len = len_elem.value() as usize;
    if chunks.len() != len.div_ceil(7) {
        return None;
    }
    let mut out = Vec::with_capacity(len);
    for (i, &c) in chunks.iter().enumerate() {
        let chunk_len = if (i + 1) * 7 <= len { 7 } else { len - i * 7 };
        let v = c.value();
        if chunk_len < 7 && v >> (8 * chunk_len) != 0 {
            return None; // non-canonical high bits
        }
        for j in (0..chunk_len).rev() {
            out.push(((v >> (8 * j)) & 0xff) as u8);
        }
    }
    Some(out)
}

impl MacKey {
    /// Serializes the key (16 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.a.value().to_be_bytes());
        out.extend_from_slice(&self.b.value().to_be_bytes());
        out
    }

    /// Parses a serialized key; `None` on wrong length or non-canonical
    /// field elements.
    pub fn from_bytes(bytes: &[u8]) -> Option<MacKey> {
        if bytes.len() != 16 {
            return None;
        }
        let a = u64::from_be_bytes(bytes[..8].try_into().ok()?);
        let b = u64::from_be_bytes(bytes[8..].try_into().ok()?);
        if a >= fair_field::MODULUS || b >= fair_field::MODULUS {
            return None;
        }
        Some(MacKey {
            a: Fp::new(a),
            b: Fp::new(b),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tag_verify_roundtrip_elems() {
        let mut rng = StdRng::seed_from_u64(0);
        let k = MacKey::random(&mut rng);
        let msg = vec![Fp::new(5), Fp::new(0), Fp::new(123456)];
        let t = k.tag_elems(&msg);
        assert!(k.verify_elems(&msg, &t));
    }

    #[test]
    fn modified_message_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let k = MacKey::random(&mut rng);
        let msg = vec![Fp::new(5), Fp::new(6)];
        let t = k.tag_elems(&msg);
        let forged = vec![Fp::new(5), Fp::new(7)];
        assert!(!k.verify_elems(&forged, &t));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let k1 = MacKey::random(&mut rng);
        let k2 = MacKey::random(&mut rng);
        let msg = vec![Fp::new(9)];
        let t = k1.tag_elems(&msg);
        assert!(!k2.verify_elems(&msg, &t));
    }

    #[test]
    fn byte_packing_binds_length() {
        // "ab" and "ab\0" must pack differently even though the trailing
        // zero would vanish in a naive packing.
        assert_ne!(pack_bytes(b"ab"), pack_bytes(b"ab\0"));
        assert_ne!(pack_bytes(b""), pack_bytes(b"\0"));
    }

    #[test]
    fn tag_bytes_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let k = MacKey::random(&mut rng);
        let t = k.tag_bytes(b"the shared value");
        assert!(k.verify_bytes(b"the shared value", &t));
        assert!(!k.verify_bytes(b"the shared valuX", &t));
    }

    #[test]
    fn empty_message_tag_is_b() {
        let mut rng = StdRng::seed_from_u64(4);
        let k = MacKey::random(&mut rng);
        let t = k.tag_elems(&[]);
        assert_eq!(t.0, k.b);
    }

    #[test]
    fn unpack_inverts_pack() {
        for msg in [
            &b""[..],
            b"a",
            b"1234567",
            b"12345678",
            b"arbitrary longer payload!",
        ] {
            assert_eq!(unpack_bytes(&pack_bytes(msg)).as_deref(), Some(msg));
        }
    }

    #[test]
    fn unpack_rejects_malformed() {
        assert!(unpack_bytes(&[]).is_none());
        // Length claims 7 bytes but no chunk follows.
        assert!(unpack_bytes(&[Fp::new(7)]).is_none());
        // Non-canonical high bits in a short final chunk.
        assert!(unpack_bytes(&[Fp::new(1), Fp::new(0x1_00)]).is_none());
    }

    #[test]
    fn mac_key_serialization_roundtrips() {
        let mut rng = StdRng::seed_from_u64(5);
        let k = MacKey::random(&mut rng);
        let k2 = MacKey::from_bytes(&k.to_bytes()).expect("roundtrip");
        assert_eq!(k, k2);
        assert!(MacKey::from_bytes(&[0u8; 3]).is_none());
        assert!(
            MacKey::from_bytes(&[0xff; 16]).is_none(),
            "non-canonical rejected"
        );
    }

    proptest! {
        #[test]
        fn prop_pack_unpack_roundtrip(msg in proptest::collection::vec(any::<u8>(), 0..64)) {
            let unpacked = unpack_bytes(&pack_bytes(&msg));
            prop_assert_eq!(unpacked, Some(msg));
        }

        #[test]
        fn prop_roundtrip_bytes(msg in proptest::collection::vec(any::<u8>(), 0..64), seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let k = MacKey::random(&mut rng);
            let t = k.tag_bytes(&msg);
            prop_assert!(k.verify_bytes(&msg, &t));
        }

        #[test]
        fn prop_distinct_messages_distinct_packing(
            a in proptest::collection::vec(any::<u8>(), 0..32),
            b in proptest::collection::vec(any::<u8>(), 0..32),
        ) {
            prop_assume!(a != b);
            prop_assert_ne!(pack_bytes(&a), pack_bytes(&b));
        }
    }
}
