//! Authenticated two-out-of-two additive secret sharing — the concrete
//! instantiation from Appendix A of the paper.
//!
//! A sharing of a secret `s` (a vector of field elements) is a pair
//! `(s₁, s₂)` of random vectors with `s₁ + s₂ = (s, tag(s, k₁), tag(s, k₂))`,
//! where `k₁, k₂` are one-time MAC keys associated with parties p₁ and p₂.
//! Party `pᵢ` holds the *share* `⟨s⟩ᵢ = (sᵢ, tag(sᵢ, k₍¬ᵢ₎))` together with
//! its own key `kᵢ`. To reconstruct towards `pᵢ`, party `p₍¬ᵢ₎` sends its
//! share; `pᵢ` verifies the summand tag under `kᵢ`, adds the summands,
//! parses the result as `(s, t₁, t₂)` and finally verifies `tᵢ` on `s`.
//!
//! Any manipulation of the transmitted summand is caught with probability
//! `1 − ℓ/p`, which is what lets the protocols in `fair-protocols` treat
//! "invalid share" and "abort" as the only adversarial options in the
//! reconstruction phase — exactly the dichotomy the paper's Theorem 3 proof
//! relies on.

use fair_field::Fp;
use rand::Rng;

use crate::ct::CtEq;
use crate::mac::{MacKey, MacTag};
use crate::share::{additive_share_vec, ShareError};

/// The share held by one party: a summand and a tag on that summand under
/// the *other* party's key (so the other party can verify it on receipt).
///
/// Share material: `Debug` is redacted and equality is constant-time
/// (fairlint rule S1).
#[derive(Clone)]
pub struct AuthShare {
    /// This party's additive summand of the authenticated payload.
    pub summand: Vec<Fp>,
    /// MAC tag on `summand` under the counterparty's key.
    pub summand_tag: MacTag,
}

impl core::fmt::Debug for AuthShare {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AuthShare")
            .field(
                "summand",
                &format_args!("<{} elems redacted>", self.summand.len()),
            )
            .field("summand_tag", &self.summand_tag)
            .finish()
    }
}

impl PartialEq for AuthShare {
    fn eq(&self, other: &Self) -> bool {
        self.summand.ct_eq(&other.summand) & self.summand_tag.ct_eq(&other.summand_tag)
    }
}

impl Eq for AuthShare {}

/// Everything a party holds after dealing: its share plus its MAC key.
///
/// Contains key material; `Debug` is redacted and equality constant-time.
#[derive(Clone)]
pub struct AuthShareHolding {
    /// The transferable share.
    pub share: AuthShare,
    /// The party's own verification key `kᵢ`.
    pub key: MacKey,
}

impl core::fmt::Debug for AuthShareHolding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AuthShareHolding")
            .field("share", &self.share)
            .field("key", &self.key)
            .finish()
    }
}

impl PartialEq for AuthShareHolding {
    fn eq(&self, other: &Self) -> bool {
        (self.share == other.share) & (self.key == other.key)
    }
}

impl Eq for AuthShareHolding {}

/// Deals an authenticated 2-of-2 sharing of `secret`; returns the holdings
/// of p₁ and p₂.
pub fn deal<R: Rng + ?Sized>(secret: &[Fp], rng: &mut R) -> (AuthShareHolding, AuthShareHolding) {
    let k1 = MacKey::random(rng);
    let k2 = MacKey::random(rng);
    // Authenticated payload: (s, tag(s,k1), tag(s,k2)).
    let mut payload = secret.to_vec();
    payload.push(k1.tag_elems(secret).0);
    payload.push(k2.tag_elems(secret).0);
    let shares = additive_share_vec(&payload, 2, rng);
    let (s1, s2) = (shares[0].clone(), shares[1].clone());
    let h1 = AuthShareHolding {
        share: AuthShare {
            summand_tag: k2.tag_elems(&s1),
            summand: s1,
        },
        key: k1,
    };
    let h2 = AuthShareHolding {
        share: AuthShare {
            summand_tag: k1.tag_elems(&s2),
            summand: s2,
        },
        key: k2,
    };
    (h1, h2)
}

impl AuthShare {
    /// Serializes the share: `[count u64][summand elems…][tag]`, all
    /// big-endian u64s.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * (self.summand.len() + 2));
        out.extend_from_slice(&(self.summand.len() as u64).to_be_bytes());
        for s in &self.summand {
            out.extend_from_slice(&s.value().to_be_bytes());
        }
        out.extend_from_slice(&self.summand_tag.0.value().to_be_bytes());
        out
    }

    /// Parses a serialized share; `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<AuthShare> {
        if bytes.len() < 16 || !bytes.len().is_multiple_of(8) {
            return None;
        }
        let count = u64::from_be_bytes(bytes[..8].try_into().ok()?) as usize;
        if bytes.len() != 8 * (count + 2) {
            return None;
        }
        let mut elems = Vec::with_capacity(count + 1);
        for chunk in bytes[8..].chunks(8) {
            let v = u64::from_be_bytes(chunk.try_into().ok()?);
            if v >= fair_field::MODULUS {
                return None;
            }
            elems.push(Fp::new(v));
        }
        let tag = MacTag(elems.pop()?);
        Some(AuthShare {
            summand: elems,
            summand_tag: tag,
        })
    }
}

impl AuthShareHolding {
    /// Serializes the holding: the share followed by the 16-byte MAC key.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.share.to_bytes();
        out.extend_from_slice(&self.key.to_bytes());
        out
    }

    /// Parses a serialized holding; `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<AuthShareHolding> {
        if bytes.len() < 16 {
            return None;
        }
        let (share_bytes, key_bytes) = bytes.split_at(bytes.len() - 16);
        Some(AuthShareHolding {
            share: AuthShare::from_bytes(share_bytes)?,
            key: MacKey::from_bytes(key_bytes)?,
        })
    }
}

/// Index of the tag belonging to party `i` (1-based) inside the payload.
fn tag_position(payload_len: usize, party: usize) -> usize {
    debug_assert!(party == 1 || party == 2);
    payload_len - 2 + (party - 1)
}

/// Reconstructs the secret towards the holder of `own` (party `party` ∈
/// {1, 2}), given the counterparty's transmitted share.
///
/// # Errors
///
/// Returns [`ShareError::BadTag`] if either the transmitted summand's tag or
/// the reconstructed secret's tag fails to verify — which, per the paper,
/// the honest party treats as the counterparty aborting.
///
/// # Panics
///
/// Panics if `party` is not 1 or 2.
pub fn reconstruct(
    party: usize,
    own: &AuthShareHolding,
    incoming: &AuthShare,
) -> Result<Vec<Fp>, ShareError> {
    assert!(party == 1 || party == 2, "party must be 1 or 2");
    // Verify the counterparty's summand under our key.
    if !own
        .key
        .verify_elems(&incoming.summand, &incoming.summand_tag)
    {
        return Err(ShareError::BadTag);
    }
    if incoming.summand.len() != own.share.summand.len() || own.share.summand.len() < 2 {
        return Err(ShareError::BadTag);
    }
    let payload: Vec<Fp> = own
        .share
        .summand
        .iter()
        .zip(&incoming.summand)
        .map(|(&a, &b)| a + b)
        .collect();
    let n = payload.len();
    let secret = payload[..n - 2].to_vec();
    let own_tag = MacTag(payload[tag_position(n, party)]);
    if !own.key.verify_elems(&secret, &own_tag) {
        return Err(ShareError::BadTag);
    }
    Ok(secret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn secret() -> Vec<Fp> {
        vec![Fp::new(31337), Fp::new(0), Fp::new(u64::MAX / 3)]
    }

    #[test]
    fn reconstructs_towards_both_parties() {
        let mut rng = StdRng::seed_from_u64(0);
        let (h1, h2) = deal(&secret(), &mut rng);
        assert_eq!(reconstruct(1, &h1, &h2.share).unwrap(), secret());
        assert_eq!(reconstruct(2, &h2, &h1.share).unwrap(), secret());
    }

    #[test]
    fn single_share_reveals_nothing_statistically() {
        // Re-dealing the same secret yields fresh-looking summands.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (h1, _) = deal(&secret(), &mut rng);
            seen.insert(h1.share.summand[0].value());
        }
        assert!(seen.len() > 25);
    }

    #[test]
    fn tampered_summand_is_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let (h1, h2) = deal(&secret(), &mut rng);
        let mut bad = h2.share.clone();
        bad.summand[0] += Fp::ONE;
        assert_eq!(reconstruct(1, &h1, &bad), Err(ShareError::BadTag));
    }

    #[test]
    fn tampered_tag_is_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let (h1, h2) = deal(&secret(), &mut rng);
        let mut bad = h2.share.clone();
        bad.summand_tag = MacTag(bad.summand_tag.0 + Fp::ONE);
        assert_eq!(reconstruct(1, &h1, &bad), Err(ShareError::BadTag));
    }

    #[test]
    fn share_from_different_dealing_is_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let (h1, _) = deal(&secret(), &mut rng);
        let (_, other2) = deal(&secret(), &mut rng);
        assert_eq!(reconstruct(1, &h1, &other2.share), Err(ShareError::BadTag));
    }

    #[test]
    fn wrong_length_share_is_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let (h1, h2) = deal(&secret(), &mut rng);
        let mut bad = h2.share.clone();
        bad.summand.pop();
        assert_eq!(reconstruct(1, &h1, &bad), Err(ShareError::BadTag));
    }

    #[test]
    fn share_and_holding_serialization_roundtrip() {
        let mut rng = StdRng::seed_from_u64(6);
        let (h1, h2) = deal(&secret(), &mut rng);
        let s2 = AuthShare::from_bytes(&h2.share.to_bytes()).expect("share roundtrip");
        assert_eq!(s2, h2.share);
        let h1b = AuthShareHolding::from_bytes(&h1.to_bytes()).expect("holding roundtrip");
        assert_eq!(h1b, h1);
        // Reconstruction still works after the serialization round trip.
        assert_eq!(reconstruct(1, &h1b, &s2).unwrap(), secret());
        // Malformed inputs rejected.
        assert!(AuthShare::from_bytes(&[1, 2, 3]).is_none());
        assert!(AuthShare::from_bytes(&[0u8; 8]).is_none());
        assert!(AuthShareHolding::from_bytes(&[0u8; 5]).is_none());
    }

    #[test]
    fn empty_secret_roundtrips() {
        let mut rng = StdRng::seed_from_u64(5);
        let (h1, h2) = deal(&[], &mut rng);
        assert_eq!(reconstruct(1, &h1, &h2.share).unwrap(), Vec::<Fp>::new());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(vals in proptest::collection::vec(0u64..u64::MAX, 0..8), seed: u64) {
            let s: Vec<Fp> = vals.iter().map(|&v| Fp::new(v)).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let (h1, h2) = deal(&s, &mut rng);
            prop_assert_eq!(reconstruct(1, &h1, &h2.share).unwrap(), s.clone());
            prop_assert_eq!(reconstruct(2, &h2, &h1.share).unwrap(), s);
        }

        #[test]
        fn prop_random_forgery_fails(vals in proptest::collection::vec(0u64..u64::MAX, 1..4),
                                     forged in proptest::collection::vec(0u64..u64::MAX, 3..6),
                                     tag in 0u64..u64::MAX,
                                     seed: u64) {
            let s: Vec<Fp> = vals.iter().map(|&v| Fp::new(v)).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let (h1, h2) = deal(&s, &mut rng);
            let candidate = AuthShare {
                summand: forged.iter().map(|&v| Fp::new(v)).collect(),
                summand_tag: MacTag(Fp::new(tag)),
            };
            prop_assume!(candidate != h2.share);
            prop_assert_eq!(reconstruct(1, &h1, &candidate), Err(ShareError::BadTag));
        }
    }
}
