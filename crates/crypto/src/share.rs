//! Plain (unauthenticated) secret sharing: additive n-of-n and Shamir t-of-n
//! over GF(2^61 − 1), plus XOR sharing of byte strings.
//!
//! These are the building blocks under both the authenticated 2-of-2 scheme
//! of the paper's Appendix A ([`crate::authshare`]) and the verifiable
//! ⌈n/2⌉-of-n sharing used by the honest-majority GMW protocol in Lemma 17.

use fair_field::{Fp, Poly};
use rand::Rng;

use crate::ct::CtEq;
use crate::prg::{random_bytes, random_fp};

/// Errors produced by reconstruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ShareError {
    /// Fewer shares than the threshold requires.
    TooFewShares {
        /// Shares provided.
        got: usize,
        /// Shares required.
        need: usize,
    },
    /// Two shares carry the same index.
    DuplicateIndex(u64),
    /// A MAC or signature check failed during authenticated reconstruction.
    BadTag,
}

impl core::fmt::Display for ShareError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShareError::TooFewShares { got, need } => {
                write!(f, "too few shares: got {got}, need {need}")
            }
            ShareError::DuplicateIndex(i) => write!(f, "duplicate share index {i}"),
            ShareError::BadTag => write!(f, "share authentication failed"),
        }
    }
}

impl std::error::Error for ShareError {}

/// Splits `secret` into `n` additive shares that sum to it.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn additive_share<R: Rng + ?Sized>(secret: Fp, n: usize, rng: &mut R) -> Vec<Fp> {
    assert!(n > 0, "additive_share: need at least one share");
    let mut shares: Vec<Fp> = (0..n - 1).map(|_| random_fp(rng)).collect();
    let sum: Fp = shares.iter().copied().sum();
    shares.push(secret - sum);
    shares
}

/// Reconstructs an additive sharing (the sum of all shares).
pub fn additive_reconstruct(shares: &[Fp]) -> Fp {
    shares.iter().copied().sum()
}

/// Splits each element of `secret` into `n` additive shares; returns one
/// vector share per party.
pub fn additive_share_vec<R: Rng + ?Sized>(secret: &[Fp], n: usize, rng: &mut R) -> Vec<Vec<Fp>> {
    let mut out = vec![Vec::with_capacity(secret.len()); n];
    for &s in secret {
        for (p, sh) in additive_share(s, n, rng).into_iter().enumerate() {
            out[p].push(sh);
        }
    }
    out
}

/// Reconstructs a vector additive sharing.
///
/// # Panics
///
/// Panics if shares have inconsistent lengths.
pub fn additive_reconstruct_vec(shares: &[Vec<Fp>]) -> Vec<Fp> {
    assert!(!shares.is_empty(), "need at least one share");
    let len = shares[0].len();
    assert!(
        shares.iter().all(|s| s.len() == len),
        "inconsistent share lengths"
    );
    (0..len)
        .map(|i| shares.iter().map(|s| s[i]).sum())
        .collect()
}

/// A Shamir share: the evaluation point index (1-based) and the value.
///
/// The value is share material: `Debug` prints the public index but
/// redacts the evaluation, and equality is constant-time in the value
/// (fairlint rule S1).
#[derive(Clone, Copy)]
pub struct ShamirShare {
    /// 1-based party index (the evaluation point).
    pub index: u64,
    /// Polynomial evaluation at `index`.
    pub value: Fp,
}

impl core::fmt::Debug for ShamirShare {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShamirShare")
            .field("index", &self.index)
            .field("value", &"<redacted>")
            .finish()
    }
}

impl PartialEq for ShamirShare {
    fn eq(&self, other: &Self) -> bool {
        (self.index == other.index) & self.value.ct_eq(&other.value)
    }
}

impl Eq for ShamirShare {}

/// Shamir-shares `secret` among `n` parties with threshold `t`: any `t`
/// shares reconstruct, any `t − 1` reveal nothing.
///
/// # Panics
///
/// Panics unless `1 <= t <= n`.
pub fn shamir_share<R: Rng + ?Sized>(
    secret: Fp,
    t: usize,
    n: usize,
    rng: &mut R,
) -> Vec<ShamirShare> {
    assert!(t >= 1 && t <= n, "shamir_share: need 1 <= t <= n");
    let mut coeffs = vec![secret];
    for _ in 1..t {
        coeffs.push(random_fp(rng));
    }
    let poly = Poly::from_coeffs(coeffs);
    (1..=n as u64)
        .map(|i| ShamirShare {
            index: i,
            value: poly.eval(Fp::new(i)),
        })
        .collect()
}

/// Reconstructs a Shamir secret from at least `t` distinct shares.
///
/// # Errors
///
/// Returns [`ShareError::TooFewShares`] or [`ShareError::DuplicateIndex`].
pub fn shamir_reconstruct(shares: &[ShamirShare], t: usize) -> Result<Fp, ShareError> {
    if shares.len() < t {
        return Err(ShareError::TooFewShares {
            got: shares.len(),
            need: t,
        });
    }
    let subset = &shares[..t];
    for (i, a) in subset.iter().enumerate() {
        for b in &subset[i + 1..] {
            if a.index == b.index {
                return Err(ShareError::DuplicateIndex(a.index));
            }
        }
    }
    let pts: Vec<(Fp, Fp)> = subset.iter().map(|s| (Fp::new(s.index), s.value)).collect();
    Ok(Poly::interpolate_at(&pts, Fp::ZERO))
}

/// XOR-shares a byte string into `n` shares.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn xor_share<R: Rng + ?Sized>(secret: &[u8], n: usize, rng: &mut R) -> Vec<Vec<u8>> {
    assert!(n > 0, "xor_share: need at least one share");
    let mut shares: Vec<Vec<u8>> = (0..n - 1)
        .map(|_| random_bytes(rng, secret.len()))
        .collect();
    let mut last = secret.to_vec();
    for s in &shares {
        for (l, b) in last.iter_mut().zip(s) {
            *l ^= b;
        }
    }
    shares.push(last);
    shares
}

/// Reconstructs an XOR sharing.
///
/// # Panics
///
/// Panics if shares have inconsistent lengths.
pub fn xor_reconstruct(shares: &[Vec<u8>]) -> Vec<u8> {
    assert!(!shares.is_empty(), "need at least one share");
    let len = shares[0].len();
    assert!(
        shares.iter().all(|s| s.len() == len),
        "inconsistent share lengths"
    );
    let mut out = vec![0u8; len];
    for s in shares {
        for (o, b) in out.iter_mut().zip(s) {
            *o ^= b;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn additive_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = Fp::new(424242);
        for n in 1..6 {
            let shares = additive_share(s, n, &mut rng);
            assert_eq!(shares.len(), n);
            assert_eq!(additive_reconstruct(&shares), s);
        }
    }

    #[test]
    fn additive_single_share_is_secret() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = Fp::new(7);
        assert_eq!(additive_share(s, 1, &mut rng), vec![s]);
    }

    #[test]
    fn additive_vec_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let secret: Vec<Fp> = (0..10u64).map(Fp::new).collect();
        let shares = additive_share_vec(&secret, 3, &mut rng);
        assert_eq!(additive_reconstruct_vec(&shares), secret);
    }

    #[test]
    fn shamir_roundtrip_any_t_subset() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = Fp::new(99999);
        let shares = shamir_share(s, 3, 5, &mut rng);
        // Every 3-subset reconstructs.
        for a in 0..5 {
            for b in a + 1..5 {
                for c in b + 1..5 {
                    let subset = [shares[a], shares[b], shares[c]];
                    assert_eq!(shamir_reconstruct(&subset, 3).unwrap(), s);
                }
            }
        }
    }

    #[test]
    fn shamir_too_few_shares_errors() {
        let mut rng = StdRng::seed_from_u64(4);
        let shares = shamir_share(Fp::new(1), 3, 5, &mut rng);
        let err = shamir_reconstruct(&shares[..2], 3).unwrap_err();
        assert_eq!(err, ShareError::TooFewShares { got: 2, need: 3 });
    }

    #[test]
    fn shamir_duplicate_index_errors() {
        let mut rng = StdRng::seed_from_u64(5);
        let shares = shamir_share(Fp::new(1), 2, 3, &mut rng);
        let dup = [shares[0], shares[0]];
        assert_eq!(
            shamir_reconstruct(&dup, 2).unwrap_err(),
            ShareError::DuplicateIndex(1)
        );
    }

    #[test]
    fn shamir_below_threshold_is_uniformish() {
        // With t=2, a single share value changes when the secret is re-shared
        // with different randomness (i.e. the share alone does not pin the
        // secret). Statistical smoke test, exact secrecy is by construction.
        let s = Fp::new(5);
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let shares = shamir_share(s, 2, 3, &mut rng);
            distinct.insert(shares[0].value.value());
        }
        assert!(distinct.len() > 40);
    }

    #[test]
    fn xor_roundtrip() {
        let mut rng = StdRng::seed_from_u64(6);
        let secret = b"some secret output".to_vec();
        let shares = xor_share(&secret, 4, &mut rng);
        assert_eq!(xor_reconstruct(&shares), secret);
    }

    #[test]
    fn error_display_is_informative() {
        assert_eq!(
            ShareError::TooFewShares { got: 1, need: 3 }.to_string(),
            "too few shares: got 1, need 3"
        );
        assert_eq!(
            ShareError::BadTag.to_string(),
            "share authentication failed"
        );
    }

    proptest! {
        #[test]
        fn prop_additive_roundtrip(v in 0u64..u64::MAX, n in 1usize..8, seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = Fp::new(v);
            prop_assert_eq!(additive_reconstruct(&additive_share(s, n, &mut rng)), s);
        }

        #[test]
        fn prop_shamir_roundtrip(v in 0u64..u64::MAX, t in 1usize..5, extra in 0usize..4, seed: u64) {
            let n = t + extra;
            let mut rng = StdRng::seed_from_u64(seed);
            let s = Fp::new(v);
            let shares = shamir_share(s, t, n, &mut rng);
            prop_assert_eq!(shamir_reconstruct(&shares, t).unwrap(), s);
        }

        #[test]
        fn prop_xor_roundtrip(secret in proptest::collection::vec(any::<u8>(), 0..64), n in 1usize..6, seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let shares = xor_share(&secret, n, &mut rng);
            prop_assert_eq!(xor_reconstruct(&shares), secret);
        }
    }
}
