#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! From-scratch cryptographic primitives for the `fair-protocols` workspace.
//!
//! Everything the paper's protocols consume is implemented here, with no
//! external crypto dependencies:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4), the base hash.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104/4231).
//! * [`prg`] — counter-mode PRG and uniform field-element sampling.
//! * [`commit`] — hash commitments (used by the contract-signing protocols
//!   Π1/Π2 and the coin toss of the paper's introduction).
//! * [`sign`] — Lamport one-time signatures (used by the multi-party
//!   functionality of Appendix B to authenticate the designated output).
//! * [`mac`] — information-theoretic one-time polynomial MAC over
//!   GF(2^61 − 1).
//! * [`share`] — additive, Shamir and XOR secret sharing.
//! * [`authshare`] — the authenticated two-out-of-two sharing of Appendix A,
//!   on which Π^Opt_2SFE's reconstruction phase is built.
//! * [`vss`] — information-theoretic bivariate VSS (the t-out-of-n
//!   verifiable sharing of the paper's footnote 17).
//!
//! # Examples
//!
//! ```
//! use rand::{SeedableRng, rngs::StdRng};
//! use fair_field::Fp;
//! use fair_crypto::authshare;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let secret = vec![Fp::new(42)];
//! let (p1, p2) = authshare::deal(&secret, &mut rng);
//! // p2 sends its share to p1, who reconstructs and verifies:
//! assert_eq!(authshare::reconstruct(1, &p1, &p2.share).unwrap(), secret);
//! ```

pub mod authshare;
pub mod commit;
pub mod ct;
pub mod hmac;
pub mod mac;
pub mod prg;
pub mod sha256;
pub mod share;
pub mod sign;
pub mod vss;
