//! Constant-time comparison primitives.
//!
//! Authenticator checks (MAC tags, commitment digests, signature preimages)
//! must not leak *where* a comparison first diverged: a byte-position
//! timing oracle against tag verification is the classic remote attack on
//! MAC'd protocols, and real deployments of penalty/fairness protocols get
//! audited for exactly this defect. Every verification path in this crate
//! therefore routes through [`ct_eq_bytes`] / [`ct_eq_u64`], which
//! accumulate a difference mask over the *entire* input before deciding,
//! with [`core::hint::black_box`] keeping the optimizer from re-inserting
//! an early exit.
//!
//! Secret-bearing types implement [`CtEq`] and base their `PartialEq` on
//! it (fairlint rule S1 forbids *derived* equality on such types).

/// Constant-time equality of two byte strings.
///
/// Runs in time dependent only on the input *lengths* (which are public in
/// every use in this workspace), never on the position of a mismatch.
/// Unequal lengths return `false` after still scanning the shorter input.
pub fn ct_eq_bytes(a: &[u8], b: &[u8]) -> bool {
    let mut diff = (a.len() ^ b.len()) as u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= core::hint::black_box(x ^ y);
    }
    core::hint::black_box(diff) == 0
}

/// Constant-time equality of two `u64` values (e.g. canonical field-element
/// representatives).
pub fn ct_eq_u64(a: u64, b: u64) -> bool {
    // Collapse the XOR difference to a single bit without branching.
    let d = core::hint::black_box(a ^ b);
    ((d | d.wrapping_neg()) >> 63) == 0
}

/// Equality that takes secret-independent time.
///
/// Implementations must visit their entire representation regardless of
/// where (or whether) the operands differ.
pub trait CtEq {
    /// Constant-time equality check.
    fn ct_eq(&self, other: &Self) -> bool;
}

impl CtEq for [u8] {
    fn ct_eq(&self, other: &Self) -> bool {
        ct_eq_bytes(self, other)
    }
}

impl CtEq for Vec<u8> {
    fn ct_eq(&self, other: &Self) -> bool {
        ct_eq_bytes(self, other)
    }
}

impl<const N: usize> CtEq for [u8; N] {
    fn ct_eq(&self, other: &Self) -> bool {
        ct_eq_bytes(self, other)
    }
}

impl CtEq for fair_field::Fp {
    fn ct_eq(&self, other: &Self) -> bool {
        ct_eq_u64(self.value(), other.value())
    }
}

impl CtEq for Vec<fair_field::Fp> {
    fn ct_eq(&self, other: &Self) -> bool {
        let mut ok = self.len() == other.len();
        for (x, y) in self.iter().zip(other.iter()) {
            ok &= x.ct_eq(y);
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_field::Fp;

    #[test]
    fn bytes_equality_matches_naive() {
        assert!(ct_eq_bytes(b"", b""));
        assert!(ct_eq_bytes(b"abc", b"abc"));
        assert!(!ct_eq_bytes(b"abc", b"abd"));
        assert!(!ct_eq_bytes(b"abc", b"ab"));
        assert!(!ct_eq_bytes(b"", b"x"));
    }

    #[test]
    fn u64_equality_matches_naive() {
        for (a, b) in [(0, 0), (1, 0), (u64::MAX, u64::MAX), (u64::MAX, 1)] {
            assert_eq!(ct_eq_u64(a, b), a == b, "{a} vs {b}");
        }
    }

    #[test]
    fn fp_vectors_compare_elementwise() {
        let a = vec![Fp::new(1), Fp::new(2)];
        let b = vec![Fp::new(1), Fp::new(2)];
        let c = vec![Fp::new(1), Fp::new(3)];
        assert!(a.ct_eq(&b));
        assert!(!a.ct_eq(&c));
        assert!(!a.ct_eq(&vec![Fp::new(1)]));
    }

    #[test]
    fn fixed_arrays_compare() {
        assert!([1u8, 2, 3].ct_eq(&[1, 2, 3]));
        assert!(![1u8, 2, 3].ct_eq(&[1, 2, 4]));
    }
}
