//! Non-interactive hash commitments.
//!
//! `commit(m; r) = SHA-256(tuple(r, m))` with a 32-byte random opening value
//! `r`. Binding follows from collision resistance, hiding from modeling the
//! tuple hash as a random oracle on the high-entropy `r`. These are the
//! commitments used by the contract-signing protocols Π1/Π2 in the paper's
//! introduction and by the coin-toss subprotocol.

use rand::Rng;

use crate::ct::CtEq;
use crate::prg::random_bytes;
use crate::sha256::{sha256_parts, Digest};

/// Byte length of the commitment randomness.
pub const OPENING_LEN: usize = 32;

/// A commitment string (a SHA-256 digest).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Commitment(pub Digest);

/// The opening of a commitment: the committed message and the randomness.
///
/// Until the opening phase this is secret material — a leaked `r` lets the
/// counterparty brute-force low-entropy messages — so `Debug` is redacted
/// and equality is constant-time (fairlint rule S1).
#[derive(Clone)]
pub struct Opening {
    /// The committed message.
    pub message: Vec<u8>,
    /// The commitment randomness.
    pub randomness: Vec<u8>,
}

impl core::fmt::Debug for Opening {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Opening")
            .field("message", &"<redacted>")
            .field("randomness", &"<redacted>")
            .finish()
    }
}

impl PartialEq for Opening {
    fn eq(&self, other: &Self) -> bool {
        self.message.ct_eq(&other.message) & self.randomness.ct_eq(&other.randomness)
    }
}

impl Eq for Opening {}

impl Opening {
    /// Recomputes the commitment this opening corresponds to.
    pub fn commitment(&self) -> Commitment {
        Commitment(sha256_parts(&[&self.randomness, &self.message]))
    }
}

/// Commits to `message` with fresh randomness from `rng`.
///
/// # Examples
///
/// ```
/// use rand::{SeedableRng, rngs::StdRng};
/// use fair_crypto::commit::{commit, verify};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let (c, o) = commit(b"signed contract", &mut rng);
/// assert!(verify(&c, &o));
/// ```
pub fn commit<R: Rng + ?Sized>(message: &[u8], rng: &mut R) -> (Commitment, Opening) {
    let randomness = random_bytes(rng, OPENING_LEN);
    let opening = Opening {
        message: message.to_vec(),
        randomness,
    };
    (opening.commitment(), opening)
}

/// Verifies that `opening` opens `commitment`, comparing digests in
/// constant time.
pub fn verify(commitment: &Commitment, opening: &Opening) -> bool {
    opening.commitment().0.ct_eq(&commitment.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn commit_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let (c, o) = commit(b"hello", &mut rng);
        assert!(verify(&c, &o));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let (c, mut o) = commit(b"hello", &mut rng);
        o.message = b"olleh".to_vec();
        assert!(!verify(&c, &o));
    }

    #[test]
    fn wrong_randomness_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let (c, mut o) = commit(b"hello", &mut rng);
        o.randomness[0] ^= 1;
        assert!(!verify(&c, &o));
    }

    #[test]
    fn commitments_are_hiding_across_randomness() {
        // Same message, different randomness -> different commitment strings.
        let mut rng = StdRng::seed_from_u64(0);
        let (c1, _) = commit(b"msg", &mut rng);
        let (c2, _) = commit(b"msg", &mut rng);
        assert_ne!(c1, c2);
    }

    #[test]
    fn distinct_messages_distinct_commitments_under_same_randomness() {
        // Binding sanity check: crafting two openings with equal randomness
        // but different messages yields different digests.
        let o1 = Opening {
            message: b"a".to_vec(),
            randomness: vec![7; OPENING_LEN],
        };
        let o2 = Opening {
            message: b"b".to_vec(),
            randomness: vec![7; OPENING_LEN],
        };
        assert_ne!(o1.commitment(), o2.commitment());
    }

    #[test]
    fn empty_message_commits_fine() {
        let mut rng = StdRng::seed_from_u64(3);
        let (c, o) = commit(b"", &mut rng);
        assert!(verify(&c, &o));
        assert!(o.message.is_empty());
    }
}
