//! Information-theoretic verifiable secret sharing (BGW-style bivariate
//! VSS) — the primitive behind the paper's footnote 17: "a t-out-of-n VSS
//! ensures that the shares of any t−1 parties contain no information on
//! the shared value, but if at least t honest parties announce their
//! shares then the output will be reconstructed (a (t−1)-adversary cannot
//! confuse the honest parties into accepting a wrong value)".
//!
//! The dealer embeds the secret in a symmetric bivariate polynomial
//! F(x, y) of degree t−1 in each variable with F(0, 0) = s; party i
//! receives the univariate share polynomial fᵢ(y) = F(i, y). Symmetry
//! gives the pairwise consistency checks fᵢ(j) = fⱼ(i): parties can verify
//! each other's announced share points against their own polynomial, so a
//! coalition of ≤ t−1 cheaters cannot push a wrong value past t honest
//! verifiers.

use fair_field::{Fp, Poly};
use rand::Rng;

use crate::ct::CtEq;
use crate::prg::random_fp;
use crate::share::ShareError;

/// Party i's VSS share: the univariate polynomial fᵢ(y) = F(i, y).
///
/// Share material: `Debug` prints the public index but redacts the
/// polynomial, and equality is constant-time (fairlint rule S1).
#[derive(Clone)]
pub struct VssShare {
    /// The 1-based party index (the x-coordinate).
    pub index: u64,
    /// Coefficients of fᵢ(y), lowest degree first (length t).
    pub poly: Vec<Fp>,
}

impl core::fmt::Debug for VssShare {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("VssShare")
            .field("index", &self.index)
            .field(
                "poly",
                &format_args!("<{} coeffs redacted>", self.poly.len()),
            )
            .finish()
    }
}

impl PartialEq for VssShare {
    fn eq(&self, other: &Self) -> bool {
        (self.index == other.index) & self.poly.ct_eq(&other.poly)
    }
}

impl Eq for VssShare {}

impl VssShare {
    /// Evaluates the share polynomial at `y`.
    pub fn eval(&self, y: Fp) -> Fp {
        Poly::from_coeffs(self.poly.clone()).eval(y)
    }

    /// The share *point* this party contributes to reconstruction:
    /// fᵢ(0) = F(i, 0).
    pub fn point(&self) -> Fp {
        self.poly.first().copied().unwrap_or(Fp::ZERO)
    }

    /// Pairwise consistency check: does `other`'s claimed polynomial agree
    /// with ours at the crossover points (fᵢ(j) = fⱼ(i))? Compared in
    /// constant time — the check handles announced share material.
    pub fn consistent_with(&self, other: &VssShare) -> bool {
        self.eval(Fp::new(other.index))
            .ct_eq(&other.eval(Fp::new(self.index)))
    }
}

/// Deals a t-out-of-n VSS of `secret`: any t share *points* reconstruct;
/// any t−1 shares (whole polynomials) are independent of the secret.
///
/// # Panics
///
/// Panics unless `1 <= t <= n`.
// The symmetric-matrix construction reads clearest with explicit (a, b)
// index pairs.
#[allow(clippy::needless_range_loop)]
pub fn deal<R: Rng + ?Sized>(secret: Fp, t: usize, n: usize, rng: &mut R) -> Vec<VssShare> {
    assert!(t >= 1 && t <= n, "need 1 <= t <= n");
    // Symmetric coefficient matrix c[a][b] = c[b][a], c[0][0] = secret,
    // degree t−1 in each variable.
    let mut c = vec![vec![Fp::ZERO; t]; t];
    for a in 0..t {
        for b in a..t {
            let v = if a == 0 && b == 0 {
                secret
            } else {
                random_fp(rng)
            };
            c[a][b] = v;
            c[b][a] = v;
        }
    }
    (1..=n as u64)
        .map(|i| {
            let x = Fp::new(i);
            // fᵢ(y) = Σ_b (Σ_a c[a][b] x^a) y^b.
            let mut coeffs = Vec::with_capacity(t);
            for b in 0..t {
                let mut acc = Fp::ZERO;
                let mut xp = Fp::ONE;
                for a in 0..t {
                    acc += c[a][b] * xp;
                    xp *= x;
                }
                coeffs.push(acc);
            }
            VssShare {
                index: i,
                poly: coeffs,
            }
        })
        .collect()
}

/// Verifies a batch of announced shares pairwise; returns the indices of
/// shares that are consistent with a strict majority of the batch (the
/// accepted core).
pub fn consistent_core(shares: &[VssShare]) -> Vec<usize> {
    let n = shares.len();
    (0..n)
        .filter(|&i| {
            let agree = (0..n)
                .filter(|&j| i != j && shares[i].consistent_with(&shares[j]))
                .count();
            agree + 1 > n / 2
        })
        .collect()
}

/// Reconstructs the secret from at least `t` pairwise-consistent shares.
///
/// # Errors
///
/// Returns [`ShareError::TooFewShares`] if fewer than `t` shares survive
/// the consistency filter, or [`ShareError::DuplicateIndex`] for repeated
/// indices.
pub fn reconstruct(shares: &[VssShare], t: usize) -> Result<Fp, ShareError> {
    // Filter to the mutually consistent core first.
    let core = consistent_core(shares);
    if core.len() < t {
        return Err(ShareError::TooFewShares {
            got: core.len(),
            need: t,
        });
    }
    let mut pts = Vec::with_capacity(t);
    for &i in core.iter().take(t) {
        let s = &shares[i];
        if pts.iter().any(|(x, _)| *x == Fp::new(s.index)) {
            return Err(ShareError::DuplicateIndex(s.index));
        }
        pts.push((Fp::new(s.index), s.point()));
    }
    Ok(Poly::interpolate_at(&pts, Fp::ZERO))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deal_reconstruct_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = Fp::new(777);
        let shares = deal(s, 3, 5, &mut rng);
        assert_eq!(reconstruct(&shares, 3).unwrap(), s);
        // Any 3 shares suffice.
        assert_eq!(reconstruct(&shares[2..], 3).unwrap(), s);
    }

    #[test]
    fn shares_are_pairwise_consistent() {
        let mut rng = StdRng::seed_from_u64(1);
        let shares = deal(Fp::new(5), 4, 7, &mut rng);
        for a in &shares {
            for b in &shares {
                assert!(a.consistent_with(b), "{} vs {}", a.index, b.index);
            }
        }
    }

    #[test]
    fn forged_share_is_excluded_by_the_consistency_core() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = Fp::new(424242);
        let mut shares = deal(s, 3, 7, &mut rng);
        // Two cheaters (≤ t−1 = 2) replace their polynomials entirely.
        for share in shares.iter_mut().take(2) {
            share.poly = (0..3).map(|_| random_fp(&mut rng)).collect();
        }
        let core = consistent_core(&shares);
        assert!(core.iter().all(|&i| i >= 2), "cheaters excluded: {core:?}");
        assert_eq!(
            reconstruct(&shares, 3).unwrap(),
            s,
            "honest majority still wins"
        );
    }

    #[test]
    fn too_many_cheaters_block_but_cannot_forge() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = Fp::new(99);
        let mut shares = deal(s, 4, 7, &mut rng);
        // 4 cheaters (≥ t): they can deny service…
        for share in shares.iter_mut().take(4) {
            share.poly = (0..4).map(|_| random_fp(&mut rng)).collect();
        }
        match reconstruct(&shares, 4) {
            Ok(v) => assert_eq!(v, s, "if anything reconstructs, it is the real secret"),
            Err(ShareError::TooFewShares { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn t_minus_one_shares_are_secret_independent() {
        // Re-deal the same secret; a (t−1)-view varies freely.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let shares = deal(Fp::new(1), 3, 5, &mut rng);
            seen.insert((shares[0].point().value(), shares[1].point().value()));
        }
        assert!(seen.len() > 35, "two-share views look fresh every time");
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in 0u64..u64::MAX, t in 1usize..5, extra in 0usize..4, seed: u64) {
            let n = t + extra;
            let mut rng = StdRng::seed_from_u64(seed);
            let s = Fp::new(v);
            let shares = deal(s, t, n, &mut rng);
            prop_assert_eq!(reconstruct(&shares, t).unwrap(), s);
        }

        #[test]
        fn prop_crossover_symmetry(v in 0u64..u64::MAX, seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let shares = deal(Fp::new(v), 3, 6, &mut rng);
            for a in &shares {
                for b in &shares {
                    prop_assert_eq!(a.eval(Fp::new(b.index)), b.eval(Fp::new(a.index)));
                }
            }
        }
    }
}
