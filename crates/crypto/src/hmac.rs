//! HMAC-SHA256 (RFC 2104), validated against the RFC 4231 test vectors.
//!
//! Used as the computational MAC option for authenticated shares and as the
//! PRF underlying the counter-mode PRG.

use crate::sha256::{Digest, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, msg)`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Digest {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let d = {
            let mut h = Sha256::new();
            h.update(key);
            h.finalize()
        };
        k[..DIGEST_LEN].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let inner = {
        let mut h = Sha256::new();
        h.update(&ipad);
        h.update(msg);
        h.finalize()
    };
    let mut h = Sha256::new();
    h.update(&opad);
    h.update(&inner);
    h.finalize()
}

/// Constant-time-ish comparison of two digests.
///
/// The engine is a simulator, so side channels are out of scope, but tag
/// comparison is still written without early exit as a matter of hygiene.
pub fn verify_hmac_sha256(key: &[u8], msg: &[u8], tag: &Digest) -> bool {
    let expect = hmac_sha256(key, msg);
    let mut diff = 0u8;
    for i in 0..DIGEST_LEN {
        diff |= expect[i] ^ tag[i];
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.iter().map(|b| format!("{:02x}", b)).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_hmac_sha256(b"k", b"m", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!verify_hmac_sha256(b"k", b"m", &bad));
        assert!(!verify_hmac_sha256(b"k2", b"m", &tag));
        assert!(!verify_hmac_sha256(b"k", b"m2", &tag));
    }
}
