//! Compiler acceptance tests: the three shipped families compile, and
//! every class of malformed file is rejected with an error anchored to
//! the offending line.

use fair_scenario::{compile_str, Family, ScenarioError};

const GOOD_DEPOSIT: &str = "\
[scenario]
id = \"s_dep\"
title = \"deposit sweep\"
family = \"deposit-coin-toss\"

[payoff]
g00 = 0.25
g10 = 1.0
g11 = 0.5

[sweep]
deposits = [0.0, 0.1, 0.25]
";

fn lines_of(errors: &[ScenarioError]) -> Vec<usize> {
    errors.iter().map(|e| e.line).collect()
}

#[test]
fn deposit_family_compiles() {
    let spec = compile_str("t.toml", GOOD_DEPOSIT).expect("valid scenario");
    assert_eq!(spec.id, "s_dep");
    assert_eq!(spec.title, "deposit sweep");
    assert_eq!(spec.id_line, 2);
    match &spec.family {
        Family::DepositCoinToss { g00, deposits, .. } => {
            assert_eq!(*g00, 0.25);
            assert_eq!(deposits.len(), 3);
        }
        other => panic!("wrong family: {other:?}"),
    }
    assert_eq!(spec.family.points().len(), 3);
}

#[test]
fn heatmap_family_compiles_and_expands_row_major() {
    let src = "\
[scenario]
id = \"s_heat\"
title = \"heatmap\"
family = \"abort-heatmap\"

[payoff]
g00 = 0.25
g11 = 0.5

[sweep]
g10 = [0.8, 1.0]
costs = [0.0, 0.25, 1.4]
rounds = 6
";
    let spec = compile_str("t.toml", src).expect("valid scenario");
    assert_eq!(spec.family.points().len(), 6);
}

#[test]
fn partial_fairness_family_compiles() {
    let src = "\
[scenario]
id = \"s_gk\"
title = \"gk curve\"
family = \"partial-fairness\"

[sweep]
p = [2, 3]
abort_rounds = 8
";
    let spec = compile_str("t.toml", src).expect("valid scenario");
    match spec.family {
        Family::PartialFairness {
            ref p,
            abort_rounds,
        } => {
            assert_eq!(p, &[2, 3]);
            assert_eq!(abort_rounds, 8);
        }
        ref other => panic!("wrong family: {other:?}"),
    }
}

#[test]
fn missing_title_is_a_compile_error() {
    let src = GOOD_DEPOSIT.replace("title = \"deposit sweep\"\n", "");
    let errors = compile_str("t.toml", &src).expect_err("must fail");
    assert!(
        errors.iter().any(|e| e.msg.contains("scenario.title")),
        "{errors:?}"
    );
}

#[test]
fn empty_title_is_a_compile_error() {
    let src = GOOD_DEPOSIT.replace("\"deposit sweep\"", "\"  \"");
    let errors = compile_str("t.toml", &src).expect_err("must fail");
    assert_eq!(lines_of(&errors), vec![3], "{errors:?}");
    assert!(errors[0].msg.contains("empty `title`"));
}

#[test]
fn bad_id_is_anchored_to_its_line() {
    let src = GOOD_DEPOSIT.replace("\"s_dep\"", "\"e99\"");
    let errors = compile_str("t.toml", &src).expect_err("must fail");
    assert_eq!(lines_of(&errors), vec![2], "{errors:?}");
    assert!(errors[0].msg.contains("s_[a-z0-9_]+"));
}

#[test]
fn unknown_family_is_rejected() {
    let src = GOOD_DEPOSIT.replace("deposit-coin-toss", "coin-flip");
    let errors = compile_str("t.toml", &src).expect_err("must fail");
    assert_eq!(lines_of(&errors), vec![4], "{errors:?}");
    assert!(errors[0].msg.contains("unknown family"));
}

#[test]
fn unknown_keys_are_rejected_with_their_line() {
    let src = format!("{GOOD_DEPOSIT}\n[sweep]\nbogus = 3\n");
    let errors = compile_str("t.toml", &src).expect_err("must fail");
    // The repeated [sweep] section makes `sweep.bogus` the only unknown.
    assert!(
        errors
            .iter()
            .any(|e| e.msg.contains("unknown key `sweep.bogus`")),
        "{errors:?}"
    );
}

#[test]
fn duplicate_keys_are_rejected_at_the_second_site() {
    let src = format!("{GOOD_DEPOSIT}g00 = 0.3\n");
    let errors = compile_str("t.toml", &src).expect_err("must fail");
    assert!(
        errors
            .iter()
            .any(|e| e.msg.contains("duplicate key `sweep.g00`")
                || e.msg.contains("unknown key `sweep.g00`")),
        "{errors:?}"
    );
}

#[test]
fn payoff_outside_gamma_fair_plus_is_rejected() {
    // γ10 ≤ γ11 breaks max{γ00, γ11} < γ10.
    let src = GOOD_DEPOSIT.replace("g10 = 1.0", "g10 = 0.4");
    let errors = compile_str("t.toml", &src).expect_err("must fail");
    assert!(
        errors.iter().any(|e| e.msg.contains("Γ+fair")),
        "{errors:?}"
    );
}

#[test]
fn deposits_must_reach_the_deterrence_threshold() {
    let src = GOOD_DEPOSIT.replace("[0.0, 0.1, 0.25]", "[0.0, 0.1]");
    let errors = compile_str("t.toml", &src).expect_err("must fail");
    assert_eq!(lines_of(&errors), vec![12], "{errors:?}");
    assert!(errors[0].msg.contains("deterring deposit"));
}

#[test]
fn parse_errors_carry_the_offending_line() {
    let errors = compile_str("t.toml", "[scenario]\nid \"s_x\"\n").expect_err("must fail");
    assert_eq!(lines_of(&errors), vec![2], "{errors:?}");
}

#[test]
fn multiple_errors_are_all_reported() {
    let src = "\
[scenario]
id = \"nope\"
title = \"\"
family = \"deposit-coin-toss\"

[payoff]
g00 = 0.25
g10 = 1.0
g11 = 0.5

[sweep]
deposits = [0.0, 0.3]
";
    let errors = compile_str("t.toml", src).expect_err("must fail");
    assert!(errors.len() >= 2, "{errors:?}");
    assert_eq!(errors[0].file, "t.toml");
}

#[test]
fn rounds_out_of_range_is_rejected() {
    let src = "\
[scenario]
id = \"s_gk\"
title = \"gk\"
family = \"partial-fairness\"

[sweep]
p = [2, 99]
abort_rounds = 0
";
    let errors = compile_str("t.toml", src).expect_err("must fail");
    assert_eq!(lines_of(&errors), vec![7, 8], "{errors:?}");
}
