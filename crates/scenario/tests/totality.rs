//! Totality of the scenario compiler: scenario files are operator-authored
//! text, so the compiler must never panic — any byte soup yields either a
//! spec or a non-empty error list with usable spans.

use fair_scenario::compile_str;
use proptest::collection;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes (lossily decoded, as a file read would) never panic
    /// the parser/validator, and a rejection always carries ≥1 error with
    /// a 1-based line.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in collection::vec(any::<u8>(), 0..2048)) {
        let src = String::from_utf8_lossy(&bytes);
        if let Err(errors) = compile_str("fuzz.toml", &src) {
            prop_assert!(!errors.is_empty());
            prop_assert!(errors.iter().all(|e| e.line >= 1));
        }
    }

    /// Structured fuzz: TOML-shaped lines with random keys and values —
    /// deeper into the validator than raw byte soup reaches. Keys draw
    /// from `[a-z.]`, values from a numeric/array/keyword alphabet, so a
    /// useful fraction of cases survives parsing into family validation.
    #[test]
    fn fuzzed_toml_shapes_never_panic(
        family in 0usize..4,
        keys in collection::vec(collection::vec(0u8..27, 1..12), 0..8),
        values in collection::vec(collection::vec(0u8..18, 0..16), 0..8),
    ) {
        const FAMILIES: [&str; 4] =
            ["deposit-coin-toss", "abort-heatmap", "partial-fairness", "junk"];
        const VALUE_ALPHABET: &[u8; 18] = b"-0123456789eE.[], ";
        let mut src = format!(
            "[scenario]\nid = \"s_fuzz\"\ntitle = \"f\"\nfamily = \"{}\"\n",
            FAMILIES[family]
        );
        for (k, v) in keys.iter().zip(values.iter()) {
            let key: String = k
                .iter()
                .map(|d| if *d < 26 { char::from(b'a' + d) } else { '.' })
                .collect();
            let value: String = v
                .iter()
                .map(|d| char::from(VALUE_ALPHABET[*d as usize]))
                .collect();
            src.push_str(&format!("{key} = {value}\n"));
        }
        let _ = compile_str("fuzz.toml", &src);
    }
}
