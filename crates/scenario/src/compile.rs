//! The scenario compiler: strict TOML-subset parse → schema validation
//! (every failure a span-carrying [`ScenarioError`]) → a validated
//! [`ScenarioSpec`] ready for the registry.
//!
//! Validation is *total*: any byte sequence yields either a spec or a
//! non-empty error list, never a panic (pinned by the proptest totality
//! suite in `tests/totality.rs`).

use std::path::Path;

use fair_core::Payoff;
use fair_simlab::tomlish::{self, Value};

use crate::schema::{Family, ScenarioError, ScenarioSpec};

/// Most points a sweep grid may expand to — a checked-in family is a
/// bounded amount of registry work, not an accidental fleet.
pub const MAX_GRID_POINTS: usize = 64;

/// Most elements a single sweep list may hold.
pub const MAX_LIST: usize = 16;

/// Abort-round sweeps are capped here (each round is a full estimate).
pub const MAX_ROUNDS: usize = 16;

/// The family names `scenario.family` accepts.
pub const FAMILIES: [&str; 3] = ["deposit-coin-toss", "abort-heatmap", "partial-fairness"];

/// Compiles one scenario file. `file` is only used to label errors.
///
/// # Errors
///
/// Returns every schema violation found (parse failures short-circuit,
/// carrying the offending line).
pub fn compile_str(file: &str, src: &str) -> Result<ScenarioSpec, Vec<ScenarioError>> {
    let items = match tomlish::parse(src) {
        Ok(items) => items,
        Err(e) => {
            return Err(vec![ScenarioError {
                file: file.to_string(),
                line: e.line,
                msg: e.msg,
            }])
        }
    };
    let mut doc = Doc::new(file, items);

    let id = doc.require_str("scenario.id");
    let title = doc.require_str("scenario.title");
    let family_name = doc.require_str("scenario.family");

    let (id, id_line) = match id {
        Some((id, line)) => {
            if !valid_id(&id) {
                doc.err(
                    line,
                    format!(
                        "invalid id `{id}`: scenario ids match `s_[a-z0-9_]+` \
                         (the `s_` namespace keeps them disjoint from the static e1..e17 registry)"
                    ),
                );
            }
            (id, line)
        }
        None => (String::new(), 1),
    };
    if let Some((t, line)) = &title {
        if t.trim().is_empty() {
            doc.err(
                *line,
                "empty `title`: every registry entry lists with a real title \
                 (there is no \"(untitled)\" fallback)"
                    .to_string(),
            );
        }
    }

    let mut family_known = true;
    let family = match family_name {
        Some((name, line)) => match name.as_str() {
            "deposit-coin-toss" => deposit_coin_toss(&mut doc),
            "abort-heatmap" => abort_heatmap(&mut doc),
            "partial-fairness" => partial_fairness(&mut doc),
            other => {
                doc.err(
                    line,
                    format!(
                        "unknown family `{other}` (known families: {})",
                        FAMILIES.join(", ")
                    ),
                );
                family_known = false;
                None
            }
        },
        None => {
            family_known = false;
            None
        }
    };

    // Without a recognized family nothing consumed the family-specific
    // keys; flagging each as unknown would just bury the real error.
    if family_known {
        doc.reject_unknown_keys();
    }

    match (family, title, doc.errors.is_empty()) {
        (Some(family), Some((title, _)), true) => Ok(ScenarioSpec {
            id,
            title,
            file: file.to_string(),
            id_line,
            family,
        }),
        _ => Err(doc.errors),
    }
}

/// `s_` followed by at least one of `[a-z0-9_]`.
fn valid_id(id: &str) -> bool {
    id.strip_prefix("s_").is_some_and(|rest| {
        !rest.is_empty()
            && rest
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

fn deposit_coin_toss(doc: &mut Doc) -> Option<Family> {
    let g00 = doc.require_f64("payoff.g00");
    let g10 = doc.require_f64("payoff.g10");
    let g11 = doc.require_f64("payoff.g11");
    let deposits = doc.require_f64_list("sweep.deposits", MAX_LIST);

    let ((g00, g00_line), (g10, _), (g11, _)) = (g00?, g10?, g11?);
    if let Err(e) = Payoff::gamma_fair_plus(g00, g10, g11) {
        doc.err(g00_line, format!("payoff is not in Γ+fair: {e}"));
        return None;
    }
    let (deposits, dep_line) = deposits?;
    let mut ok = true;
    for d in &deposits {
        if !d.is_finite() || *d < 0.0 {
            doc.err(dep_line, format!("deposit {d} must be finite and ≥ 0"));
            ok = false;
        }
    }
    if ok && !deposits.iter().any(|d| *d >= g00) {
        doc.err(
            dep_line,
            format!(
                "deposits never reach γ00 = {g00}: the sweep must include at least one \
                 deterring deposit (d ≥ γ00) so the family exhibits its threshold"
            ),
        );
        ok = false;
    }
    ok.then_some(Family::DepositCoinToss {
        g00,
        g10,
        g11,
        deposits,
    })
}

fn abort_heatmap(doc: &mut Doc) -> Option<Family> {
    let g00 = doc.require_f64("payoff.g00");
    let g11 = doc.require_f64("payoff.g11");
    let g10s = doc.require_f64_list("sweep.g10", MAX_LIST);
    let costs = doc.require_f64_list("sweep.costs", MAX_LIST);
    let rounds = doc.require_int("sweep.rounds");

    let ((g00, _), (g11, _)) = (g00?, g11?);
    let (g10s, g10_line) = g10s?;
    let (costs, cost_line) = costs?;
    let (rounds, rounds_line) = rounds?;

    let mut ok = true;
    for g10 in &g10s {
        if let Err(e) = Payoff::gamma_fair_plus(g00, *g10, g11) {
            doc.err(
                g10_line,
                format!("γ10 = {g10} leaves Γ+fair (with γ00 = {g00}, γ11 = {g11}): {e}"),
            );
            ok = false;
        }
    }
    for c in &costs {
        if !c.is_finite() || *c < 0.0 {
            doc.err(
                cost_line,
                format!("corruption cost {c} must be finite and ≥ 0"),
            );
            ok = false;
        }
    }
    if !(1..=MAX_ROUNDS as i64).contains(&rounds) {
        doc.err(
            rounds_line,
            format!("rounds = {rounds} out of range (1..={MAX_ROUNDS})"),
        );
        ok = false;
    }
    if g10s.len() * costs.len() > MAX_GRID_POINTS {
        doc.err(
            g10_line,
            format!(
                "grid of {}×{} = {} cells exceeds the {MAX_GRID_POINTS}-point cap",
                g10s.len(),
                costs.len(),
                g10s.len() * costs.len()
            ),
        );
        ok = false;
    }
    ok.then_some(Family::AbortHeatmap {
        g00,
        g11,
        g10: g10s,
        costs,
        rounds: rounds as usize,
    })
}

fn partial_fairness(doc: &mut Doc) -> Option<Family> {
    let ps = doc.require_int_list("sweep.p", 8);
    let abort_rounds = doc.require_int("sweep.abort_rounds");

    let (ps, p_line) = ps?;
    let (abort_rounds, ar_line) = abort_rounds?;

    let mut ok = true;
    let mut out = Vec::new();
    for p in &ps {
        if !(2..=8).contains(p) {
            doc.err(
                p_line,
                format!("p = {p} out of range (2..=8: p = 1 is full fairness, larger p makes the round count m = 8·p·|Y| explode)"),
            );
            ok = false;
        } else {
            out.push(*p as u64);
        }
    }
    if !(1..=MAX_ROUNDS as i64).contains(&abort_rounds) {
        doc.err(
            ar_line,
            format!("abort_rounds = {abort_rounds} out of range (1..={MAX_ROUNDS})"),
        );
        ok = false;
    }
    ok.then_some(Family::PartialFairness {
        p: out,
        abort_rounds: abort_rounds as usize,
    })
}

/// The working state of one file's validation: items, which were
/// consumed, and the errors so far.
struct Doc<'a> {
    file: &'a str,
    items: Vec<tomlish::Item>,
    used: Vec<bool>,
    errors: Vec<ScenarioError>,
}

impl<'a> Doc<'a> {
    fn new(file: &'a str, items: Vec<tomlish::Item>) -> Doc<'a> {
        let used = vec![false; items.len()];
        let mut doc = Doc {
            file,
            items,
            used,
            errors: Vec::new(),
        };
        doc.reject_duplicates();
        doc
    }

    fn err(&mut self, line: usize, msg: String) {
        self.errors.push(ScenarioError {
            file: self.file.to_string(),
            line,
            msg,
        });
    }

    fn reject_duplicates(&mut self) {
        let mut dups = Vec::new();
        for (i, item) in self.items.iter().enumerate() {
            if self.items.iter().take(i).any(|prev| prev.key == item.key) {
                dups.push((item.line, format!("duplicate key `{}`", item.key)));
            }
        }
        for (line, msg) in dups {
            self.err(line, msg);
        }
    }

    /// Marks `key` consumed and returns its value and line.
    fn take(&mut self, key: &str) -> Option<(Value, usize)> {
        let at = self.items.iter().position(|i| i.key == key)?;
        if let Some(slot) = self.used.get_mut(at) {
            *slot = true;
        }
        self.items
            .get(at)
            .map(|item| (item.value.clone(), item.line))
    }

    fn missing(&mut self, key: &str, want: &str) {
        self.err(1, format!("missing required key `{key}` ({want})"));
    }

    fn require_str(&mut self, key: &str) -> Option<(String, usize)> {
        match self.take(key) {
            Some((Value::Str(s), line)) => Some((s, line)),
            Some((other, line)) => {
                self.err(
                    line,
                    format!("`{key}` must be a string, found {}", other.type_name()),
                );
                None
            }
            None => {
                self.missing(key, "a quoted string");
                None
            }
        }
    }

    fn require_f64(&mut self, key: &str) -> Option<(f64, usize)> {
        match self.take(key) {
            Some((v, line)) => match v.as_f64() {
                Some(x) if x.is_finite() => Some((x, line)),
                Some(x) => {
                    self.err(line, format!("`{key}` must be finite, found {x}"));
                    None
                }
                None => {
                    self.err(
                        line,
                        format!("`{key}` must be a number, found {}", v.type_name()),
                    );
                    None
                }
            },
            None => {
                self.missing(key, "a number");
                None
            }
        }
    }

    fn require_int(&mut self, key: &str) -> Option<(i64, usize)> {
        match self.take(key) {
            Some((Value::Int(n), line)) => Some((n, line)),
            Some((other, line)) => {
                self.err(
                    line,
                    format!("`{key}` must be an integer, found {}", other.type_name()),
                );
                None
            }
            None => {
                self.missing(key, "an integer");
                None
            }
        }
    }

    fn require_f64_list(&mut self, key: &str, max: usize) -> Option<(Vec<f64>, usize)> {
        let (items, line) = self.require_list(key, max)?;
        let mut out = Vec::with_capacity(items.len());
        for v in &items {
            match v.as_f64() {
                Some(x) => out.push(x),
                None => {
                    self.err(
                        line,
                        format!("`{key}` elements must be numbers, found {}", v.type_name()),
                    );
                    return None;
                }
            }
        }
        Some((out, line))
    }

    fn require_int_list(&mut self, key: &str, max: usize) -> Option<(Vec<i64>, usize)> {
        let (items, line) = self.require_list(key, max)?;
        let mut out = Vec::with_capacity(items.len());
        for v in &items {
            match v {
                Value::Int(n) => out.push(*n),
                other => {
                    self.err(
                        line,
                        format!(
                            "`{key}` elements must be integers, found {}",
                            other.type_name()
                        ),
                    );
                    return None;
                }
            }
        }
        Some((out, line))
    }

    fn require_list(&mut self, key: &str, max: usize) -> Option<(Vec<Value>, usize)> {
        match self.take(key) {
            Some((Value::List(items), line)) => {
                if items.is_empty() {
                    self.err(line, format!("`{key}` must not be empty"));
                    return None;
                }
                if items.len() > max {
                    self.err(
                        line,
                        format!("`{key}` holds {} elements (cap: {max})", items.len()),
                    );
                    return None;
                }
                Some((items, line))
            }
            Some((other, line)) => {
                self.err(
                    line,
                    format!("`{key}` must be an array, found {}", other.type_name()),
                );
                None
            }
            None => {
                self.missing(key, "an array");
                None
            }
        }
    }

    /// Every key the family did not consume is a typo or an unsupported
    /// construct — reject it so `check` catches drift early.
    fn reject_unknown_keys(&mut self) {
        let unknown: Vec<(usize, String)> = self
            .items
            .iter()
            .zip(&self.used)
            .filter(|(_, used)| !**used)
            .map(|(item, _)| (item.line, format!("unknown key `{}`", item.key)))
            .collect();
        for (line, msg) in unknown {
            self.err(line, msg);
        }
    }
}

/// The result of loading a scenario directory: every spec that compiled
/// plus every error found. Callers pick their strictness — the CLI
/// `check` fails on any error, the registry keeps the valid specs and
/// reports the rest.
#[derive(Clone, Debug, Default)]
pub struct DirLoad {
    /// Valid scenarios, in file-name order.
    pub specs: Vec<ScenarioSpec>,
    /// Every parse/validation failure across the directory.
    pub errors: Vec<ScenarioError>,
}

/// Loads and compiles every `*.toml` under `dir` (sorted by file name,
/// so registry order is deterministic). A missing directory is an empty
/// load, not an error — a process running outside the repo root simply
/// has no scenario-derived entries. Duplicate ids across files are
/// errors on the later file.
pub fn load_dir(dir: &Path) -> DirLoad {
    let mut load = DirLoad::default();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return load;
    };
    let mut paths: Vec<std::path::PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    for path in paths {
        let name = path.display().to_string();
        let src = match std::fs::read_to_string(&path) {
            Ok(src) => src,
            Err(e) => {
                load.errors.push(ScenarioError {
                    file: name,
                    line: 1,
                    msg: format!("unreadable: {e}"),
                });
                continue;
            }
        };
        match compile_str(&name, &src) {
            Ok(spec) => {
                if let Some(prev) = load.specs.iter().find(|s| s.id == spec.id) {
                    load.errors.push(ScenarioError {
                        file: name,
                        line: spec.id_line,
                        msg: format!(
                            "duplicate scenario id `{}` (also in {})",
                            spec.id, prev.file
                        ),
                    });
                } else {
                    load.specs.push(spec);
                }
            }
            Err(mut errors) => load.errors.append(&mut errors),
        }
    }
    load
}
