#![forbid(unsafe_code)]
#![allow(clippy::print_stdout)] // a CLI prints its results
//! `fair-scenario` — check, list, and expand scenario files.
//!
//! ```text
//! fair-scenario check  [DIR]   validate every *.toml; nonzero exit on errors
//! fair-scenario list   [DIR]   one line per valid scenario (id, family, title)
//! fair-scenario expand [DIR]   every scenario's sweep grid, point by point
//! ```
//!
//! `DIR` defaults to `scenarios` (relative to the working directory — run
//! from the repo root). Errors always go to stderr as `file:line: error:
//! message`, one per line, so editors can jump to the offending span.

use std::path::Path;
use std::process::ExitCode;

use fair_scenario::{load_dir, DirLoad};

fn usage() -> ExitCode {
    eprintln!("usage: fair-scenario <check|list|expand> [DIR]");
    eprintln!("  DIR defaults to `scenarios`");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, dir) = match args.as_slice() {
        [cmd] => (cmd.as_str(), "scenarios"),
        [cmd, dir] => (cmd.as_str(), dir.as_str()),
        _ => return usage(),
    };
    if !matches!(cmd, "check" | "list" | "expand") {
        return usage();
    }

    let path = Path::new(dir);
    if !path.is_dir() {
        eprintln!("fair-scenario: `{dir}` is not a directory");
        return ExitCode::FAILURE;
    }
    let DirLoad { specs, errors } = load_dir(path);
    for e in &errors {
        eprintln!("{e}");
    }

    match cmd {
        "check" => {
            if errors.is_empty() {
                println!(
                    "{dir}: {} scenario{} ok",
                    specs.len(),
                    if specs.len() == 1 { "" } else { "s" }
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "{dir}: {} error{}",
                    errors.len(),
                    if errors.len() == 1 { "" } else { "s" }
                );
                ExitCode::FAILURE
            }
        }
        "list" => {
            for s in &specs {
                println!("{:<20} {:<18} {}", s.id, s.family.name(), s.title);
            }
            exit_by_errors(&errors)
        }
        "expand" => {
            for s in &specs {
                let points = s.family.points();
                println!("{} ({}): {} points", s.id, s.family.name(), points.len());
                for p in points {
                    println!("  {}", p.label());
                }
            }
            exit_by_errors(&errors)
        }
        _ => usage(),
    }
}

fn exit_by_errors(errors: &[fair_scenario::ScenarioError]) -> ExitCode {
    if errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
