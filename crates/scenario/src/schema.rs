//! The compiled scenario model: what a validated `scenarios/*.toml`
//! file lowers to, plus the span-carrying error type every stage of the
//! compiler reports through.

/// One validation (or parse) failure, anchored to its file and line —
/// `fair-scenario check` prints these verbatim and exits nonzero.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioError {
    /// The scenario file (as given to the compiler, e.g.
    /// `scenarios/deposit_coin_toss.toml`).
    pub file: String,
    /// 1-based line the failure anchors to.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl core::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}: error: {}", self.file, self.line, self.msg)
    }
}

impl std::error::Error for ScenarioError {}

/// A validated scenario: one experiment-registry entry.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Registry id — always `s_…`, a namespace disjoint from the static
    /// `e<k>` entries by construction.
    pub id: String,
    /// Mandatory one-line title (an untitled scenario does not compile;
    /// the listing has no fallback to reach for).
    pub title: String,
    /// The file the scenario came from (diagnostics and provenance).
    pub file: String,
    /// 1-based line of the `id = …` declaration (lockstep diagnostics
    /// anchor here).
    pub id_line: usize,
    /// The family with its validated parameters.
    pub family: Family,
}

/// A scenario family: which protocol/adversary machinery runs and the
/// validated sweep parameters feeding it.
#[derive(Clone, Debug, PartialEq)]
pub enum Family {
    /// Penalty-deposit Blum coin toss: each deposit `d` is forfeited on
    /// abort, penalizing the payoff entries the abort events carry.
    DepositCoinToss {
        /// γ₀₀ of the base (pre-penalty) payoff vector.
        g00: f64,
        /// γ₁₀ of the base payoff vector.
        g10: f64,
        /// γ₁₁ of the base payoff vector.
        g11: f64,
        /// Escrowed deposits to sweep (at least one ≥ γ₀₀, so the family
        /// always exhibits the deterrence threshold).
        deposits: Vec<f64>,
    },
    /// (γ₁₀, corruption-cost) heatmap of optimal abort rounds against
    /// Π^Opt_2SFE: per cell, the best abort strategy's utility netted
    /// against a linear per-party corruption price.
    AbortHeatmap {
        /// γ₀₀ shared by every grid row.
        g00: f64,
        /// γ₁₁ shared by every grid row.
        g11: f64,
        /// Breach payoffs γ₁₀ to sweep (each must keep the vector in
        /// Γ⁺_fair).
        g10: Vec<f64>,
        /// Per-party corruption prices to sweep.
        costs: Vec<f64>,
        /// Abort rounds 0..rounds swept per cell.
        rounds: usize,
    },
    /// Gordon–Katz 1/p partial-fairness trade-off: sweep `p`, pin the
    /// best abort attack under γ = (0,0,1,0) below 1/p.
    PartialFairness {
        /// The 1/p parameters to sweep (each 2..=8).
        p: Vec<u64>,
        /// Abort rounds 1..=abort_rounds tried per p.
        abort_rounds: usize,
    },
}

impl Family {
    /// The family name as written in scenario files.
    pub fn name(&self) -> &'static str {
        match self {
            Family::DepositCoinToss { .. } => "deposit-coin-toss",
            Family::AbortHeatmap { .. } => "abort-heatmap",
            Family::PartialFairness { .. } => "partial-fairness",
        }
    }

    /// Expands the sweep grid into its concrete points, in deterministic
    /// (row-major) order — what `fair-scenario expand` prints and the
    /// runner iterates.
    pub fn points(&self) -> Vec<GridPoint> {
        match self {
            Family::DepositCoinToss { deposits, .. } => deposits
                .iter()
                .map(|d| GridPoint::Deposit { deposit: *d })
                .collect(),
            Family::AbortHeatmap { g10, costs, .. } => g10
                .iter()
                .flat_map(|g| {
                    costs
                        .iter()
                        .map(move |c| GridPoint::Cell { g10: *g, cost: *c })
                })
                .collect(),
            Family::PartialFairness { p, .. } => {
                p.iter().map(|p| GridPoint::Inverse { p: *p }).collect()
            }
        }
    }
}

/// One concrete point of an expanded sweep grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GridPoint {
    /// A deposit value of a `deposit-coin-toss` sweep.
    Deposit {
        /// The escrowed deposit d.
        deposit: f64,
    },
    /// One (γ₁₀, cost) cell of an `abort-heatmap` grid.
    Cell {
        /// The breach payoff γ₁₀ of this row.
        g10: f64,
        /// The per-party corruption price of this column.
        cost: f64,
    },
    /// One `p` of a `partial-fairness` sweep.
    Inverse {
        /// The 1/p parameter.
        p: u64,
    },
}

impl GridPoint {
    /// Deterministic label for listings and report rows.
    pub fn label(&self) -> String {
        match self {
            GridPoint::Deposit { deposit } => format!("deposit={deposit:.2}"),
            GridPoint::Cell { g10, cost } => format!("g10={g10:.2} cost={cost:.2}"),
            GridPoint::Inverse { p } => format!("p={p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_expansion_is_row_major_and_labeled() {
        let fam = Family::AbortHeatmap {
            g00: 0.25,
            g11: 0.5,
            g10: vec![0.8, 1.0],
            costs: vec![0.0, 0.4],
            rounds: 6,
        };
        let labels: Vec<String> = fam.points().iter().map(GridPoint::label).collect();
        assert_eq!(
            labels,
            vec![
                "g10=0.80 cost=0.00",
                "g10=0.80 cost=0.40",
                "g10=1.00 cost=0.00",
                "g10=1.00 cost=0.40",
            ]
        );
        assert_eq!(fam.name(), "abort-heatmap");
    }

    #[test]
    fn errors_render_as_file_line_message() {
        let e = ScenarioError {
            file: "scenarios/x.toml".into(),
            line: 7,
            msg: "missing `title`".into(),
        };
        assert_eq!(e.to_string(), "scenarios/x.toml:7: error: missing `title`");
    }
}
