#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `fair-scenario` — the declarative scenario layer.
//!
//! New utility surfaces are **data, not code**: a checked-in
//! `scenarios/*.toml` file declares a scenario family — its payoff
//! matrix, corruption-cost vector, adversary family, and sweep grid —
//! and this crate's validating compiler lowers it into a
//! [`ScenarioSpec`] the experiment registry (`fair-bench`) merges next
//! to the static E1–E17 entries. `reproduce --list`, `fair-trace list`,
//! and `fair-serve` then expose the family automatically, with no new
//! binaries and under the same byte-identity serving contract.
//!
//! The pipeline is deliberately strict: files parse through the shared
//! [`fair_simlab::tomlish`] strict mode, every schema violation is a
//! span-carrying [`ScenarioError`] (`file:line: message`), an id without
//! a title is a *compile error* (the registry never lists an untitled
//! experiment), and sweep grids are bounded so a checked-in family stays
//! a bounded amount of work.
//!
//! Three families ship with the repo (see `scenarios/`):
//!
//! * `deposit-coin-toss` — financial fairness: escrowed deposits are
//!   forfeited on abort and feed the payoff matrix via
//!   [`Payoff::with_abort_penalty`](fair_core::Payoff::with_abort_penalty);
//! * `abort-heatmap` — a (γ₁₀, corruption-cost) grid of optimal abort
//!   rounds against Π^Opt_2SFE, netted against a linear
//!   [`CostFn`](fair_core::cost::CostFn);
//! * `partial-fairness` — the Gordon–Katz 1/p trade-off curve swept over
//!   `p`.
//!
//! This crate is the *data* layer only (parse, validate, expand). It
//! depends on `fair-core` solely to validate payoff vectors with the same
//! class checks the estimator uses; running a compiled scenario is
//! `fair-bench`'s job.

pub mod compile;
pub mod schema;

pub use compile::{compile_str, load_dir, DirLoad};
pub use schema::{Family, GridPoint, ScenarioError, ScenarioSpec};
