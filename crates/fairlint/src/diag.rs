//! Diagnostics: what a rule reports and how it renders (human text and
//! line-oriented JSON, both hand-rolled — the crate has no external
//! dependencies).

/// How bad a finding is. Everything fairlint enforces today is an
/// error under `--strict`; the distinction is kept for output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational only.
    Warning,
    /// Fails `--strict`.
    Error,
}

impl Severity {
    /// Lowercase label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to a file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`D1`, `S2`, …).
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Workspace-relative path.
    pub rel: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// `path:line: error[D1] message` — the human-readable form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}[{}] {}",
            self.rel,
            self.line,
            self.severity.label(),
            self.rule,
            self.message
        )
    }

    /// One JSON object for the machine-readable report.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            self.rule,
            self.severity.label(),
            json_escape(&self.rel),
            self.line,
            json_escape(&self.message)
        )
    }
}

/// Full JSON report: `{"version":1,"count":N,"violations":[…]}`.
pub fn render_json_report(diags: &[Diagnostic]) -> String {
    let body: Vec<String> = diags.iter().map(Diagnostic::render_json).collect();
    format!(
        "{{\"version\":1,\"count\":{},\"violations\":[{}]}}",
        diags.len(),
        body.join(",")
    )
}

/// Minimal JSON string escaping.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> Diagnostic {
        Diagnostic {
            rule: "D1",
            severity: Severity::Error,
            rel: "crates/core/src/utility.rs".into(),
            line: 42,
            message: "wall-clock read `Instant::now` inside the determinism boundary".into(),
        }
    }

    #[test]
    fn human_form_has_span_and_rule() {
        assert_eq!(
            d().render(),
            "crates/core/src/utility.rs:42: error[D1] wall-clock read `Instant::now` inside the determinism boundary"
        );
    }

    #[test]
    fn json_report_is_well_formed() {
        let r = render_json_report(&[d()]);
        assert!(r.starts_with("{\"version\":1,\"count\":1,"));
        assert!(r.contains("\"rule\":\"D1\""));
        assert!(r.contains("\"line\":42"));
        assert_eq!(
            render_json_report(&[]),
            "{\"version\":1,\"count\":0,\"violations\":[]}"
        );
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
