//! Concurrency-discipline rules over the call graph: C1
//! blocking-under-lock, C2 lock-order consistency, C3 interprocedural
//! panic reachability.
//!
//! All three work from the same per-function scan: a linear walk of
//! each function body that tracks *lock-guard liveness*. A guard is
//! born at an acquisition site (`.lock(…)`, empty-parens `.read()` /
//! `.write()`, or a configured guard-returning helper), named after its
//! lock site, and dies at an explicit `drop(guard)`, at the end of its
//! binding scope (brace matching), or — for statement-temporaries that
//! never bind the guard — at the end of the statement. The scan is a
//! deliberate under-approximation: a `drop` inside one branch kills the
//! guard for the remainder of the scan, which can only *miss* findings,
//! never invent them.
//!
//! * **C1** fires when a blocking operation (socket/file IO, channel
//!   receive, thread join/sleep — see
//!   [`BLOCKING_TOKENS`](crate::graph::BLOCKING_TOKENS)) is reached
//!   while a guard is live, either directly or one call deep through
//!   the graph. Condvar waits are not blocking here: they release the
//!   guard.
//! * **C2** records each function's ordered pairs of nested lock-site
//!   acquisitions; two sites acquired in opposite orders anywhere in
//!   the workspace are a deadlock risk, flagged at both sites.
//! * **C3** extends S2: functions in panic-free files must not call
//!   workspace functions that can panic (unwrap/expect/panic!/indexing
//!   facts from the graph), transitively to `[rules.C3] depth`, unless
//!   the callee is allowlisted as proven-total in `[rules.C3]
//!   allow_fns`.

use std::collections::BTreeSet;

use crate::diag::{Diagnostic, Severity};
use crate::graph::{extract_calls, find_tokens, Graph, LineIndex};
use crate::items;
use crate::workspace::Workspace;

/// How a guard binding holds on to its lock.
#[derive(Clone, Debug, PartialEq, Eq)]
enum GuardKind {
    /// `let g = m.lock()…;` — live until `drop(g)` or scope exit.
    Let(String),
    /// Not bound to a variable: live to the end of the statement.
    Temp { stmt_end: usize },
}

/// A lock acquisition found in a body.
#[derive(Clone, Debug)]
struct Acq {
    /// Byte offset of the acquisition token in the file.
    off: usize,
    /// Heuristic lock-site name (`state`, `STORE`, a helper's argument…).
    site: String,
    kind: GuardKind,
}

/// A live guard during the linear walk.
#[derive(Clone, Debug)]
struct Live {
    var: Option<String>,
    site: String,
    line: usize,
    depth: usize,
    expiry: Option<usize>,
}

/// One nested-acquisition observation, for C2's global order check.
#[derive(Clone, Debug)]
pub struct OrderObs {
    /// Site already held.
    pub held: String,
    /// Site acquired while `held` was live.
    pub acquired: String,
    /// Where (file, line) the nested acquisition happened.
    pub rel: String,
    /// 1-based line of the nested acquisition.
    pub line: usize,
}

/// Runs C1 and C2's per-function scans plus C3's reachability walk,
/// appending diagnostics to `out`.
pub fn check(ws: &Workspace, g: &Graph, out: &mut Vec<Diagnostic>) {
    let mut order: Vec<OrderObs> = Vec::new();
    for (si, sym) in g.symbols.iter().enumerate() {
        if !crate_in_scope(&ws.config.c1_crates, sym.item.krate.as_deref())
            && !crate_in_scope(&ws.config.c2_crates, sym.item.krate.as_deref())
        {
            continue;
        }
        let Some(f) = ws.file_by_rel(&sym.item.rel) else {
            continue;
        };
        let c1 = crate_in_scope(&ws.config.c1_crates, sym.item.krate.as_deref());
        let c2 = crate_in_scope(&ws.config.c2_crates, sym.item.krate.as_deref());
        scan_function(ws, g, si, &f.text, c1, c2, &mut order, out);
    }
    check_c2(&order, out);
    check_c3(ws, g, out);
}

/// Whether a crate list (empty = every crate) covers `krate`.
fn crate_in_scope(list: &[String], krate: Option<&str>) -> bool {
    list.is_empty() || krate.is_some_and(|k| list.iter().any(|c| c == k))
}

/// The linear guard-liveness walk over one function body.
#[allow(clippy::too_many_arguments)]
fn scan_function(
    ws: &Workspace,
    g: &Graph,
    si: usize,
    text: &str,
    c1: bool,
    c2: bool,
    order: &mut Vec<OrderObs>,
    out: &mut Vec<Diagnostic>,
) {
    let sym = &g.symbols[si];
    let body = sym.item.body(text);
    let base = sym.item.body_start + 1;
    let lines = LineIndex::new(text);

    // Gather events: acquisitions, drops, blocking ops, resolvable calls.
    #[derive(Debug)]
    enum Ev {
        Acq(Acq),
        Drop(Vec<String>),
        Block(&'static str),
        Call(usize),
    }
    let mut events: Vec<(usize, Ev)> = Vec::new();
    for acq in find_acquisitions(body, base, &ws.config.c1_guard_helpers) {
        events.push((acq.off, Ev::Acq(acq)));
    }
    for off in find_tokens(body, "drop(") {
        let args = paren_args(body, off + "drop".len());
        let idents = idents_in(args);
        events.push((base + off, Ev::Drop(idents)));
    }
    for (tok, what) in crate::graph::BLOCKING_TOKENS {
        for off in find_tokens(body, tok) {
            events.push((base + off, Ev::Block(what)));
        }
    }
    for call in extract_calls(body, base) {
        // One call deep: only unambiguously resolved edges whose target
        // blocks matter for C1.
        for e in g.callees(si) {
            if e.certain
                && lines.line_of(call.off) == e.line
                && !g.symbols[e.to].blocking.is_empty()
            {
                events.push((call.off, Ev::Call(e.to)));
            }
        }
    }
    events.sort_by_key(|(off, _)| *off);

    // Walk the body, counting braces between events.
    let b = body.as_bytes();
    let mut live: Vec<Live> = Vec::new();
    let mut depth = 0usize;
    let mut pos = 0usize;
    let mut reported: BTreeSet<(usize, String)> = BTreeSet::new();
    for (off, ev) in events {
        let rel_off = off - base;
        while pos < rel_off {
            match b[pos] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    live.retain(|l| l.depth <= depth);
                }
                _ => {}
            }
            pos += 1;
        }
        live.retain(|l| l.expiry.is_none_or(|e| e > off));
        let line = lines.line_of(off);
        match ev {
            Ev::Acq(acq) => {
                if c2 {
                    for held in &live {
                        if held.site != acq.site {
                            order.push(OrderObs {
                                held: held.site.clone(),
                                acquired: acq.site.clone(),
                                rel: sym.item.rel.clone(),
                                line,
                            });
                        }
                    }
                }
                let (var, expiry, bind_depth) = match acq.kind {
                    GuardKind::Let(v) => (Some(v), None, depth),
                    GuardKind::Temp { stmt_end } => (None, Some(stmt_end), depth),
                };
                live.push(Live {
                    var,
                    site: acq.site,
                    line,
                    depth: bind_depth,
                    expiry,
                });
            }
            Ev::Drop(idents) => {
                live.retain(|l| {
                    l.var
                        .as_ref()
                        .is_none_or(|v| !idents.iter().any(|i| i == v))
                });
            }
            Ev::Block(what) => {
                if c1 {
                    if let Some(g0) = live.first() {
                        if reported.insert((line, what.to_string())) {
                            out.push(c1_diag(
                                sym.item.rel.clone(),
                                line,
                                format!(
                                    "blocking op ({what}) while lock guard `{}` (acquired line {}) \
                                     is live; drop the guard before blocking",
                                    g0.site, g0.line
                                ),
                            ));
                        }
                    }
                }
            }
            Ev::Call(to) => {
                if c1 {
                    if let Some(g0) = live.first() {
                        let t = &g.symbols[to];
                        let fact = &t.blocking[0];
                        if reported.insert((line, t.item.qname.clone())) {
                            out.push(c1_diag(
                                sym.item.rel.clone(),
                                line,
                                format!(
                                    "call to `{}` — which performs {} at {}:{} — while lock guard \
                                     `{}` (acquired line {}) is live; drop the guard first",
                                    t.item.qname,
                                    fact.what,
                                    t.item.rel,
                                    fact.line,
                                    g0.site,
                                    g0.line
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

fn c1_diag(rel: String, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule: "C1",
        severity: Severity::Error,
        rel,
        line,
        message,
    }
}

/// Finds every lock acquisition in a body. Acquisition forms:
/// `.lock(…)`, empty-parens `.read()` / `.write()` (RwLock — the io
/// traits take arguments), and bare calls to configured guard helpers.
fn find_acquisitions(body: &str, base: usize, helpers: &[String]) -> Vec<Acq> {
    let b = body.as_bytes();
    let mut out = Vec::new();
    let mut push = |tok_off: usize, open: usize, site: String| {
        let kind = classify_binding(body, tok_off, open);
        out.push(Acq {
            off: base + tok_off,
            site,
            kind,
        });
    };
    for tok in [".lock(", ".read()", ".write()"] {
        for off in find_tokens(body, tok) {
            let open = off + tok.trim_end_matches(')').len() - 1;
            let args = paren_args(body, open);
            let site = if tok == ".lock(" && !idents_in(args).is_empty() {
                // Helper method taking the shard/site as an argument.
                first_site_ident(args).unwrap_or_else(|| "lock".to_string())
            } else {
                receiver_ident(body, off).unwrap_or_else(|| "lock".to_string())
            };
            push(off, open, site);
        }
    }
    for helper in helpers {
        let pat = format!("{helper}(");
        for off in find_tokens(body, &pat) {
            // Skip method syntax (`x.lock()` is handled above), path
            // tails (`Mutex::lock`), and definitions (`fn lock(`).
            if off > 0 && (b[off - 1] == b'.' || b[off - 1] == b':') {
                continue;
            }
            if preceded_by_word(body, off, "fn") {
                continue;
            }
            let open = off + helper.len();
            let args = paren_args(body, open);
            let site = first_site_ident(args).unwrap_or_else(|| helper.clone());
            push(off, open, site);
        }
    }
    out.sort_by_key(|a| a.off);
    out
}

/// Whether the word immediately before offset `off` (skipping spaces)
/// is `word`.
fn preceded_by_word(body: &str, off: usize, word: &str) -> bool {
    let b = body.as_bytes();
    let mut t = off;
    while t > 0 && (b[t - 1] == b' ' || b[t - 1] == b'\n' || b[t - 1] == b'\t') {
        t -= 1;
    }
    let mut w = t;
    while w > 0 && items::is_ident(b[w - 1]) {
        w -= 1;
    }
    &body[w..t] == word
}

/// The argument text of a call whose `(` sits at `open`.
fn paren_args(body: &str, open: usize) -> &str {
    let b = body.as_bytes();
    if open >= b.len() || b[open] != b'(' {
        return "";
    }
    let mut depth = 0usize;
    for (j, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return &body[open + 1..j];
                }
            }
            _ => {}
        }
    }
    &body[open + 1..]
}

/// All identifiers in a text fragment.
fn idents_in(s: &str) -> Vec<String> {
    let b = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if items::is_ident_start(b[i]) && !items::prev_is_ident(b, i) {
            let w = items::read_ident(s, i);
            i += w.len();
            out.push(w.to_string());
        } else {
            i += 1;
        }
    }
    out
}

/// The first meaningful identifier of an argument list — the lock-site
/// name for helper-style acquisitions (`lock(self.shard_for(&g))` →
/// `shard_for`, `self.lock(shard)` → `shard`).
fn first_site_ident(args: &str) -> Option<String> {
    idents_in(args)
        .into_iter()
        .find(|w| !matches!(w.as_str(), "self" | "mut" | "ref"))
}

/// The receiver's last identifier before a `.lock()`-style token at
/// `off` (`self.state.lock()` → `state`, `STORE.read()` → `STORE`).
fn receiver_ident(body: &str, off: usize) -> Option<String> {
    let b = body.as_bytes();
    let mut j = off; // offset of the `.`
    let mut w = j;
    while w > 0 && items::is_ident(b[w - 1]) {
        w -= 1;
    }
    if w == j {
        // Receiver ends with `)` or `]` — e.g. `shard_for(x).lock()`:
        // take the call's name instead.
        if j > 0 && (b[j - 1] == b')' || b[j - 1] == b']') {
            let close = j - 1;
            let mut depth = 0usize;
            let mut k = close;
            loop {
                match b[k] {
                    b')' | b']' => depth += 1,
                    b'(' | b'[' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if k == 0 {
                    return None;
                }
                k -= 1;
            }
            j = k;
            w = j;
            while w > 0 && items::is_ident(b[w - 1]) {
                w -= 1;
            }
        }
        if w == j {
            return None;
        }
    }
    Some(body[w..j].to_string())
}

/// Classifies an acquisition as a `let`-bound guard or a
/// statement-temporary. `tok_off` is the token start, `open` the `(`
/// of the acquiring call.
fn classify_binding(body: &str, tok_off: usize, open: usize) -> GuardKind {
    let b = body.as_bytes();
    // Statement head: everything since the last `;`, `{` or `}`.
    let mut s = tok_off;
    while s > 0 && !matches!(b[s - 1], b';' | b'{' | b'}') {
        s -= 1;
    }
    let head = body[s..tok_off].trim_start();
    let stmt_end = body[tok_off..]
        .find([';', '{', '}'])
        .map_or(body.len(), |k| tok_off + k);

    let mut words = head.split_whitespace();
    let binds = match words.next() {
        Some("let") => {
            let mut var = words.next().unwrap_or("");
            if var == "mut" {
                var = words.next().unwrap_or("");
            }
            let var: String = var
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            (!var.is_empty() && var != "_").then_some(var)
        }
        _ => None,
    };
    let Some(var) = binds else {
        return GuardKind::Temp { stmt_end };
    };

    // Adapter tail: after the acquiring call, only poisoned-lock
    // adapters and `?` may follow for the binding to hold the guard —
    // anything else (`.take()`, `.clone()`, `[`) binds a derived value.
    let mut j = match_close(body, open);
    loop {
        while j < b.len() && (b[j] == b' ' || b[j] == b'\n' || b[j] == b'\t') {
            j += 1;
        }
        match b.get(j) {
            Some(b';') => return GuardKind::Let(var),
            Some(b'?') => j += 1,
            Some(b'.') => {
                let name = items::read_ident(body, j + 1);
                if matches!(name, "unwrap" | "expect" | "unwrap_or_else") {
                    j = match_close(body, j + 1 + name.len());
                } else {
                    return GuardKind::Temp { stmt_end };
                }
            }
            _ => return GuardKind::Temp { stmt_end },
        }
    }
}

/// Byte offset just past the `)` matching the `(` at `open` (or past
/// `open` when there is no paren there).
fn match_close(body: &str, open: usize) -> usize {
    let b = body.as_bytes();
    if open >= b.len() || b[open] != b'(' {
        return open;
    }
    let mut depth = 0usize;
    for (j, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
    }
    b.len()
}

/// C2 — flags lock-site pairs acquired in opposite orders anywhere in
/// the workspace, at the first occurrence of each direction.
fn check_c2(order: &[OrderObs], out: &mut Vec<Diagnostic>) {
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for o in order {
        seen.insert((o.held.clone(), o.acquired.clone()));
    }
    let mut flagged: BTreeSet<(String, String)> = BTreeSet::new();
    for o in order {
        let fwd = (o.held.clone(), o.acquired.clone());
        let rev = (o.acquired.clone(), o.held.clone());
        if !seen.contains(&rev) || flagged.contains(&fwd) {
            continue;
        }
        flagged.insert(fwd);
        // First occurrence of the opposite direction, for the message.
        let opposite = order
            .iter()
            .filter(|x| x.held == o.acquired && x.acquired == o.held)
            .min_by_key(|x| (&x.rel, x.line));
        let cite = opposite.map_or(String::new(), |x| {
            format!(" (opposite order at {}:{})", x.rel, x.line)
        });
        out.push(Diagnostic {
            rule: "C2",
            severity: Severity::Error,
            rel: o.rel.clone(),
            line: o.line,
            message: format!(
                "lock `{}` acquired while `{}` is held, but the workspace also acquires them in \
                 the opposite order{cite}; pick one global acquisition order to rule out deadlock",
                o.acquired, o.held
            ),
        });
    }
}

/// C3 — panic reachability from S2's panic-free files through the call
/// graph, to the configured depth.
fn check_c3(ws: &Workspace, g: &Graph, out: &mut Vec<Diagnostic>) {
    let in_s2 = |rel: &str| ws.config.engine_paths.iter().any(|p| p == rel);
    let allowed = |qname: &str| ws.config.c3_allow_fns.iter().any(|a| a == qname);
    let depth_limit = ws.config.c3_depth.max(1);
    for (si, sym) in g.symbols.iter().enumerate() {
        if !in_s2(&sym.item.rel) {
            continue;
        }
        let mut reported: BTreeSet<(usize, String)> = BTreeSet::new();
        let mut visited: BTreeSet<usize> = BTreeSet::new();
        // (symbol, depth, call line in the root, via-chain). Only
        // certain edges: an ambiguous method name (trait dispatch)
        // would flag every impl's internal asserts.
        let mut frontier: Vec<(usize, usize, usize, Vec<String>)> = g
            .callees(si)
            .filter(|e| e.certain)
            .map(|e| (e.to, 1usize, e.line, Vec::new()))
            .collect();
        while let Some((ti, depth, line, via)) = frontier.pop() {
            let t = &g.symbols[ti];
            if allowed(&t.item.qname) || in_s2(&t.item.rel) {
                continue; // proven total, or itself under S2+C3 as a root
            }
            if let Some(fact) = t.panics.first() {
                if reported.insert((line, t.item.qname.clone())) {
                    let chain = if via.is_empty() {
                        String::new()
                    } else {
                        format!(" (via `{}`)", via.join("` → `"))
                    };
                    out.push(Diagnostic {
                        rule: "C3",
                        severity: Severity::Error,
                        rel: sym.item.rel.clone(),
                        line,
                        message: format!(
                            "panic-free path calls `{}`{chain}, which can panic ({} at {}:{}); \
                             return a typed error, or prove it total and allowlist it in \
                             [rules.C3] allow_fns",
                            t.item.qname, fact.what, t.item.rel, fact.line
                        ),
                    });
                }
            }
            if depth < depth_limit && visited.insert(ti) {
                let mut via2 = via.clone();
                via2.push(t.item.qname.clone());
                for e in g.callees(ti).filter(|e| e.certain) {
                    frontier.push((e.to, depth + 1, line, via2.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_classification() {
        let body = "let g = m.lock().unwrap_or_else(|e| e.into_inner());\nio();";
        let acqs = find_acquisitions(body, 0, &[]);
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].site, "m");
        assert!(matches!(acqs[0].kind, GuardKind::Let(ref v) if v == "g"));

        // Chaining past the guard binds a derived value, not the guard.
        let body = "let taken = slot.lock().unwrap().take();";
        let acqs = find_acquisitions(body, 0, &[]);
        assert!(matches!(acqs[0].kind, GuardKind::Temp { .. }), "{acqs:?}");

        // `let _ = guard` drops immediately.
        let body = "let _ = m.lock();";
        let acqs = find_acquisitions(body, 0, &[]);
        assert!(matches!(acqs[0].kind, GuardKind::Temp { .. }));
    }

    #[test]
    fn rwlock_needs_empty_parens() {
        let acqs = find_acquisitions("let g = STORE.read();\nsock.read(&mut buf);", 0, &[]);
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].site, "STORE");
    }

    #[test]
    fn helper_acquisitions_take_the_argument_site() {
        let acqs = find_acquisitions(
            "let mut shard = lock(self.shard_for(&group));\nlet g = self.lock(shard);",
            0,
            &["lock".to_string()],
        );
        assert_eq!(acqs.len(), 2);
        assert_eq!(acqs[0].site, "shard_for");
        assert_eq!(acqs[1].site, "shard");
        assert!(matches!(acqs[0].kind, GuardKind::Let(ref v) if v == "shard"));
    }

    #[test]
    fn fn_definitions_are_not_helper_calls() {
        let acqs = find_acquisitions(
            "fn lock(m: &M) -> G { m.inner.lock() }",
            0,
            &["lock".into()],
        );
        // Only the `.lock()` inside the body counts, not `fn lock(`.
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].site, "inner");
    }

    #[test]
    fn receiver_chains_name_the_last_segment() {
        assert_eq!(
            receiver_ident("self.state.lock()", 10),
            Some("state".to_string())
        );
        let body = "self.shard_for(k).lock()";
        assert_eq!(receiver_ident(body, 17), Some("shard_for".to_string()));
    }
}
