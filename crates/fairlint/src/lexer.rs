//! A scrubbing lexer: replaces the contents of comments, string literals
//! and char literals with spaces while preserving line structure, so rule
//! checks can match raw tokens without being fooled by prose or data.
//!
//! Along the way it extracts `// fairlint::allow(...)` suppression
//! comments (they live inside comments, which are about to be blanked).
//!
//! The lexer understands exactly enough Rust: line comments, nested block
//! comments, string literals with escapes, raw strings (`r"…"`,
//! `r#"…"#`, any hash depth), byte and raw-byte strings (`b"…"`,
//! `br#"…"#`), byte char literals (`b'x'`), and the
//! char-literal/lifetime ambiguity (`'a'` vs `'a`).

/// A suppression comment, parsed but not yet validated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Rule ids listed before `reason = …`.
    pub rules: Vec<String>,
    /// The mandatory reason string, if one parsed.
    pub reason: Option<String>,
    /// Raw text inside `allow(...)`, for diagnostics.
    pub raw: String,
}

impl Suppression {
    /// Lines this suppression covers: its own line and the next one (a
    /// whole-line comment suppresses the statement below; a trailing
    /// comment suppresses its own line).
    pub fn covers(&self, line: usize) -> bool {
        line == self.line || line == self.line + 1
    }
}

/// Output of [`scrub`].
#[derive(Clone, Debug)]
pub struct Scrubbed {
    /// Source with comment/string/char contents blanked to spaces.
    /// Newlines (and string delimiters) are preserved, so byte offsets
    /// and line numbers match the original exactly.
    pub text: String,
    /// Every `fairlint::allow(...)` comment found.
    pub suppressions: Vec<Suppression>,
}

const ALLOW_MARKER: &str = "fairlint::allow(";

/// Scrubs Rust source. See the module docs.
pub fn scrub(src: &str) -> Scrubbed {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut suppressions = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    macro_rules! push_raw {
        ($c:expr) => {{
            if $c == b'\n' {
                line += 1;
            }
            out.push($c);
        }};
    }
    // Blank a byte: newlines survive, everything else becomes a space.
    macro_rules! push_blank {
        ($c:expr) => {{
            if $c == b'\n' {
                line += 1;
                out.push(b'\n');
            } else {
                out.push(b' ');
            }
        }};
    }

    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let end = src[i..].find('\n').map_or(b.len(), |k| i + k);
            let comment = &src[i..end];
            if let Some(s) = parse_allow(comment, line) {
                suppressions.push(s);
            }
            while i < end {
                push_blank!(b[i]);
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1usize;
            push_blank!(b[i]);
            push_blank!(b[i + 1]);
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    push_blank!(b[i]);
                    push_blank!(b[i + 1]);
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    push_blank!(b[i]);
                    push_blank!(b[i + 1]);
                    i += 2;
                } else {
                    push_blank!(b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw string (r"…", r#"…"#, br#"…"#). Check before plain ident.
        if (c == b'r' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'r')) && !prev_is_ident(b, i)
        {
            let start = if c == b'b' { i + 2 } else { i + 1 };
            let mut hashes = 0usize;
            let mut j = start;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == b'"' {
                // Emit the prefix (r, b, hashes, opening quote) verbatim.
                while i <= j {
                    push_raw!(b[i]);
                    i += 1;
                }
                // Blank until closing quote + same hash count.
                'raw: while i < b.len() {
                    if b[i] == b'"' {
                        let mut k = 0usize;
                        while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == b'#' {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                push_raw!(b[i]);
                                i += 1;
                            }
                            break 'raw;
                        }
                    }
                    push_blank!(b[i]);
                    i += 1;
                }
                continue;
            }
        }
        // Plain or byte string.
        if c == b'"' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'"' && !prev_is_ident(b, i)) {
            if c == b'b' {
                push_raw!(b[i]);
                i += 1;
            }
            push_raw!(b[i]); // opening quote
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    push_blank!(b[i]);
                    push_blank!(b[i + 1]);
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    push_raw!(b[i]);
                    i += 1;
                    break;
                }
                push_blank!(b[i]);
                i += 1;
            }
            continue;
        }
        // Byte char literal (`b'x'`, `b'\"'`). The leading `b` makes
        // the quote look identifier-preceded, so the generic
        // char-literal case below never sees it — and an unhandled
        // `b'"'` would leave a bare `"` that derails string detection
        // for the rest of the file.
        if c == b'b' && i + 1 < b.len() && b[i + 1] == b'\'' && !prev_is_ident(b, i) {
            if let Some(len) = char_literal_len(&b[i + 1..]) {
                push_raw!(b[i]); // the `b`
                i += 1;
                for _ in 0..len {
                    if b[i] == b'\'' {
                        push_raw!(b[i]);
                    } else {
                        push_blank!(b[i]);
                    }
                    i += 1;
                }
                continue;
            }
        }
        // Char literal vs lifetime.
        if c == b'\'' && !prev_is_ident(b, i) {
            if let Some(len) = char_literal_len(&b[i..]) {
                for _ in 0..len {
                    if b[i] == b'\'' {
                        push_raw!(b[i]);
                    } else {
                        push_blank!(b[i]);
                    }
                    i += 1;
                }
                continue;
            }
            // Lifetime: emit verbatim.
            push_raw!(b[i]);
            i += 1;
            continue;
        }
        push_raw!(b[i]);
        i += 1;
    }

    Scrubbed {
        text: String::from_utf8_lossy(&out).into_owned(),
        suppressions,
    }
}

/// Whether `b[i]` is preceded by an identifier character (so `r` in
/// `for` or `'` in `x'` — impossible, but defensive — is not a prefix).
fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// If `b` (starting at a `'`) begins a char literal, its byte length
/// (including both quotes); `None` for a lifetime.
fn char_literal_len(b: &[u8]) -> Option<usize> {
    debug_assert!(b[0] == b'\'');
    if b.len() < 3 {
        return None;
    }
    if b[1] == b'\\' {
        // Escaped char: find the closing quote within a small window
        // (\u{10FFFF} is the longest escape).
        let limit = b.len().min(12);
        (2..limit).find(|&j| b[j] == b'\'').map(|j| j + 1)
    } else if b[1] < 0x80 {
        // ASCII content: `'x'` exactly, otherwise it's a lifetime.
        (b[1] != b'\'' && b[2] == b'\'').then_some(3)
    } else {
        // Multibyte UTF-8 char: content length from the leading byte.
        let len = match b[1] {
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        };
        (b.len() > 1 + len && b[1 + len] == b'\'').then_some(len + 2)
    }
}

/// Parses a `fairlint::allow(...)` comment into a [`Suppression`].
///
/// Only plain `//` comments whose text *starts* with the marker count;
/// doc comments (`///`, `//!`) and prose that merely mentions the
/// syntax are ignored.
fn parse_allow(comment: &str, line: usize) -> Option<Suppression> {
    let content = comment.strip_prefix("//")?;
    if content.starts_with('/') || content.starts_with('!') {
        return None;
    }
    let rest = content.trim_start().strip_prefix(ALLOW_MARKER)?;
    let close = rest.rfind(')').unwrap_or(rest.len());
    let inner = rest[..close].trim().to_string();

    let mut rules = Vec::new();
    let mut reason = None;
    for part in split_top_level(&inner) {
        let part = part.trim();
        if let Some(eq) = part.strip_prefix("reason") {
            let eq = eq.trim_start();
            if let Some(v) = eq.strip_prefix('=') {
                let v = v.trim();
                let v = v.strip_prefix('"').unwrap_or(v);
                let v = v.strip_suffix('"').unwrap_or(v);
                if !v.trim().is_empty() {
                    reason = Some(v.trim().to_string());
                }
            }
        } else if !part.is_empty() {
            rules.push(part.to_string());
        }
    }
    Some(Suppression {
        line,
        rules,
        reason,
        raw: inner,
    })
}

/// Splits on commas that are not inside a quoted string.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked_but_lines_survive() {
        let s = scrub("let x = 1; // Instant::now\nlet y = 2;");
        assert!(!s.text.contains("Instant"));
        assert_eq!(s.text.lines().count(), 2);
        assert!(s.text.contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scrub("a /* outer /* inner */ still comment */ b");
        assert!(s.text.contains('a') && s.text.contains('b'));
        assert!(!s.text.contains("comment"));
    }

    #[test]
    fn strings_are_blanked_delimiters_kept() {
        let s = scrub(r#"call("Instant::now", 'x', b"bytes")"#);
        assert!(!s.text.contains("Instant"));
        assert!(!s.text.contains("bytes"));
        assert!(s.text.contains("call(\""));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"todo!() \" quote inside\"#; after();";
        let s = scrub(src);
        assert!(!s.text.contains("todo"));
        assert!(s.text.contains("after();"));
    }

    #[test]
    fn multi_hash_raw_strings() {
        // The `"#` inside does not close an `r##`-delimited string.
        let src = "let s = r##\"panic!() \"# still inside\"##; after();";
        let s = scrub(src);
        assert!(!s.text.contains("panic"), "text: {}", s.text);
        assert!(!s.text.contains("inside"));
        assert!(s.text.contains("after();"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let s = scrub("let a = b\"todo!()\"; let b = br#\"dbg!() \" q\"#; tail();");
        assert!(!s.text.contains("todo"), "text: {}", s.text);
        assert!(!s.text.contains("dbg"), "text: {}", s.text);
        assert!(s.text.contains("tail();"));
    }

    #[test]
    fn byte_char_literals_are_blanked() {
        // `b'"'` must not open a phantom string that swallows the rest
        // of the file.
        let s = scrub("let q = b'\"'; let n = b'\\n'; let x = b'x'; after();");
        assert!(s.text.contains("after();"), "text: {}", s.text);
        assert!(!s.text.contains("b'x'"), "content blanked: {}", s.text);
        // Delimiters (and the b prefix) survive for offset stability.
        assert!(s.text.contains("b' '"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let s = scrub(r#"x("a\"b unimplemented!"); y();"#);
        assert!(!s.text.contains("unimplemented"));
        assert!(s.text.contains("y();"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let s = scrub("fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; }");
        assert!(s.text.contains("<'a>"));
        assert!(s.text.contains("&'a str"));
        assert!(!s.text.contains('q'), "text: {}", s.text);
    }

    #[test]
    fn suppression_with_reason_parses() {
        let s = scrub("// fairlint::allow(D1, reason = \"bench-only timing\")\nfoo();");
        assert_eq!(s.suppressions.len(), 1);
        let sup = &s.suppressions[0];
        assert_eq!(sup.rules, vec!["D1".to_string()]);
        assert_eq!(sup.reason.as_deref(), Some("bench-only timing"));
        assert_eq!(sup.line, 1);
        assert!(sup.covers(1) && sup.covers(2) && !sup.covers(3));
    }

    #[test]
    fn suppression_without_reason_has_none() {
        let s = scrub("x(); // fairlint::allow(S1)");
        assert_eq!(s.suppressions.len(), 1);
        assert!(s.suppressions[0].reason.is_none());
        assert_eq!(s.suppressions[0].rules, vec!["S1".to_string()]);
    }

    #[test]
    fn comma_inside_reason_string_is_not_a_separator() {
        let s = scrub("// fairlint::allow(R4, reason = \"one, sanctioned entry\")");
        assert_eq!(s.suppressions[0].rules.len(), 1);
        assert_eq!(
            s.suppressions[0].reason.as_deref(),
            Some("one, sanctioned entry")
        );
    }
}
