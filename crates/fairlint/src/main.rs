#![forbid(unsafe_code)]
#![allow(clippy::print_stdout)]
//! The `fairlint` binary: walk a workspace, run every rule, report.
//!
//! ```text
//! fairlint [--root <dir>] [--strict] [--json] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean (or report-only run), 1 violations under
//! `--strict`, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use fairlint::{render_json_report, Workspace, RULES};

struct Options {
    root: PathBuf,
    strict: bool,
    json: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        strict: false,
        json: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--strict" => opts.strict = true,
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                let v = args.next().ok_or("--root needs a directory argument")?;
                opts.root = PathBuf::from(v);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: fairlint [--root <dir>] [--strict] [--json] [--list-rules]".to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in RULES {
            println!("{:4} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let ws = match Workspace::load(&opts.root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "fairlint: cannot load workspace {}: {e}",
                opts.root.display()
            );
            return ExitCode::from(2);
        }
    };
    let diags = ws.analyze();

    if opts.json {
        println!("{}", render_json_report(&diags));
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        let files = ws.files.len();
        if diags.is_empty() {
            println!("fairlint: {files} files, clean");
        } else {
            println!("fairlint: {files} files, {} violation(s)", diags.len());
        }
    }

    if opts.strict && !diags.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
