#![forbid(unsafe_code)]
#![allow(clippy::print_stdout)]
//! The `fairlint` binary: walk a workspace, run every rule, report.
//!
//! ```text
//! fairlint [--root <dir>] [--strict] [--json] [--list-rules]
//!          [--explain <RULE>] [--graph json|dot]
//!          [--baseline write|check]
//! ```
//!
//! `--graph` prints the workspace call graph instead of diagnostics;
//! `--explain` prints one rule's rationale and fix; `--baseline write`
//! records current violations into `fairlint.baseline`, `--baseline
//! check` subtracts them so only new findings count.
//!
//! Exit codes: 0 clean (or report-only run), 1 violations under
//! `--strict`, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use fairlint::{baseline, graph, render_json_report, Workspace, RULES};

#[derive(Clone, Copy, PartialEq)]
enum GraphFormat {
    Json,
    Dot,
}

#[derive(Clone, Copy, PartialEq)]
enum BaselineMode {
    Write,
    Check,
}

struct Options {
    root: PathBuf,
    strict: bool,
    json: bool,
    list_rules: bool,
    explain: Option<String>,
    graph: Option<GraphFormat>,
    baseline: Option<BaselineMode>,
}

const USAGE: &str = "usage: fairlint [--root <dir>] [--strict] [--json] [--list-rules] \
     [--explain <RULE>] [--graph json|dot] [--baseline write|check]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        strict: false,
        json: false,
        list_rules: false,
        explain: None,
        graph: None,
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--strict" => opts.strict = true,
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                let v = args.next().ok_or("--root needs a directory argument")?;
                opts.root = PathBuf::from(v);
            }
            "--explain" => {
                let v = args.next().ok_or("--explain needs a rule id (e.g. C1)")?;
                opts.explain = Some(v);
            }
            "--graph" => {
                let v = args.next().ok_or("--graph needs a format: json or dot")?;
                opts.graph = Some(match v.as_str() {
                    "json" => GraphFormat::Json,
                    "dot" => GraphFormat::Dot,
                    other => return Err(format!("unknown graph format `{other}` (json|dot)")),
                });
            }
            "--baseline" => {
                let v = args
                    .next()
                    .ok_or("--baseline needs a mode: write or check")?;
                opts.baseline = Some(match v.as_str() {
                    "write" => BaselineMode::Write,
                    "check" => BaselineMode::Check,
                    other => return Err(format!("unknown baseline mode `{other}` (write|check)")),
                });
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in RULES {
            println!("{:4} {}", r.id, r.summary);
        }
        println!();
        println!("run `fairlint --explain <RULE>` for a rule's rationale and fix");
        return ExitCode::SUCCESS;
    }

    if let Some(id) = &opts.explain {
        let Some(r) = RULES.iter().find(|r| r.id.eq_ignore_ascii_case(id)) else {
            eprintln!("fairlint: unknown rule `{id}` (see --list-rules)");
            return ExitCode::from(2);
        };
        println!("{} — {}", r.id, r.summary);
        println!();
        println!("why:  {}", r.rationale);
        println!("fix:  {}", r.fix);
        return ExitCode::SUCCESS;
    }

    let ws = match Workspace::load(&opts.root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "fairlint: cannot load workspace {}: {e}",
                opts.root.display()
            );
            return ExitCode::from(2);
        }
    };

    if let Some(format) = opts.graph {
        let g = graph::build(&ws);
        match format {
            GraphFormat::Json => print!("{}", graph::render_json(&g)),
            GraphFormat::Dot => print!("{}", graph::render_dot(&g)),
        }
        return ExitCode::SUCCESS;
    }

    let mut diags = ws.analyze();

    match opts.baseline {
        Some(BaselineMode::Write) => {
            let path = opts.root.join(baseline::BASELINE_FILE);
            if let Err(e) = std::fs::write(&path, baseline::render(&diags)) {
                eprintln!("fairlint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!(
                "fairlint: wrote {} ({} violation(s) baselined)",
                path.display(),
                diags.len()
            );
            return ExitCode::SUCCESS;
        }
        Some(BaselineMode::Check) => {
            let path = opts.root.join(baseline::BASELINE_FILE);
            let base = match std::fs::read_to_string(&path) {
                Ok(src) => baseline::parse(&src),
                Err(_) => baseline::Baseline::new(),
            };
            diags = baseline::filter(diags, &base);
        }
        None => {}
    }

    if opts.json {
        println!("{}", render_json_report(&diags));
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        let files = ws.files.len();
        if diags.is_empty() {
            println!("fairlint: {files} files, clean");
        } else {
            println!("fairlint: {files} files, {} violation(s)", diags.len());
        }
    }

    if opts.strict && !diags.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
