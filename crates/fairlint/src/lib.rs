#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `fairlint` — the project's own static-analysis pass.
//!
//! The reproduction suite's claims rest on three properties no generic
//! linter checks: **determinism** (bit-identical estimates for any
//! worker count require no wall-clock, ambient entropy, or
//! iteration-order dependence inside the protocol/estimator layers),
//! **secret hygiene** (shares, MAC keys/tags, commitment openings and
//! signing keys must not leak through derived `Debug` or short-circuit
//! `==`), and **experiment-registry conformance** (every `exp_*` bin,
//! the shared runner's `ALL_EXPERIMENTS` registry, and the
//! EXPERIMENTS.md summary table stay in lockstep).
//!
//! fairlint enforces those as rules `D1`–`D2`, `S1`–`S2`, `R1`–`R5`,
//! plus `L1` policing its own suppression comments. It is a token-level
//! analysis over a scrubbing lexer ([`lexer`]) — comments and string
//! literals are blanked before matching, so prose never trips a rule —
//! with path-scoped configuration from `fairlint.toml` ([`config`]) and
//! inline escape hatches:
//!
//! ```text
//! // fairlint::allow(D1, reason = "bench-only timing, outside the boundary")
//! ```
//!
//! The reason is mandatory; a reasonless suppression is inert and
//! itself a violation. Run `cargo run -p fairlint -- --list-rules` for
//! the rule table; `ci.sh` runs `--strict` on every push.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

pub use config::Config;
pub use diag::{render_json_report, Diagnostic, Severity};
pub use rules::{known_rule, RULES};
pub use source::SourceFile;
pub use workspace::Workspace;
