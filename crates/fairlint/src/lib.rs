#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `fairlint` — the project's own static-analysis pass.
//!
//! The reproduction suite's claims rest on three properties no generic
//! linter checks: **determinism** (bit-identical estimates for any
//! worker count require no wall-clock, ambient entropy, or
//! iteration-order dependence inside the protocol/estimator layers),
//! **secret hygiene** (shares, MAC keys/tags, commitment openings and
//! signing keys must not leak through derived `Debug` or short-circuit
//! `==`), and **experiment-registry conformance** (every `exp_*` bin,
//! the shared runner's `ALL_EXPERIMENTS` registry, and the
//! EXPERIMENTS.md summary table stay in lockstep).
//!
//! fairlint enforces those as rules `D1`–`D2`, `S1`–`S2`, `R1`–`R5`,
//! plus `L1` policing its own suppression comments. It is a token-level
//! analysis over a scrubbing lexer ([`lexer`]) — comments and string
//! literals are blanked before matching, so prose never trips a rule —
//! with path-scoped configuration from `fairlint.toml` ([`config`]) and
//! inline escape hatches:
//!
//! ```text
//! // fairlint::allow(D1, reason = "bench-only timing, outside the boundary")
//! ```
//!
//! The reason is mandatory; a reasonless suppression is inert and
//! itself a violation.
//!
//! On top of the token pass, fairlint builds a workspace **symbol
//! index and call graph** ([`items`], [`graph`]): a scope-aware item
//! parser assigns every `fn` a qualified name
//! (`crate::module::Type::method`), and a call-edge extractor links
//! call sites to candidate definitions, marking an edge *certain* when
//! it resolves to exactly one. Three concurrency-discipline rules
//! ([`concurrency`]) traverse that graph: `C1` (no blocking operation
//! while a `Mutex`/`RwLock` guard is live, directly or one certain
//! call deep), `C2` (lock sites must be acquired in one consistent
//! order workspace-wide), and `C3` (panic-free `S2` paths must not
//! call workspace functions that can panic, transitively to a
//! configured depth, modulo a proven-total allowlist). The graph
//! itself exports via `--graph json|dot` with deterministic ordering,
//! and `--baseline write|check` ([`baseline`]) ratchets adoption on a
//! brownfield tree.
//!
//! Run `cargo run -p fairlint -- --list-rules` for the rule table and
//! `--explain <RULE>` for any rule's rationale and suggested fix;
//! `ci.sh` runs `--strict --baseline check` plus a graph-determinism
//! gate on every push.

pub mod baseline;
pub mod concurrency;
pub mod config;
pub mod diag;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

pub use config::Config;
pub use diag::{render_json_report, Diagnostic, Severity};
pub use graph::Graph;
pub use rules::{known_rule, RULES};
pub use source::SourceFile;
pub use workspace::Workspace;
