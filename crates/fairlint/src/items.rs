//! Scope-aware item extraction: functions with brace-matched bodies and
//! crate-qualified names, parsed from scrubbed text.
//!
//! This is the layer between the token scanner and the call graph. It
//! walks a file once, maintaining a stack of named scopes (`mod`,
//! `impl`, `trait`, `fn`) so every function gets a stable qualified
//! name like `serve::cache::ShardedCache::get_or_compute`, plus the
//! byte span of its body for the interprocedural rules to scan.
//!
//! The parser is deliberately syntactic: it runs on scrubbed text (no
//! strings or comments can confuse it), counts braces exactly, and
//! treats everything it cannot classify as an anonymous block. That is
//! enough for call-edge extraction and guard-liveness scanning; it is
//! not a Rust parser.

use crate::source::SourceFile;

/// One extracted `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Fully qualified name: module path (derived from the file's
    /// workspace-relative path) joined with enclosing scope names and
    /// the function name, `::`-separated.
    pub qname: String,
    /// Bare function name (last segment of `qname`).
    pub name: String,
    /// Enclosing `impl`/`trait` type name, when the fn is a method.
    pub owner: Option<String>,
    /// Crate attribution (directory basename), mirroring
    /// [`SourceFile::krate`].
    pub krate: Option<String>,
    /// Workspace-relative path of the defining file.
    pub rel: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Byte offset of the body's opening `{` in the scrubbed text.
    pub body_start: usize,
    /// Byte offset of the body's closing `}` (exclusive end of body).
    pub body_end: usize,
    /// Whether the item starts on test-attributed code.
    pub is_test: bool,
}

impl FnItem {
    /// The body text (between, not including, the outer braces).
    pub fn body<'t>(&self, text: &'t str) -> &'t str {
        &text[self.body_start + 1..self.body_end.min(text.len())]
    }
}

/// What kind of scope a `{` opened.
#[derive(Clone, Debug)]
enum Frame {
    /// Block with no item name (expression, `match` arm, macro body…).
    Anon,
    /// `mod`/`trait` scope contributing a path segment.
    Named(String),
    /// `impl` scope: contributes the type name and marks methods.
    Impl(String),
    /// A function body: index into the output vec, to patch `body_end`.
    Fn(usize),
}

/// Pending item keyword seen, waiting for its `{` (or a cancelling `;`).
#[derive(Clone, Debug)]
enum Pending {
    Mod(String),
    Trait(String),
    /// `impl` records where its signature started; the type name is
    /// extracted from the text between `impl` and the opening brace.
    Impl(usize),
    Fn {
        name: String,
        line: usize,
    },
}

/// Extracts every `fn` item from a file's scrubbed text.
pub fn extract_fns(f: &SourceFile) -> Vec<FnItem> {
    let text = &f.text;
    let b = text.as_bytes();
    let module = module_path(&f.rel);
    let mut out: Vec<FnItem> = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut line = 1usize;
    let mut paren = 0usize; // () and [] nesting, so `;` in `[u8; 3]`
    let mut i = 0usize;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => line += 1,
            b'(' | b'[' => paren += 1,
            b')' | b']' => paren = paren.saturating_sub(1),
            b';' if paren == 0 => pending = None, // `mod x;`, trait fn decl
            b'{' => {
                let frame = match pending.take() {
                    Some(Pending::Mod(n)) | Some(Pending::Trait(n)) => Frame::Named(n),
                    Some(Pending::Impl(sig_start)) => {
                        Frame::Impl(impl_type_name(&text[sig_start..i]))
                    }
                    Some(Pending::Fn { name, line: fl }) => {
                        let (scope, owner) = scope_names(&stack);
                        let mut segs = module.clone();
                        segs.extend(scope);
                        segs.push(name.clone());
                        out.push(FnItem {
                            qname: segs.join("::"),
                            name,
                            owner,
                            krate: f.krate.clone(),
                            rel: f.rel.clone(),
                            line: fl,
                            body_start: i,
                            body_end: b.len(),
                            is_test: f.is_test_path || f.is_test_line(fl),
                        });
                        Frame::Fn(out.len() - 1)
                    }
                    None => Frame::Anon,
                };
                stack.push(frame);
            }
            b'}' => {
                if let Some(Frame::Fn(idx)) = stack.pop() {
                    out[idx].body_end = i;
                }
            }
            _ if is_ident_start(c) && !prev_is_ident(b, i) => {
                let word = read_ident(text, i);
                let after = i + word.len();
                match word {
                    "mod" | "trait" if pending.is_none() => {
                        if let Some(name) = next_ident(text, after) {
                            pending = Some(if word == "mod" {
                                Pending::Mod(name)
                            } else {
                                Pending::Trait(name)
                            });
                        }
                    }
                    // `impl Trait` in type position follows a pending
                    // `fn` (return type) — only a bare `impl` opens one.
                    "impl" if pending.is_none() => pending = Some(Pending::Impl(after)),
                    "fn" => {
                        // `fn(` is a function-pointer type, not an item.
                        if let Some(name) = next_ident(text, after) {
                            pending = Some(Pending::Fn { name, line });
                        }
                    }
                    _ => {}
                }
                i = after;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Scope path segments (and the innermost impl/trait type, if any)
/// from the current frame stack.
fn scope_names(stack: &[Frame]) -> (Vec<String>, Option<String>) {
    let mut segs = Vec::new();
    let mut owner = None;
    for fr in stack {
        match fr {
            Frame::Named(n) => {
                segs.push(n.clone());
                owner = None;
            }
            Frame::Impl(n) => {
                segs.push(n.clone());
                owner = Some(n.clone());
            }
            Frame::Anon | Frame::Fn(_) => {}
        }
    }
    (segs, owner)
}

/// Module path segments derived from the workspace-relative file path.
///
/// `crates/serve/src/cache.rs` → `["serve", "cache"]`;
/// `crates/serve/src/lib.rs` → `["serve"]`; binaries keep their `bin`
/// segment so same-crate names cannot collide with the library's.
pub fn module_path(rel: &str) -> Vec<String> {
    let mut parts: Vec<&str> = rel.split('/').collect();
    let Some(last) = parts.pop() else {
        return vec![];
    };
    let stem = last.strip_suffix(".rs").unwrap_or(last);
    let mut segs: Vec<String> = Vec::new();
    // `crates/<name>/src/...` → crate dir name, then path under src.
    if parts.first() == Some(&"crates") && parts.len() >= 2 {
        segs.push(parts[1].to_string());
        for p in parts.iter().skip(2).filter(|p| **p != "src") {
            segs.push((*p).to_string());
        }
    } else {
        for p in parts.iter().filter(|p| **p != "src") {
            segs.push((*p).to_string());
        }
    }
    if !matches!(stem, "lib" | "main" | "mod") {
        segs.push(stem.to_string());
    }
    if segs.is_empty() {
        segs.push("root".to_string());
    }
    segs
}

/// The implemented type's name from an `impl` signature (text between
/// the `impl` keyword and the opening brace): the segment after a
/// top-level ` for ` when present (trait impls), otherwise the first
/// type path; generics and references are stripped.
fn impl_type_name(sig: &str) -> String {
    // Cut an optional `where` clause, then take the target after `for`.
    let sig = split_top_level_keyword(sig, "where").0;
    let (head, tail) = split_top_level_keyword(sig, "for");
    let target = tail.unwrap_or(head);
    last_path_segment(target).unwrap_or_else(|| "_".to_string())
}

/// Splits `sig` at the first occurrence of a bare `kw` outside angle
/// brackets; returns the head and the optional tail.
fn split_top_level_keyword<'s>(sig: &'s str, kw: &str) -> (&'s str, Option<&'s str>) {
    let b = sig.as_bytes();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'<' => depth += 1,
            b'>' => depth -= 1,
            c if depth == 0 && is_ident_start(c) && !prev_is_ident(b, i) => {
                let word = read_ident(sig, i);
                if word == kw {
                    return (&sig[..i], Some(&sig[i + kw.len()..]));
                }
                i += word.len();
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    (sig, None)
}

/// Last identifier of the leading type path in `s` (`a::b::C<T>` → `C`).
fn last_path_segment(s: &str) -> Option<String> {
    let s = s.trim_start_matches(|c: char| c.is_whitespace() || c == '&' || c == '\'');
    let mut last = None;
    let b = s.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if is_ident_start(c) {
            let word = read_ident(s, i);
            // `mut` / `dyn` prefixes are not path segments.
            if word != "mut" && word != "dyn" {
                last = Some(word.to_string());
            }
            i += word.len();
            // `::` continues the path; anything else ends it.
            if s[i..].starts_with("::") {
                i += 2;
                continue;
            }
            break;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        break;
    }
    last
}

pub(crate) fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

pub(crate) fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

pub(crate) fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && is_ident(b[i - 1])
}

/// Reads the identifier starting at byte `i`.
pub(crate) fn read_ident(text: &str, i: usize) -> &str {
    let b = text.as_bytes();
    let mut j = i;
    while j < b.len() && is_ident(b[j]) {
        j += 1;
    }
    &text[i..j]
}

/// The next identifier after offset `i`, skipping whitespace; `None`
/// when the next non-space token is not an identifier.
fn next_ident(text: &str, i: usize) -> Option<String> {
    let b = text.as_bytes();
    let mut j = i;
    while j < b.len() && (b[j] == b' ' || b[j] == b'\n' || b[j] == b'\t') {
        j += 1;
    }
    if j < b.len() && is_ident_start(b[j]) {
        let w = read_ident(text, j);
        // Reserved words never name items.
        if matches!(w, "for" | "where" | "impl" | "fn") {
            return None;
        }
        Some(w.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_contents(
            Path::new("/ws"),
            Path::new(&format!("/ws/{rel}")),
            src.into(),
        )
    }

    #[test]
    fn module_paths_from_rel() {
        assert_eq!(module_path("crates/serve/src/cache.rs"), ["serve", "cache"]);
        assert_eq!(module_path("crates/serve/src/lib.rs"), ["serve"]);
        assert_eq!(
            module_path("crates/bench/src/bin/exp_e1.rs"),
            ["bench", "bin", "exp_e1"]
        );
        assert_eq!(module_path("src/lib.rs"), ["root"]);
    }

    #[test]
    fn free_fns_and_methods_are_qualified() {
        let f = file(
            "crates/serve/src/cache.rs",
            "pub fn free() { x(); }\n\
             pub struct C;\n\
             impl C {\n    pub fn m(&self) -> u8 { 1 }\n}\n\
             impl core::fmt::Display for C {\n    fn fmt(&self) {}\n}\n\
             mod inner {\n    fn helper() {}\n}\n",
        );
        let fns = extract_fns(&f);
        let names: Vec<&str> = fns.iter().map(|i| i.qname.as_str()).collect();
        assert_eq!(
            names,
            [
                "serve::cache::free",
                "serve::cache::C::m",
                "serve::cache::C::fmt",
                "serve::cache::inner::helper"
            ]
        );
        assert_eq!(fns[1].owner.as_deref(), Some("C"));
        assert!(fns[0].owner.is_none());
        assert_eq!(fns[0].line, 1);
    }

    #[test]
    fn bodies_are_brace_matched() {
        let f = file(
            "crates/core/src/x.rs",
            "fn a() { if x { y(); } z(); }\nfn b() { w(); }\n",
        );
        let fns = extract_fns(&f);
        assert_eq!(fns.len(), 2);
        let body_a = fns[0].body(&f.text);
        assert!(body_a.contains("z();") && !body_a.contains("w();"));
        assert!(fns[1].body(&f.text).contains("w();"));
    }

    #[test]
    fn trait_impls_use_the_target_type() {
        assert_eq!(impl_type_name("<T: Copy> Backend for Exp<T> "), "Exp");
        assert_eq!(impl_type_name(" Store "), "Store");
        assert_eq!(impl_type_name(" Drop for WorkerPool "), "WorkerPool");
        assert_eq!(
            impl_type_name("<'a> Iterator for Cursor<'a> where Self: Sized "),
            "Cursor"
        );
    }

    #[test]
    fn declarations_do_not_open_scopes() {
        let f = file(
            "crates/core/src/x.rs",
            "mod other;\ntrait T {\n    fn decl(&self) -> u8;\n    fn with_default(&self) -> u8 { 0 }\n}\nfn after() {}\n",
        );
        let fns = extract_fns(&f);
        let names: Vec<&str> = fns.iter().map(|i| i.qname.as_str()).collect();
        assert_eq!(names, ["core::x::T::with_default", "core::x::after"]);
    }

    #[test]
    fn impl_trait_return_type_is_not_an_impl_scope() {
        let f = file(
            "crates/core/src/x.rs",
            "fn make() -> impl Iterator<Item = u8> { std::iter::empty() }\nfn next_one() {}\n",
        );
        let fns = extract_fns(&f);
        let names: Vec<&str> = fns.iter().map(|i| i.qname.as_str()).collect();
        assert_eq!(names, ["core::x::make", "core::x::next_one"]);
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let f = file(
            "crates/core/src/x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n",
        );
        let fns = extract_fns(&f);
        assert!(!fns[0].is_test);
        assert!(fns[1].is_test);
    }
}
