//! The file model: one analyzed Rust source file with its scrubbed text,
//! crate attribution, test-code spans, and suppression comments.

use std::path::{Path, PathBuf};

use crate::lexer::{scrub, Suppression};

/// A loaded, pre-analyzed source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with forward slashes (diagnostic key).
    pub rel: String,
    /// Raw file contents.
    pub raw: String,
    /// Scrubbed contents (comments/strings blanked; offsets preserved).
    pub text: String,
    /// Suppression comments found in the file.
    pub suppressions: Vec<Suppression>,
    /// `Some("core")` for `crates/core/src/...`; `None` for root files.
    pub krate: Option<String>,
    /// Whether the whole file is test/bench/example code by location.
    pub is_test_path: bool,
    /// Per line (0-indexed), whether the line is inside a
    /// `#[cfg(test)]` item's brace span.
    test_lines: Vec<bool>,
}

impl SourceFile {
    /// Builds the model from raw contents (no I/O — callers read the
    /// file; fixtures can feed strings directly).
    pub fn from_contents(root: &Path, path: &Path, raw: String) -> SourceFile {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let scrubbed = scrub(&raw);
        let krate = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .map(str::to_string);
        let is_test_path = rel.split('/').any(|seg| {
            seg == "tests" || seg == "benches" || seg == "examples" || seg == "fixtures"
        });
        let test_lines = cfg_test_lines(&scrubbed.text);
        SourceFile {
            path: path.to_path_buf(),
            rel,
            raw,
            text: scrubbed.text,
            suppressions: scrubbed.suppressions,
            krate,
            is_test_path,
            test_lines,
        }
    }

    /// Whether 1-based `line` is test code (file location or
    /// `#[cfg(test)]` span).
    pub fn is_test_line(&self, line: usize) -> bool {
        self.is_test_path
            || self
                .test_lines
                .get(line.saturating_sub(1))
                .copied()
                .unwrap_or(false)
    }

    /// Whether a diagnostic for `rule` on 1-based `line` is suppressed
    /// by a valid `fairlint::allow` comment (one with a reason).
    pub fn suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.reason.is_some() && s.covers(line) && s.rules.iter().any(|r| r == rule))
    }

    /// Iterates scrubbed lines as `(1-based line number, text)`.
    pub fn lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.text.lines().enumerate().map(|(i, l)| (i + 1, l))
    }
}

/// Marks lines covered by `#[cfg(test)]`-attributed items by brace
/// matching on scrubbed text (strings can't confuse the depth count).
fn cfg_test_lines(text: &str) -> Vec<bool> {
    let total = text.lines().count();
    let mut marks = vec![false; total];
    let b = text.as_bytes();
    let mut search = 0usize;
    while let Some(at) = text[search..].find("#[cfg(test)]") {
        let attr = search + at;
        search = attr + 1;
        // Find the first `{` after the attribute and match braces.
        let Some(open_rel) = text[attr..].find('{') else {
            continue;
        };
        let open = attr + open_rel;
        let mut depth = 0usize;
        let mut end = b.len();
        for (j, &c) in b.iter().enumerate().skip(open) {
            match c {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        let first = line_of(b, attr);
        let last = line_of(b, end);
        for l in marks.iter_mut().take(last.min(total)).skip(first - 1) {
            *l = true;
        }
        search = end.max(search);
    }
    marks
}

/// 1-based line of a byte offset.
fn line_of(b: &[u8], offset: usize) -> usize {
    1 + b[..offset.min(b.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_contents(
            Path::new("/ws"),
            Path::new(&format!("/ws/{rel}")),
            src.into(),
        )
    }

    #[test]
    fn crate_attribution_from_path() {
        assert_eq!(
            file("crates/core/src/lib.rs", "").krate.as_deref(),
            Some("core")
        );
        assert_eq!(file("src/lib.rs", "").krate, None);
        assert!(file("crates/core/tests/t.rs", "").is_test_path);
        assert!(file("examples/e.rs", "").is_test_path);
        assert!(!file("crates/core/src/lib.rs", "").is_test_path);
    }

    #[test]
    fn cfg_test_mod_lines_are_marked() {
        let f = file(
            "crates/core/src/x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n",
        );
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn suppression_requires_reason_to_apply() {
        let f = file(
            "crates/core/src/x.rs",
            "// fairlint::allow(D1, reason = \"ok\")\nbad();\n// fairlint::allow(D2)\nbad2();\n",
        );
        assert!(f.suppressed("D1", 2));
        assert!(!f.suppressed("D2", 4), "reasonless suppression is inert");
        assert!(!f.suppressed("D1", 4));
    }
}
