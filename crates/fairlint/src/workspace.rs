//! Workspace loading: walk the tree, build [`SourceFile`] models, load
//! configuration and the experiment registry's markdown side.

use std::io;
use std::path::{Path, PathBuf};

use crate::config::{parse_toml_subset, Config, TomlValue};
use crate::diag::Diagnostic;
use crate::rules;
use crate::source::SourceFile;

/// Directory names the walker never descends into. `fixtures` keeps
/// fairlint's own offending test inputs out of real runs.
const SKIP_DIRS: &[&str] = &["target", "fixtures", "node_modules"];

/// A loaded workspace, ready to analyze.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root.
    pub root: PathBuf,
    /// Every `.rs` file found, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// Effective configuration (defaults merged with `fairlint.toml`).
    pub config: Config,
    /// Raw `EXPERIMENTS.md`, when present (rule R1's third leg).
    pub experiments_md: Option<String>,
    /// Workspace member crate names (directory basenames), expanded from
    /// the root `Cargo.toml` `members` globs. Empty when the root has no
    /// workspace manifest. Rule R5's subject.
    pub members: Vec<String>,
    /// 1-based line of the `members = [...]` declaration in the root
    /// `Cargo.toml` (1 when absent) — where R5 diagnostics anchor.
    pub members_line: usize,
    /// Scenario files under `scenarios/` as `(workspace-relative path,
    /// raw contents)`, sorted by path — rule R1's scenario-dir leg.
    pub scenario_files: Vec<(String, String)>,
}

impl Workspace {
    /// Walks `root` and loads every Rust source file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from walking or reading files.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let root = root.canonicalize()?;
        let mut paths = Vec::new();
        walk(&root, &mut paths)?;
        paths.sort();
        let files = paths
            .into_iter()
            .map(|p| {
                let raw = std::fs::read_to_string(&p)?;
                Ok(SourceFile::from_contents(&root, &p, raw))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let config = Config::load(&root);
        let experiments_md = std::fs::read_to_string(root.join("EXPERIMENTS.md")).ok();
        let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
        let (members, members_line) = expand_members(&root, &manifest);
        let scenario_files = load_scenarios(&root);
        Ok(Workspace {
            root,
            files,
            config,
            experiments_md,
            members,
            members_line,
            scenario_files,
        })
    }

    /// Looks a file up by workspace-relative path.
    pub fn file_by_rel(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Runs every rule; see [`rules::check_all`].
    pub fn analyze(&self) -> Vec<Diagnostic> {
        rules::check_all(self)
    }
}

/// Expands the root manifest's `[workspace] members` patterns into crate
/// names. A trailing `/*` globs over subdirectories; a directory counts
/// as a member only when it actually contains a `Cargo.toml`. The crate
/// name is the directory basename — the same attribution
/// [`SourceFile::krate`] uses, so R5 and the path-scoped rules agree.
fn expand_members(root: &Path, manifest: &str) -> (Vec<String>, usize) {
    let line = 1 + manifest
        .lines()
        .position(|l| l.trim_start().starts_with("members"))
        .unwrap_or(0);
    let patterns: Vec<String> = parse_toml_subset(manifest)
        .into_iter()
        .find_map(|(k, v)| match (k.as_str(), v) {
            ("workspace.members", TomlValue::List(items)) => Some(items),
            _ => None,
        })
        .unwrap_or_default();
    let mut members = Vec::new();
    for pattern in &patterns {
        if let Some(prefix) = pattern.strip_suffix("/*") {
            let Ok(entries) = std::fs::read_dir(root.join(prefix)) else {
                continue;
            };
            for entry in entries.flatten() {
                if entry.path().join("Cargo.toml").is_file() {
                    members.push(entry.file_name().to_string_lossy().into_owned());
                }
            }
        } else if root.join(pattern).join("Cargo.toml").is_file() {
            if let Some(name) = Path::new(pattern).file_name() {
                members.push(name.to_string_lossy().into_owned());
            }
        }
    }
    members.sort();
    members.dedup();
    (members, line)
}

/// Reads every `scenarios/*.toml` (sorted). A missing directory is just
/// an empty set; an unreadable file is skipped — R1 checks lockstep with
/// EXPERIMENTS.md, it does not replace `fair-scenario check`.
fn load_scenarios(root: &Path) -> Vec<(String, String)> {
    let Ok(entries) = std::fs::read_dir(root.join("scenarios")) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .filter_map(|p| {
            let raw = std::fs::read_to_string(&p).ok()?;
            let name = p.file_name()?.to_string_lossy().into_owned();
            Some((format!("scenarios/{name}"), raw))
        })
        .collect()
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_this_crate() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let ws = Workspace::load(root).expect("load");
        assert!(ws.files.iter().any(|f| f.rel == "src/workspace.rs"));
        // The walker never picks up fixture inputs.
        assert!(ws.files.iter().all(|f| !f.rel.contains("fixtures/")));
        // This crate's own manifest declares no workspace.
        assert!(ws.members.is_empty());
    }

    #[test]
    fn member_globs_expand_against_the_real_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root");
        let (members, line) = expand_members(&root, "[workspace]\nmembers = [\"crates/*\"]\n");
        assert_eq!(line, 2);
        for expected in ["core", "serve", "fairlint", "rand"] {
            assert!(
                members.iter().any(|m| m == expected),
                "missing {expected} in {members:?}"
            );
        }
        // Only directories holding a Cargo.toml count.
        let (none, _) = expand_members(&root, "[workspace]\nmembers = [\"docs/*\"]\n");
        assert!(none.is_empty());
        // Literal (non-glob) member paths resolve too.
        let (one, _) = expand_members(&root, "[workspace]\nmembers = [\"crates/core\"]\n");
        assert_eq!(one, vec!["core".to_string()]);
    }
}
