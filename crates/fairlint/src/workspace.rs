//! Workspace loading: walk the tree, build [`SourceFile`] models, load
//! configuration and the experiment registry's markdown side.

use std::io;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::rules;
use crate::source::SourceFile;

/// Directory names the walker never descends into. `fixtures` keeps
/// fairlint's own offending test inputs out of real runs.
const SKIP_DIRS: &[&str] = &["target", "fixtures", "node_modules"];

/// A loaded workspace, ready to analyze.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root.
    pub root: PathBuf,
    /// Every `.rs` file found, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// Effective configuration (defaults merged with `fairlint.toml`).
    pub config: Config,
    /// Raw `EXPERIMENTS.md`, when present (rule R1's third leg).
    pub experiments_md: Option<String>,
}

impl Workspace {
    /// Walks `root` and loads every Rust source file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from walking or reading files.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let root = root.canonicalize()?;
        let mut paths = Vec::new();
        walk(&root, &mut paths)?;
        paths.sort();
        let files = paths
            .into_iter()
            .map(|p| {
                let raw = std::fs::read_to_string(&p)?;
                Ok(SourceFile::from_contents(&root, &p, raw))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let config = Config::load(&root);
        let experiments_md = std::fs::read_to_string(root.join("EXPERIMENTS.md")).ok();
        Ok(Workspace {
            root,
            files,
            config,
            experiments_md,
        })
    }

    /// Looks a file up by workspace-relative path.
    pub fn file_by_rel(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Runs every rule; see [`rules::check_all`].
    pub fn analyze(&self) -> Vec<Diagnostic> {
        rules::check_all(self)
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_this_crate() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let ws = Workspace::load(root).expect("load");
        assert!(ws.files.iter().any(|f| f.rel == "src/workspace.rs"));
        // The walker never picks up fixture inputs.
        assert!(ws.files.iter().all(|f| !f.rel.contains("fixtures/")));
    }
}
