//! Committed-baseline mechanism: adopt a stricter rule incrementally.
//!
//! `fairlint --baseline write` records the current violation counts per
//! `(rule, path)` into `fairlint.baseline` at the workspace root;
//! `--baseline check` subtracts those counts from a run's diagnostics,
//! so only *new* findings (or old ones in files whose count grew) fail
//! `--strict`. Counts — not line numbers — keep the file stable under
//! unrelated edits; fixing a baselined violation shrinks the allowance
//! the next time the baseline is rewritten.

use std::collections::BTreeMap;

use crate::diag::Diagnostic;

/// Name of the baseline file at the workspace root.
pub const BASELINE_FILE: &str = "fairlint.baseline";

/// Per-`(rule, path)` allowed violation counts.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Renders diagnostics as a baseline file (sorted, tab-separated).
pub fn render(diags: &[Diagnostic]) -> String {
    let mut counts: Baseline = BTreeMap::new();
    for d in diags {
        *counts
            .entry((d.rule.to_string(), d.rel.clone()))
            .or_default() += 1;
    }
    let mut out = String::from(
        "# fairlint baseline — accepted pre-existing violations, counted per (rule, path).\n\
         # Regenerate with `cargo run -p fairlint -- --strict --baseline write`.\n\
         # Format: rule<TAB>path<TAB>count\n",
    );
    for ((rule, path), n) in &counts {
        out.push_str(&format!("{rule}\t{path}\t{n}\n"));
    }
    out
}

/// Parses a baseline file; unparseable lines are ignored.
pub fn parse(src: &str) -> Baseline {
    let mut out = Baseline::new();
    for line in src.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(rule), Some(path), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        if let Ok(n) = count.trim().parse::<usize>() {
            out.insert((rule.to_string(), path.to_string()), n);
        }
    }
    out
}

/// Filters out up to the baselined number of diagnostics per
/// `(rule, path)`, keeping the rest. Diagnostics are consumed in input
/// order (sorted by line), so the earliest occurrences are absorbed
/// first — deterministic either way.
pub fn filter(diags: Vec<Diagnostic>, baseline: &Baseline) -> Vec<Diagnostic> {
    let mut used: BTreeMap<(String, String), usize> = BTreeMap::new();
    diags
        .into_iter()
        .filter(|d| {
            let key = (d.rule.to_string(), d.rel.clone());
            let allowed = baseline.get(&key).copied().unwrap_or(0);
            let u = used.entry(key).or_default();
            if *u < allowed {
                *u += 1;
                false
            } else {
                true
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn d(rule: &'static str, rel: &str, line: usize) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Error,
            rel: rel.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn round_trip_filters_to_zero() {
        let diags = vec![d("C1", "a.rs", 3), d("C1", "a.rs", 9), d("C3", "b.rs", 1)];
        let base = parse(&render(&diags));
        assert_eq!(base.get(&("C1".into(), "a.rs".into())), Some(&2));
        assert!(filter(diags, &base).is_empty());
    }

    #[test]
    fn new_findings_survive_the_filter() {
        let base = parse("C1\ta.rs\t1\n");
        let remaining = filter(vec![d("C1", "a.rs", 3), d("C1", "a.rs", 9)], &base);
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].line, 9, "earliest occurrence absorbed");
        // A different rule or file is untouched by the entry.
        assert_eq!(filter(vec![d("C2", "a.rs", 3)], &base).len(), 1);
    }

    #[test]
    fn comments_and_garbage_are_ignored() {
        let base = parse("# comment\n\nnot a line\nC1\ta.rs\tnope\nC1\ta.rs\t2\n");
        assert_eq!(base.len(), 1);
        assert_eq!(base.get(&("C1".into(), "a.rs".into())), Some(&2));
    }
}
